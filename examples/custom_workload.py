#!/usr/bin/env python
"""Building a custom workload and persisting traces.

Demonstrates the lower-level public API:

- defining a :class:`WorkloadProfile` from scratch,
- calibrating it against explicit miss-rate targets,
- saving/loading the binary ``MLPT`` trace format,
- running the lock detector on a stripped trace and comparing against the
  generator's ground truth,
- sweeping a core parameter by hand.

Run:  python examples/custom_workload.py
"""

from __future__ import annotations

import tempfile
from dataclasses import replace
from pathlib import Path

from repro import (
    MemorySystem,
    MlpSimulator,
    SimulationConfig,
    WorkloadGenerator,
    WorkloadProfile,
    annotate_trace,
)
from repro.locks import LockDetector
from repro.trace import read_trace_file, write_trace_file
from repro.workloads import calibrate_profile


def main() -> None:
    # 1. A custom "message broker" style workload: store-heavy, lock-heavy,
    # modest data footprint.
    broker = WorkloadProfile(
        name="broker",
        store_fraction=0.14,
        load_fraction=0.22,
        branch_fraction=0.12,
        store_miss_per_100=0.25,
        load_miss_per_100=0.20,
        inst_miss_per_100=0.02,
        locks_per_1000=4.0,
        critical_section_mean=12,
        lock_after_store_miss=0.6,
        store_burst_mean=2.0,
        store_regions=512,
    )
    print(f"profile: {broker.name} "
          f"(stores {100 * broker.store_fraction:.0f}/100, "
          f"{broker.locks_per_1000}/1000 locks)")

    # 2. Calibrate the steering against the targets.
    calibrated = calibrate_profile(
        broker, instructions=90_000, warmup=30_000, tolerance=0.3,
    )
    print(f"calibration scales: store={calibrated.store_miss_scale:.2f} "
          f"load={calibrated.load_miss_scale:.2f}")

    # 3. Generate and persist a trace.
    trace = WorkloadGenerator(calibrated, seed=13).generate(90_000)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "broker.mlpt"
        count = write_trace_file(path, trace)
        size_kb = path.stat().st_size // 1024
        reloaded = read_trace_file(path)
        print(f"trace: {count} records, {size_kb}KB on disk, "
              f"round-trip ok: {reloaded == trace}")

    # 4. Lock detection on a stripped trace vs generator ground truth.
    truth = sum(1 for inst in trace if inst.lock_acquire)
    stripped = [
        replace(inst, lock_acquire=False, lock_release=False)
        for inst in trace
    ]
    detected = len(LockDetector().find(stripped))
    print(f"locks: generator emitted {truth}, detector found {detected}")

    # 5. Hand-rolled store-queue sweep.
    config = SimulationConfig()
    memory = MemorySystem(config.memory)
    annotated = annotate_trace(trace, memory, warmup=30_000)
    print("store-queue sweep (EPI per 1000 instructions):")
    for store_queue in (8, 16, 32, 64, 128):
        result = MlpSimulator(
            config.with_core(store_queue=store_queue)
        ).run(annotated)
        print(f"  sq={store_queue:3d}: {result.epi_per_1000:.3f} "
              f"(store MLP {result.store_mlp:.2f})")


if __name__ == "__main__":
    main()
