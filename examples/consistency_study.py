#!/usr/bin/env python
"""Memory consistency study: the PC-vs-WC store gap and how to close it.

Reproduces the paper's Section 5.3 narrative on all four workloads:

- processor consistency (SPARC TSO) exposes store misses behind ``casa``,
- weak consistency (PowerPC lock idioms) hides most of them,
- Speculative Lock Elision plus prefetch-past-serializing recovers most of
  the gap without weakening the consistency model.

Run:  python examples/consistency_study.py [instructions]
"""

from __future__ import annotations

import sys

from repro import api
from repro.harness.formatting import format_table


def main() -> None:
    measure = int(sys.argv[1]) if len(sys.argv) > 1 else 80_000
    bench = api.workbench(api.ExperimentSettings(
        warmup=measure // 3, measure=measure, seed=2, calibrate=False,
    ))

    configurations = (
        ("PC (TSO, default)", "pc", {}),
        ("PC + prefetch past serializing", "pc", {
            "prefetch_past_serializing": True,
        }),
        ("PC + SLE + prefetch past", "pc_sle", {
            "prefetch_past_serializing": True,
        }),
        ("WC (PowerPC idioms)", "wc", {}),
        ("WC + SLE + prefetch past", "wc_sle", {
            "prefetch_past_serializing": True,
        }),
    )

    workloads = ("database", "tpcw", "specjbb", "specweb")
    rows = []
    for label, variant, knobs in configurations:
        row: list[object] = [label]
        for workload in workloads:
            result = bench.run(workload, variant=variant, **knobs)
            row.append(result.epi_per_1000)
        rows.append(row)

    print(format_table(
        ["configuration (EPI per 1000 insts)", *workloads],
        rows,
        title="Store performance across consistency models",
    ))

    print()
    for workload in workloads:
        pc = bench.run(workload).epi_per_1000
        wc = bench.run(workload, variant="wc").epi_per_1000
        sle = bench.run(
            workload, variant="pc_sle", prefetch_past_serializing=True
        ).epi_per_1000
        gap = pc - wc
        recovered = (pc - sle) / gap if gap > 0 else 0.0
        print(f"{workload}: PC-WC gap {gap:.3f} EPI/1000; "
              f"SLE recovers {100 * recovered:.0f}%")


if __name__ == "__main__":
    main()
