#!/usr/bin/env python
"""Store Miss Accelerator design-space exploration.

Sweeps the SMAC's two geometry axes — entry count and sub-blocking factor —
and reports EPI, hit rate and SRAM cost, demonstrating the paper's point
that a few bits of retained *ownership* per line buy most of the benefit of
prefetching without the L2 bandwidth.

Run:  python examples/smac_design_space.py [workload]
"""

from __future__ import annotations

import sys

from repro import SmacConfig, api
from repro.config import StorePrefetchMode
from repro.harness.figures import smac_memory_config, smac_scaled_profile
from repro.harness.formatting import format_table


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "database"
    bench = api.workbench(api.ExperimentSettings(
        warmup=60_000, measure=90_000, seed=4, calibrate=False,
    ))
    bench.set_profile(workload, smac_scaled_profile(workload))

    baseline = bench.run(
        workload,
        memory_config=smac_memory_config(None),
        tag="none",
        store_prefetch=StorePrefetchMode.NONE,
    )
    print(f"{workload}: no SMAC, no prefetch -> "
          f"EPI/1000 = {baseline.epi_per_1000:.3f}")
    print()

    rows = []
    for entries in (64, 128, 256, 512):
        for line_bytes in (1024, 2048, 4096):
            smac = SmacConfig(
                entries=entries, line_bytes=line_bytes, associativity=8,
            )
            memory_config = smac_memory_config(entries)
            memory_config = type(memory_config)(
                l2=memory_config.l2, smac=smac,
            )
            tag = f"smac-{entries}-{line_bytes}"
            result = bench.run(
                workload,
                memory_config=memory_config,
                tag=tag,
                store_prefetch=StorePrefetchMode.NONE,
            )
            memory = bench.memory_for(workload, tag=tag)
            hit_rate = memory.smac.stats.hit_ratio if memory.smac else 0.0
            rows.append([
                entries,
                line_bytes,
                smac.coverage_bytes // 1024,
                smac.storage_bits // 8 // 1024,
                result.epi_per_1000,
                100 * hit_rate,
            ])

    print(format_table(
        ["entries", "region B", "coverage KB", "SRAM KB",
         "EPI/1000", "hit %"],
        rows,
        title="SMAC geometry sweep (no store prefetching)",
    ))

    best = min(rows, key=lambda row: row[4])
    print()
    print(f"best geometry: {best[0]} entries x {best[1]}B regions "
          f"({best[3]}KB of SRAM) -> EPI/1000 = {best[4]:.3f} "
          f"vs {baseline.epi_per_1000:.3f} without")


if __name__ == "__main__":
    main()
