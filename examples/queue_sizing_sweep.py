#!/usr/bin/env python
"""Design-space sweep with the generic sweep utility.

Answers a question the paper's Figure 2 provokes: across store buffer,
store queue and prefetch mode, which configurations are Pareto-optimal in
(performance, L2 write bandwidth)?  The paper positions the SMAC on exactly
this trade-off; here we map the prefetch side of the frontier.

Run:  python examples/queue_sizing_sweep.py [workload]
"""

from __future__ import annotations

import sys

from repro import StorePrefetchMode, api
from repro.harness.formatting import format_table
from repro.harness.sweeps import best_point, pareto_front


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "database"

    spec = api.SweepSpec.build(
        workload,
        store_buffer=[8, 16, 32],
        store_queue=[16, 32, 64],
        store_prefetch=list(StorePrefetchMode),
    )
    records = api.sweep(
        spec,
        settings=api.ExperimentSettings(
            warmup=25_000, measure=60_000, seed=6, calibrate=False,
        ),
    )

    best = best_point(records)
    print(f"{workload}: {len(records)} configurations swept")
    print(f"best EPI/1000: {best.epi_per_1000:.3f} at {best.label()}")
    print()

    front = pareto_front(
        records, metrics=("epi_per_1000", "store_bandwidth_overhead")
    )
    rows = [
        [r.label(), r.epi_per_1000, r.store_bandwidth_overhead, r.store_mlp]
        for r in sorted(front, key=lambda r: r.epi_per_1000)
    ]
    print(format_table(
        ["configuration", "EPI/1000", "write overhead", "store MLP"],
        rows,
        title="Pareto front: performance vs. L2 write bandwidth",
    ))
    print()
    print("Reading: moving down the table buys EPI with extra write-path")
    print("requests; the paper's SMAC targets the top-left corner (low")
    print("overhead) while reaching the bottom's EPI.")


if __name__ == "__main__":
    main()
