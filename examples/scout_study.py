#!/usr/bin/env python
"""Hardware Scout study: the HWS0 -> HWS1 -> HWS2 ladder.

Shows, per workload and consistency model, how much of the store-miss cost
each scout refinement recovers, and where the remaining epochs come from
(the termination mix after HWS2).

Run:  python examples/scout_study.py [instructions]
"""

from __future__ import annotations

import sys

from repro import ScoutMode, api
from repro.harness.formatting import format_table


def main() -> None:
    measure = int(sys.argv[1]) if len(sys.argv) > 1 else 80_000
    bench = api.workbench(api.ExperimentSettings(
        warmup=measure // 3, measure=measure, seed=3, calibrate=False,
    ))
    workloads = ("database", "tpcw", "specjbb", "specweb")
    modes = (
        ("no HWS", ScoutMode.NONE),
        ("HWS0 (loads+insts)", ScoutMode.HWS0),
        ("HWS1 (+stores)", ScoutMode.HWS1),
        ("HWS2 (+store-stall entry)", ScoutMode.HWS2),
    )

    rows = []
    for label, mode in modes:
        row: list[object] = [label]
        for workload in workloads:
            result = bench.run(workload, scout=mode)
            row.append(result.epi_per_1000)
        rows.append(row)
    print(format_table(
        ["PC configuration (EPI per 1000)", *workloads],
        rows,
        title="Hardware Scout ladder under processor consistency",
    ))

    print()
    for workload in workloads:
        base = bench.run(workload)
        base_perfect = bench.run(workload, perfect_stores=True)
        hws2 = bench.run(workload, scout=ScoutMode.HWS2)
        hws2_perfect = bench.run(
            workload, scout=ScoutMode.HWS2, perfect_stores=True
        )
        cost_before = base.epi - base_perfect.epi
        cost_after = hws2.epi - hws2_perfect.epi
        eliminated = 1 - cost_after / cost_before if cost_before else 1.0
        print(f"{workload}: HWS2 eliminates {100 * eliminated:.0f}% of the "
              f"store-miss cost "
              f"({1000 * cost_before:.2f} -> {1000 * cost_after:.2f} "
              f"EPI/1000); scout episodes: {hws2.scout_episodes}")

    print()
    result = bench.run("specweb", scout=ScoutMode.HWS2)
    print("specweb residual termination mix under HWS2:")
    for condition, count in sorted(
        result.termination_histogram().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {condition.value:32s} {count}")


if __name__ == "__main__":
    main()
