#!/usr/bin/env python
"""Quickstart: simulate the paper's default processor on one workload.

The one-line version goes through the :mod:`repro.api` facade::

    from repro import api
    print(api.run("database").summary())

Below, the same pipeline walked through explicitly (``api.run`` automates
all of this):

1. take a commercial workload profile and generate a synthetic trace,
2. classify every access through the cache hierarchy and branch predictor,
3. run the epoch MLP simulator under the default core configuration,
4. translate epochs per instruction into off-chip and overall CPI.

Run:  python examples/quickstart.py [workload] [instructions]
"""

from __future__ import annotations

import sys

from repro import (
    MemorySystem,
    MlpSimulator,
    SimulationConfig,
    WORKLOADS,
    WorkloadGenerator,
    annotate_trace,
)
from repro.core.cpi import CpiModel, PAPER_CPI_ON_CHIP
from repro.frontend import BranchPredictor


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "database"
    total = int(sys.argv[2]) if len(sys.argv) > 2 else 150_000
    warmup = total // 3
    profile = WORKLOADS[workload]

    print(f"workload: {workload}")
    print(f"  store frequency target: {100 * profile.store_fraction:.2f}/100")
    print(f"  trace: {total} instructions ({warmup} warmup)")

    # 1. generate the instruction trace.
    generator = WorkloadGenerator(profile, seed=1)
    trace = generator.generate(total)

    # 2. classify misses through the real cache hierarchy.
    config = SimulationConfig()
    memory = MemorySystem(config.memory)
    predictor = BranchPredictor(config.core.branch)
    annotated = annotate_trace(trace, memory, predictor=predictor,
                               warmup=warmup)
    stats = memory.stats
    print(f"  off-chip misses per 100 insts: "
          f"store={stats.store_miss_rate:.3f} "
          f"load={stats.load_miss_rate:.3f} "
          f"inst={stats.inst_miss_rate:.3f}")

    # 3. run the epoch MLP simulator.
    result = MlpSimulator(config).run(annotated)
    print(f"  {result.summary()}")

    # 4. translate to CPI (paper Section 3.4).
    cpi = CpiModel(
        cpi_on_chip=PAPER_CPI_ON_CHIP[workload],
        miss_penalty=config.memory.memory_latency,
    )
    print(f"  off-chip CPI: {cpi.off_chip(result.epi):.3f}")
    print(f"  overall CPI:  {cpi.overall(result.epi):.3f} "
          f"({100 * cpi.off_chip_share(result.epi):.0f}% off chip)")

    # Bonus: how much of that is stores?  Re-run with perfect stores.
    perfect = MlpSimulator(
        config.with_core(perfect_stores=True)
    ).run(annotated)
    store_share = 1 - perfect.epi / result.epi if result.epi else 0.0
    print(f"  missing stores cause {100 * store_share:.0f}% of off-chip CPI")


if __name__ == "__main__":
    main()
