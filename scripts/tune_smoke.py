#!/usr/bin/env python
"""CI tune smoke: the autotuner beats the default config on a real search.

Replays the committed search (``benchmarks/best_configs.json``: the
database workload over the scout x consistency x store_buffer space at
the committed trace sizing) with the random and genetic strategies under
the same evaluation budget, plus a grid baseline, and asserts:

1. every strategy's winner is no worse than the default configuration;
2. the seeded genetic search is at least as good as an equal-budget grid
   prefix (the acceptance bar for shipping the strategy);
3. the genetic winner reproduces the committed best exactly — EPI and
   knobs — so the artifact under ``benchmarks/`` cannot rot silently;
4. resubmitting the finished genetic search resumes from persisted state
   without re-evaluating anything.

Exits non-zero with diagnostics on any deviation and writes a JSON
artifact for CI upload.

Usage::

    python scripts/tune_smoke.py [--cache-dir DIR] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import api
from repro.harness import ExperimentSettings

COMMITTED = Path(__file__).resolve().parent.parent / "benchmarks" \
    / "best_configs.json"

#: The committed search space, in wire spellings (mirrors the "space"
#: line of benchmarks/best_configs.json).
SPACE = {
    "scout": ["none", "hws0", "hws1", "hws2"],
    "consistency": ["pc", "wc"],
    "store_buffer": [4, 16, 32],
}


def fail(message: str) -> None:
    print(f"TUNE SMOKE FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cache-dir", default=".ci-tune-cache")
    parser.add_argument("--out", default="TUNE_smoke.json")
    args = parser.parse_args(argv)

    committed = json.loads(COMMITTED.read_text(encoding="utf-8"))
    budget = committed["budget"]
    if budget > 12:
        fail(f"committed budget {budget} exceeds the smoke cap of 12")
    settings = ExperimentSettings(**committed["settings"])

    # One cache per strategy: a shared artifact cache would serve later
    # strategies from earlier measurements, making their results depend
    # on execution order (and shadowing the state-resume path below).
    results = {}
    for strategy in ("grid", "random", "genetic"):
        results[strategy] = api.tune(
            SPACE,
            profile=committed["workload"],
            variant=committed["variant"],
            strategy=strategy,
            budget=budget,
            seed=committed["seed"],
            settings=settings,
            cache_dir=Path(args.cache_dir) / strategy,
        )
        print(results[strategy].summary())

    default = api.run(
        committed["workload"], settings=settings,
        cache_dir=Path(args.cache_dir) / "grid",
    )
    print(f"default config: {default.epi_per_1000:.3f} EPI/1000")

    for strategy, result in results.items():
        if result.best_epi_per_1000 > default.epi_per_1000:
            fail(
                f"{strategy} winner {result.best_epi_per_1000:.3f} is "
                f"worse than the default {default.epi_per_1000:.3f}"
            )
    genetic = results["genetic"]
    grid = results["grid"]
    if genetic.best_epi_per_1000 > grid.best_epi_per_1000:
        fail(
            f"genetic {genetic.best_epi_per_1000:.3f} lost to the "
            f"equal-budget grid prefix {grid.best_epi_per_1000:.3f}"
        )

    knobs = {
        name: getattr(value, "value", value)
        for name, value in genetic.best
    }
    if genetic.best_epi_per_1000 != committed["best_epi_per_1000"]:
        fail(
            f"genetic best {genetic.best_epi_per_1000} drifted from the "
            f"committed {committed['best_epi_per_1000']} — regenerate "
            f"benchmarks/best_configs.json if the change is intended"
        )
    if knobs != committed["best_knobs"]:
        fail(f"genetic knobs {knobs} != committed {committed['best_knobs']}")

    resumed = api.tune(
        SPACE,
        profile=committed["workload"],
        variant=committed["variant"],
        strategy="genetic",
        budget=budget,
        seed=committed["seed"],
        settings=settings,
        cache_dir=Path(args.cache_dir) / "genetic",
    )
    if resumed.evaluations != 0 or resumed.resumed == 0:
        fail(
            f"finished search did not resume from state: "
            f"evaluations={resumed.evaluations} resumed={resumed.resumed}"
        )
    if resumed.best_epi_per_1000 != genetic.best_epi_per_1000:
        fail("resumed search changed the winner")

    artifact = {
        "committed": committed,
        "default_epi_per_1000": default.epi_per_1000,
        "strategies": {
            name: {
                "best_epi_per_1000": result.best_epi_per_1000,
                "best_knobs": {
                    knob: getattr(value, "value", value)
                    for knob, value in result.best
                },
                "evaluations": result.evaluations,
                "deduped": result.deduped,
                "pruned": result.pruned,
                "generations": result.generations,
                "wall_time": result.wall_time,
            }
            for name, result in results.items()
        },
        "resume": {
            "evaluations": resumed.evaluations,
            "resumed": resumed.resumed,
        },
    }
    Path(args.out).write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"tune smoke ok; artifact written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
