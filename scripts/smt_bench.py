#!/usr/bin/env python
"""SMT scheduler benchmark: the MLP-aware policy beats round-robin.

Runs the committed mixed-workload scenario (the ``oltp_java`` mix —
database + specjbb — at two hardware contexts, smoke trace sizing) once
per scheduling policy on one shared workbench, prints the comparison
table, and asserts the acceptance bar for shipping the MLP-aware
scheduler:

1. ``mlp`` achieves strictly higher system throughput (STP) than
   ``round_robin``;
2. ``mlp`` achieves strictly lower average normalized turnaround time
   (ANTT) than ``round_robin``;
3. with ``--check``, every recorded metric matches ``BENCH_smt.json``
   exactly — the runs are deterministic, so any drift means the model
   changed and the artifact must be regenerated deliberately.

Exits non-zero with diagnostics on any deviation.  ``--update`` rewrites
``BENCH_smt.json`` from the fresh measurement.

Usage::

    python scripts/smt_bench.py [--check | --update] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import compare_schedulers, context_breakdown
from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench

COMMITTED = Path(__file__).resolve().parent.parent / "BENCH_smt.json"

#: The committed scenario.  Tiny traces barely differentiate policies
#: (every epoch drains in a slot or two), so the scenario pins the
#: smoke sizing where store-miss epochs are long enough to matter.
SCENARIO = {
    "workload": "oltp_java",
    "contexts": 2,
    "variant": "pc",
    "settings": {
        "warmup": 3000,
        "measure": 9000,
        "seed": 13,
        "calibrate": False,
    },
}
SCHEDULERS = ("round_robin", "icount", "mlp")
ROUND = 9


def fail(message: str) -> None:
    print(f"SMT BENCH FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def measure() -> dict:
    settings = ExperimentSettings(**SCENARIO["settings"])
    bench = Workbench(settings, cache_dir=None)
    comparison = compare_schedulers(
        bench,
        SCENARIO["workload"],
        contexts=SCENARIO["contexts"],
        schedulers=SCHEDULERS,
        variant=SCENARIO["variant"],
    )
    print(comparison.summary())

    schedulers = {}
    for result in comparison.results:
        schedulers[result.scheduler] = {
            "stp": round(result.stp, ROUND),
            "antt": round(result.antt, ROUND),
            "fairness": round(result.fairness, ROUND),
            "epi_per_1000": round(result.epi_per_1000, ROUND),
            "total_slots": result.total_slots,
            "contexts": [
                {
                    "cid": cid,
                    "workload": workload,
                    "epi_per_1000": round(epi, ROUND),
                    "normalized_turnaround": round(ntt, ROUND),
                    "spin_slots": spin,
                }
                for cid, workload, epi, ntt, spin in context_breakdown(result)
            ],
        }
    return {"scenario": SCENARIO, "schedulers": schedulers}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="also require an exact match against the committed artifact",
    )
    parser.add_argument(
        "--update", action="store_true",
        help=f"rewrite {COMMITTED.name} from this measurement",
    )
    parser.add_argument("--out", default=None,
                        help="write the fresh measurement to PATH")
    args = parser.parse_args(argv)

    artifact = measure()
    rows = artifact["schedulers"]

    mlp, rr = rows["mlp"], rows["round_robin"]
    if mlp["stp"] <= rr["stp"]:
        fail(
            f"mlp STP {mlp['stp']} does not beat round_robin {rr['stp']} "
            f"on the committed scenario"
        )
    if mlp["antt"] >= rr["antt"]:
        fail(
            f"mlp ANTT {mlp['antt']} does not beat round_robin "
            f"{rr['antt']} on the committed scenario"
        )

    if args.out:
        Path(args.out).write_text(
            json.dumps(artifact, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.update:
        COMMITTED.write_text(
            json.dumps(artifact, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {COMMITTED}")
        return 0

    if args.check:
        committed = json.loads(COMMITTED.read_text(encoding="utf-8"))
        if committed != artifact:
            fail(
                "measurement drifted from the committed BENCH_smt.json — "
                "rerun with --update if the model change is intended"
            )
        print("committed artifact reproduced exactly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
