#!/usr/bin/env python
"""CI fault-injection smoke: kill a worker mid-shard, verify recovery.

Runs one workload unsharded (the golden), then sharded across real pool
workers with a ``kill@M`` fault injected into the shard specs.  The kill
hard-exits one worker mid-shard; the engine must recover on a retry
round, resume the dead shard from its last persisted checkpoint, and
produce a merged result bit-identical to the golden.

Exits non-zero (with a diagnostic) on any deviation, so the checkpoint
directory can be uploaded as a CI artifact for post-mortem.

Usage::

    python scripts/fault_smoke.py [--cache-dir DIR] [--shards N]
        [--checkpoint-every K] [--kill-at M]
"""

from __future__ import annotations

import argparse
import sys

from repro.engine.runner import EngineRunner, JobSpec
from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cache-dir", default=".ci-fault-cache")
    parser.add_argument("--workload", default="database")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--checkpoint-every", type=int, default=1000)
    parser.add_argument("--kill-at", type=int, default=1200)
    parser.add_argument("--warmup", type=int, default=3000)
    parser.add_argument("--measure", type=int, default=9000)
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args(argv)

    settings = ExperimentSettings(
        warmup=args.warmup, measure=args.measure, seed=args.seed,
        calibrate=False,
    )

    print(f"fault smoke: golden unsharded run of {args.workload} ...")
    golden = Workbench(settings).run(args.workload)
    print(f"  golden: {golden.summary()}")

    runner = EngineRunner(
        settings=settings, cache_dir=args.cache_dir, workers=2, retries=1,
    )
    spec = JobSpec(workload=args.workload, fault=f"kill@{args.kill_at}")
    print(
        f"fault smoke: sharded x{args.shards}, checkpoint every "
        f"{args.checkpoint_every}, kill@{args.kill_at} (shard-relative) ..."
    )
    report = runner.run_sharded(
        spec, args.shards, checkpoint_every=args.checkpoint_every,
    )
    print(f"  plan: {report.plan.describe()}")
    print(f"  {report.summary()}")
    for job in report.jobs:
        mark = "ok" if job.ok else f"FAILED: {job.error}"
        resumed = (
            f" resumed@{job.resumed_pos}" if job.resumed_pos >= 0 else ""
        )
        print(f"  {job.spec.describe():<48} {mark}{resumed}")

    failures = []
    if not report.ok:
        failures.append("sharded run did not recover from the kill")
    if report.merged != golden:
        failures.append("merged result differs from the unsharded golden")
    recovered = report.rounds >= 2 or any(
        job.attempts > 1 for job in report.jobs
    )
    if not recovered:
        failures.append(
            "the injected kill never fired (no retry round or re-attempt)"
        )
    if report.checkpoints_written == 0:
        failures.append("no checkpoints were written")
    if not any(job.resumed_pos >= 0 for job in report.jobs):
        failures.append("the retried shard did not resume from a checkpoint")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"fault smoke OK: recovered in {report.rounds} round(s), "
        f"{report.checkpoints_written} checkpoints, merged == golden"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
