#!/usr/bin/env python
"""CI fleet smoke: real processes, a SIGKILLed worker, verified recovery.

Starts a fleet coordinator and two worker *processes* (the same
``mlpsim serve --fleet`` / ``mlpsim worker --join`` entry points a user
runs), submits a sharded simulate job, SIGKILLs one worker while it holds
a leased shard with at least one checkpoint persisted, and then asserts:

1. the coordinator evicts the dead worker and requeues its shard;
2. the surviving worker resumes the shard from the killed worker's
   checkpoint (``resumed_shards >= 1`` — no completed work redone);
3. the merged result is bit-identical to a direct single-process run;
4. the job's trace — coordinator plus both worker processes, across the
   SIGKILL and the cross-worker resume — joins into ONE connected span
   tree, and its five-phase decomposition reconciles with the measured
   wall time within 5%;
5. ``/metrics`` carries both workers' federated labeled series
   (``fleet_worker_*{worker="..."}``), the SIGKILLed worker's included;
6. a SIGTERM drain shuts the coordinator down cleanly (exit 0, nothing
   abandoned) and the surviving worker exits 0 by itself.

A rendered critical-path report is always written to
``<log-dir>/fleet-critical-path.txt`` so CI failure artifacts include
the per-phase post-mortem.

Exits non-zero with diagnostics on any deviation; CI uploads the log and
checkpoint directories as artifacts for post-mortem.

Usage::

    python scripts/fleet_smoke.py [--cache-dir DIR] [--shards N]
        [--checkpoint-every K]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

from repro.engine.runner import ShardedReport
from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench
from repro.obs import (
    connected_roots,
    job_timeline,
    load_events,
    render_timeline_report,
)
from repro.service.client import ServiceClient


def _get(url: str, path: str) -> dict:
    with urllib.request.urlopen(f"{url}{path}", timeout=10.0) as response:
        return json.loads(response.read())


def _wait_for(predicate, timeout: float, what: str):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.05)
    raise TimeoutError(f"timed out waiting for {what}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cache-dir", default=".ci-fleet-cache")
    parser.add_argument("--workload", default="database")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--checkpoint-every", type=int, default=2000)
    parser.add_argument("--warmup", type=int, default=3000)
    # Large enough that one shard runs for whole seconds even on a fast
    # host: the SIGKILL must land while the victim still holds a leased,
    # checkpointed, *unfinished* shard, and that window is the shard's
    # execution time.
    parser.add_argument("--measure", type=int, default=60000)
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--log-dir", default=".")
    parser.add_argument(
        "--trace-dir", default="",
        help="trace directory shared by the coordinator and both workers "
             "(default: <log-dir>/fleet-traces)",
    )
    args = parser.parse_args(argv)

    os.makedirs(args.log_dir, exist_ok=True)
    cache_dir = os.path.abspath(args.cache_dir)
    trace_dir = os.path.abspath(
        args.trace_dir or os.path.join(args.log_dir, "fleet-traces"),
    )
    os.makedirs(trace_dir, exist_ok=True)
    settings = ExperimentSettings(
        warmup=args.warmup, measure=args.measure, seed=args.seed,
        calibrate=False,
    )
    sizing = [
        "--warmup", str(args.warmup), "--measure", str(args.measure),
        "--seed", str(args.seed), "--no-calibrate",
        "--cache-dir", cache_dir,
    ]

    print(f"fleet smoke: golden single-process run of {args.workload} ...")
    golden = Workbench(settings, cache_dir=cache_dir).run(args.workload)
    print(f"  golden: {golden.summary()}")

    mlpsim = [sys.executable, "-m", "repro.cli"]
    serve_log_path = os.path.join(args.log_dir, "fleet-serve.log")
    serve_log = open(serve_log_path, "w")
    coordinator = subprocess.Popen(
        mlpsim + sizing + [
            "serve", "--fleet", "--port", "0",
            "--lease-ttl", "1.0", "--max-inflight", "1",
            "--drain-timeout", "120",
            "--trace-dir", trace_dir,
        ],
        stdout=serve_log, stderr=subprocess.STDOUT,
    )
    procs: list[subprocess.Popen] = [coordinator]
    try:
        def url_from_log():
            with open(serve_log_path) as handle:
                for line in handle:
                    marker = "fleet coordinator listening on "
                    if marker in line:
                        return line.split(marker, 1)[1].strip()
            return None

        url = _wait_for(url_from_log, 30.0, "the coordinator URL")
        print(f"fleet smoke: coordinator at {url}")

        workers = {}
        for name in ("victim", "survivor"):
            log = open(os.path.join(args.log_dir, f"fleet-{name}.log"), "w")
            proc = subprocess.Popen(
                mlpsim + [
                    "worker", "--join", url, "--name", name,
                    "--trace-dir", trace_dir,
                ],
                stdout=log, stderr=subprocess.STDOUT,
            )
            workers[name] = proc
            procs.append(proc)
        _wait_for(
            lambda: _get(url, "/healthz")["fleet"]["workers"] == 2,
            30.0, "both workers to register",
        )
        print("fleet smoke: 2 workers registered")

        client = ServiceClient(url, timeout=30.0)
        receipt = client.submit({
            "kind": "simulate",
            "job": {"workload": args.workload, "variant": "pc"},
            "shards": args.shards,
            "checkpoint_every": args.checkpoint_every,
        })
        job_id = receipt["id"]
        print(f"fleet smoke: sharded job {job_id} submitted")

        # Kill the victim once it holds a lease AND its shard has persisted
        # a checkpoint (so there is something to resume from).
        def victim_leases_with_checkpoint():
            status = _get(url, "/v1/fleet/status")
            victims = [
                w["id"] for w in status["workers"] if w["name"] == "victim"
            ]
            if not victims:
                return False
            held = [
                t for t in status["task_table"]
                if t["state"] == "leased" and t["worker"] == victims[0]
            ]
            checkpoint_dir = os.path.join(cache_dir, "checkpoint")
            return bool(held) and bool(
                os.path.isdir(checkpoint_dir)
                and len(os.listdir(checkpoint_dir)) >= args.shards
            )

        _wait_for(
            victim_leases_with_checkpoint, 60.0,
            "the victim to lease a shard with a checkpoint on disk",
        )
        os.kill(workers["victim"].pid, signal.SIGKILL)
        print(
            f"fleet smoke: SIGKILLed worker 'victim' "
            f"(pid {workers['victim'].pid}) mid-shard"
        )

        status = client.wait(job_id, timeout=300.0)
        failures = []
        if status["state"] != "done":
            failures.append(
                f"job ended {status['state']}: {status.get('error', '')}"
            )
        else:
            sharded = status["result"]["sharded"]
            report = ShardedReport.from_dict(status["result"]["report"])
            print(
                f"  rounds={sharded['rounds']} "
                f"resumed_shards={sharded['resumed_shards']} "
                f"plan={sharded['plan']}"
            )
            if sharded["rounds"] < 2:
                failures.append(
                    "the killed shard was never re-leased (rounds < 2)"
                )
            if sharded["resumed_shards"] < 1:
                failures.append(
                    "the re-routed shard did not resume from the dead "
                    "worker's checkpoint"
                )
            if report.merged != golden:
                failures.append(
                    "merged fleet result differs from the single-process "
                    "golden"
                )
            redone = [
                job for job in report.jobs
                if job.ok and job.attempts > 1 and job.resumed_pos < 0
            ]
            if redone:
                failures.append(
                    f"{len(redone)} shard(s) were recomputed from scratch "
                    f"instead of resuming"
                )
        metrics = _get(url, "/metrics?format=json")
        if metrics["gauges"].get("fleet_workers_evicted_total", 0) < 1:
            failures.append("the dead worker was never evicted")

        # Metrics federation: both worker processes must have labeled
        # series on the coordinator's /metrics — including the SIGKILLed
        # one, whose last reported totals are retained after eviction.
        federated = {
            entry["labels"].get("worker")
            for entry in metrics.get("labeled", {}).get(
                "fleet_worker_tasks_done_total", [],
            )
        }
        missing = {"victim", "survivor"} - federated
        if missing:
            failures.append(
                f"workers missing from federated /metrics series: "
                f"{sorted(missing)} (saw {sorted(federated)})"
            )

        # Trace propagation: the job's spans — coordinator + both worker
        # processes, across the SIGKILL and the cross-worker resume —
        # must join into one connected tree, and the phase decomposition
        # must reconcile with the measured wall time.
        events = load_events(trace_dir)
        roots = connected_roots(events, job_id)
        if len(roots) != 1:
            failures.append(
                f"trace tree for job {job_id} is split: "
                f"{len(roots)} root(s) instead of 1"
            )
        timeline = job_timeline(events, job_id)
        if timeline is None:
            failures.append(f"no fleet_job span for {job_id} in the trace")
        else:
            report_path = os.path.join(
                args.log_dir, "fleet-critical-path.txt",
            )
            with open(report_path, "w") as handle:
                handle.write(render_timeline_report(timeline, events) + "\n")
            print(f"fleet smoke: critical-path report at {report_path}")
            drift = abs(timeline.phase_sum - timeline.wall)
            if timeline.wall > 0 and drift > 0.05 * timeline.wall:
                failures.append(
                    f"phase sum {timeline.phase_sum:.3f}s deviates from "
                    f"wall {timeline.wall:.3f}s by more than 5%"
                )
            if timeline.resumes < 1:
                failures.append(
                    "timeline records no checkpoint resume for the "
                    "re-routed shard"
                )

        # Graceful drain: coordinator exits 0 with nothing abandoned, and
        # the surviving worker drains out by itself.
        coordinator.send_signal(signal.SIGTERM)
        coordinator.wait(timeout=180.0)
        survivor_code = workers["survivor"].wait(timeout=60.0)
        if coordinator.returncode != 0:
            failures.append(
                f"coordinator exited {coordinator.returncode} "
                f"(work abandoned during drain?)"
            )
        if survivor_code != 0:
            failures.append(f"surviving worker exited {survivor_code}")

        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(
            "fleet smoke OK: eviction, checkpoint resume, bit-identical "
            "merge, connected trace tree, federated metrics, clean drain"
        )
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)


if __name__ == "__main__":
    sys.exit(main())
