#!/usr/bin/env python
"""CI estimate sanity gate: the analytical model tracks measurement.

Compares ``api.estimate`` against measured EPI at the golden-fixture
settings (the sizing ``tests/test_golden_window.py`` pins) and asserts
the documented accuracy contract:

1. at the anchor point (default config, pc variant) the calibrated
   estimate reproduces measured EPI essentially exactly, for every
   committed workload profile;
2. single-knob excursions stay within ``VALIDATION_MARGIN`` (25%);
3. a call completes in well under a millisecond — the estimate verb
   must never silently grow a simulation dependency.

Writes a JSON artifact with every (estimate, measured, error) triple for
CI upload and exits non-zero with diagnostics on any violation.

Usage::

    python scripts/estimate_smoke.py [--cache-dir DIR] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.estimate import VALIDATION_MARGIN, estimate
from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench
from repro.workloads import WORKLOADS

GOLDEN_SETTINGS = {"warmup": 3000, "measure": 9000, "seed": 13,
                   "calibrate": False}
ANCHOR_MARGIN = 1e-6
#: Single-knob excursions exercised on the ``database`` profile.
EXCURSIONS = (
    {"scout": "hws2"},
    {"store_prefetch": "sp0"},
    {"store_prefetch": "sp2"},
    {"store_buffer": 4},
    {"perfect_stores": True},
)
TIME_BUDGET_SECONDS = 1e-3


def fail(message: str) -> None:
    print(f"ESTIMATE SMOKE FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cache-dir", default=".ci-estimate-cache")
    parser.add_argument("--out", default="ESTIMATE_smoke.json")
    args = parser.parse_args(argv)

    bench = Workbench(
        ExperimentSettings(**GOLDEN_SETTINGS), cache_dir=args.cache_dir,
    )
    rows = []
    failures = []

    def check(label: str, workload: str, margin: float, **knobs) -> None:
        measured = bench.run(workload, **knobs).epi_per_1000
        predicted = estimate(workload, **knobs).predicted_epi_per_1000
        error = abs(predicted - measured) / measured
        rows.append({
            "case": label,
            "workload": workload,
            "knobs": knobs,
            "measured_epi_per_1000": measured,
            "predicted_epi_per_1000": predicted,
            "relative_error": error,
            "margin": margin,
        })
        print(
            f"  {label:32s} measured={measured:8.3f} "
            f"predicted={predicted:8.3f} err={error * 100:6.2f}%"
        )
        if error > margin:
            failures.append(
                f"{label}: relative error {error:.3f} exceeds the "
                f"{margin:.2f} margin"
            )

    for workload in sorted(WORKLOADS):
        check(f"anchor:{workload}", workload, ANCHOR_MARGIN)
    for knobs in EXCURSIONS:
        label = ",".join(f"{k}={v}" for k, v in knobs.items())
        check(f"excursion:{label}", "database", VALIDATION_MARGIN, **knobs)

    calls = 200
    start = time.perf_counter()
    for _ in range(calls):
        estimate("database", scout="hws2")
    per_call = (time.perf_counter() - start) / calls
    print(f"  estimate call: {per_call * 1e6:.1f} us")

    artifact = {
        "settings": GOLDEN_SETTINGS,
        "cases": rows,
        "seconds_per_call": per_call,
        "failures": failures,
    }
    Path(args.out).write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    if failures:
        fail("; ".join(failures))
    if per_call > TIME_BUDGET_SECONDS:
        fail(
            f"estimate took {per_call * 1e3:.3f} ms/call "
            f"(budget {TIME_BUDGET_SECONDS * 1e3:.1f} ms)"
        )
    print(f"estimate smoke ok: {len(rows)} cases within margin")
    return 0


if __name__ == "__main__":
    sys.exit(main())
