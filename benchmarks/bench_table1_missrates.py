"""Table 1: store frequency and L2 miss rates for the four workloads.

Prints measured-vs-paper rows and asserts the calibrated generators land on
the published statistics.
"""

from __future__ import annotations

import pytest

from repro.harness.tables import PAPER_TABLE1, format_table1, table1

from conftest import ALL_WORKLOADS, once


@pytest.mark.benchmark(group="table1")
def test_table1_miss_rates(benchmark, bench_default):
    rows = once(benchmark, table1, bench_default, ALL_WORKLOADS)
    print()
    print(format_table1(rows))

    for row in rows:
        paper = PAPER_TABLE1[row.workload]
        assert row.store_frequency == pytest.approx(
            paper["store_freq"], rel=0.12
        )
        assert row.store_miss_per_100 == pytest.approx(
            paper["store"], rel=0.45
        )
        assert row.load_miss_per_100 == pytest.approx(paper["load"], rel=0.45)
        if paper["inst"] >= 0.05:
            assert row.inst_miss_per_100 == pytest.approx(
                paper["inst"], rel=0.5
            )

    # The ordering claims behind the paper's Table 1 narrative: the database
    # workload has by far the highest store miss rate; store miss rates are
    # comparable to load miss rates.
    by_name = {row.workload: row for row in rows}
    assert by_name["database"].store_miss_per_100 == max(
        row.store_miss_per_100 for row in rows
    )
