"""Ablation: memory-latency sensitivity of the overlap window and scout.

EPI itself is latency-independent by construction (that is the metric's
point), but two mechanisms scale with latency measured in instructions:
the silent-overlap window (Table 2) and the Hardware Scout depth.  This
ablation verifies both directions:

- longer latency -> fewer fully overlapped stores (harder to hide),
- longer latency -> deeper scout -> more of the miss stream prefetched.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import ScoutMode
from repro.core import MlpSimulator

from conftest import once


LATENCIES = (250, 500, 1000)


def run_latency_sweep(bench):
    annotated = bench.annotated("specweb")
    results = {}
    for latency in LATENCIES:
        config = dataclasses.replace(
            bench.simulation_config("specweb"),
        ).with_memory(memory_latency=latency)
        base = MlpSimulator(config).run(annotated)
        scout = MlpSimulator(
            config.with_core(scout=ScoutMode.HWS2)
        ).run(annotated)
        results[latency] = {
            "overlap_fraction": base.store_overlap_fraction,
            "scout_epi": scout.epi_per_1000,
            "base_epi": base.epi_per_1000,
        }
    return results


@pytest.mark.benchmark(group="ablation")
def test_latency_sensitivity(benchmark, bench_default):
    results = once(benchmark, run_latency_sweep, bench_default)
    print()
    for latency, row in results.items():
        print(
            f"  latency={latency}: overlap={row['overlap_fraction']:.3f} "
            f"base EPI={row['base_epi']:.3f} HWS2 EPI={row['scout_epi']:.3f}"
        )

    # Fully overlapping a store gets harder as the latency grows.
    overlaps = [results[latency]["overlap_fraction"] for latency in LATENCIES]
    assert overlaps[0] >= overlaps[1] >= overlaps[2]

    # Scout keeps (or improves) its effectiveness as latency grows: the
    # episode covers proportionally more instructions.
    gains = [
        results[latency]["base_epi"] - results[latency]["scout_epi"]
        for latency in LATENCIES
    ]
    assert gains[-1] >= gains[0] * 0.9
