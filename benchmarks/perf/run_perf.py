#!/usr/bin/env python
"""Continuous perf benchmark of the MLPsim core loop.

Thin driver over :mod:`repro.bench.perf` (same engine as
``mlpsim bench --perf``) for running the harness straight from a checkout::

    PYTHONPATH=src python benchmarks/perf/run_perf.py
    PYTHONPATH=src python benchmarks/perf/run_perf.py \
        --out BENCH_core.json --baseline BENCH_core.json

The harness is deliberately separate from the pytest-benchmark files one
directory up: those measure *model-level* quantities (EPI orderings across
figures), this measures *implementation speed* — instructions simulated
per wall-clock second over fixed, seeded traces — and gates regressions
against the committed ``BENCH_core.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure MLPsim core-loop throughput "
                    "(instructions/sec per workload profile)",
    )
    parser.add_argument(
        "--reps", type=int, default=5,
        help="timed repetitions per profile, median reported (default 5)",
    )
    parser.add_argument(
        "--warmup-reps", type=int, default=2,
        help="untimed repetitions before measuring (default 2)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the report as JSON (a pre-existing 'baseline' section "
             "in the target file is preserved)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="fail (exit 1) if insts/sec regresses vs this report",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.20,
        help="tolerated fractional insts/sec drop (default 0.20)",
    )
    args = parser.parse_args(argv)

    from repro.bench.perf import main as perf_main

    return perf_main(
        reps=args.reps,
        warmup_reps=args.warmup_reps,
        out=args.out,
        baseline=args.baseline,
        max_regression=args.max_regression,
    )


if __name__ == "__main__":
    sys.exit(main())
