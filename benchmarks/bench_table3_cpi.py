"""Table 3: CPI_on-chip for the default processor configuration.

The epoch model takes CPI_on-chip as an input (the paper measured it with a
perfect-L2 cycle simulator); here it is estimated from trace properties and
compared against the paper's published values.
"""

from __future__ import annotations

import pytest

from repro.core.cpi import PAPER_CPI_ON_CHIP
from repro.harness.tables import format_table3, table3

from conftest import ALL_WORKLOADS, once


@pytest.mark.benchmark(group="table3")
def test_table3_on_chip_cpi(benchmark, bench_default):
    measured = once(benchmark, table3, bench_default, ALL_WORKLOADS)
    print()
    print(format_table3(measured))

    for workload, cpi in measured.items():
        # Same regime as the paper's 0.95-1.38 band.
        assert 0.7 < cpi < 2.0
        assert cpi == pytest.approx(PAPER_CPI_ON_CHIP[workload], rel=0.45)
