#!/usr/bin/env python
"""Fleet load test: many concurrent clients against 1/2/4-worker fleets.

Spins up an in-process :class:`FleetCoordinator` plus N thread workers per
fleet size, then fires a swarm of concurrent clients (default 200) at it.
Each client submits a stream of small simulate jobs drawn from a pool of
distinct configurations and blocks until each completes, so the measured
latency is the end-to-end service latency (admission, routing, execution,
assembly) a real caller would see.  Saturation answers (429/503) are
retried client-side honouring ``Retry-After`` + decorrelated jitter — the
load test *counts* them rather than failing, because producing structured
backpressure under overload is exactly the behaviour under test.

The committed ``BENCH_service.json`` records, per fleet size: p50/p99
client-observed latency, throughput (jobs/sec), saturation answers seen,
dedup/result-store hits, and a per-phase latency breakdown (p50/p99 of
queued / lease_wait / recovery / executing / merging across executed
jobs) reconstructed from the coordinator's trace by
:mod:`repro.obs.timeline` — the column that says *where* p99 lives, not
just how big it is.  ``cpu_count`` is recorded alongside because
worker scaling is meaningless without it: thread workers on a single CPU
time-share one core, so jobs/sec stays roughly flat until the host has
cores to give (the shape to look for on multicore CI is throughput
tracking worker count while p99 holds).

Usage::

    PYTHONPATH=src python benchmarks/loadtest/run_loadtest.py \
        [--clients 200] [--requests 2] [--fleet-sizes 1,2,4] \
        [--out BENCH_service.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import statistics
import sys
import tempfile
import threading
import time

from repro.fleet import FleetCoordinator, FleetWorker
from repro.harness import ExperimentSettings
from repro.obs import (
    ObsOptions,
    aggregate_phases,
    fleet_job_ids,
    job_timeline,
    load_events,
)
from repro.service.client import ServiceClient, ServiceError

#: A deliberately tiny trace: the load test measures the *service*, not
#: the simulator, so each job must cost milliseconds.
TINY = ExperimentSettings(warmup=300, measure=900, seed=11, calibrate=False)

WORKLOADS = ("database", "tpcw", "specjbb", "specweb")


def percentile(values, fraction):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _phase_breakdown(trace_dir: str) -> dict:
    """Per-phase p50/p99/mean across the run's executed jobs.

    Deduped jobs and result-store hits never expand into tasks, so the
    breakdown covers jobs that actually crossed the fleet — the ones
    whose latency the phases explain.
    """
    events = load_events(trace_dir, strict=False)
    timelines = [
        timeline
        for timeline in (
            job_timeline(events, job_id) for job_id in fleet_job_ids(events)
        )
        if timeline is not None and timeline.state == "done"
    ]
    stats = aggregate_phases(timelines)
    return {
        name: {
            "count": int(summary["count"]),
            "mean": round(summary["mean"], 4),
            "p50": round(summary["p50"], 4),
            "p99": round(summary["p99"], 4),
        }
        for name, summary in sorted(stats.items())
    }


def run_fleet_size(
    workers: int,
    clients: int,
    requests_per_client: int,
    distinct_configs: int,
    queue_capacity: int,
    cache_dir: str,
) -> dict:
    # Trace only the coordinator: the five-phase decomposition is built
    # from coordinator-side events alone (single clock), and worker-side
    # tracing would add per-job span overhead to the thing being timed.
    trace_dir = os.path.join(cache_dir, "traces")
    coordinator = FleetCoordinator(
        port=0,
        settings=TINY,
        cache_dir=cache_dir,
        queue_capacity=queue_capacity,
        lease_ttl=5.0,
        default_backend="batch",
        obs=ObsOptions.for_trace(trace_dir, trace_epochs=False),
    ).start()
    fleet_workers = []
    threads = []
    for index in range(workers):
        worker = FleetWorker(
            coordinator.url, name=f"lt-w{index}", lease_wait=2.0,
        ).join()
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        fleet_workers.append(worker)
        threads.append(thread)

    latencies: list[float] = []
    saturation = [0]
    failures: list[str] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def client_loop(client_index: int) -> None:
        rng = random.Random(1000 + client_index)
        client = ServiceClient(
            coordinator.url,
            timeout=60.0,
            saturation_retries=50,
            backoff=0.02,
            max_backoff=2.0,
            rng=rng,
        )
        barrier.wait()
        for request_index in range(requests_per_client):
            point = rng.randrange(distinct_configs)
            started = time.perf_counter()
            try:
                receipt = client.submit({
                    "kind": "simulate",
                    "job": {
                        "workload": WORKLOADS[point % len(WORKLOADS)],
                        "variant": "pc",
                        "core_changes": {
                            "store_queue": 4 + (point % 16) * 4,
                        },
                    },
                })
                status = client.wait(receipt["id"], timeout=600.0)
            except (ServiceError, TimeoutError) as exc:
                with lock:
                    failures.append(f"client {client_index}: {exc}")
                continue
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)
                if status["state"] != "done":
                    failures.append(
                        f"client {client_index}: job ended "
                        f"{status['state']}: {status.get('error', '')}"
                    )

    client_threads = [
        threading.Thread(target=client_loop, args=(index,))
        for index in range(clients)
    ]
    for thread in client_threads:
        thread.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for thread in client_threads:
        thread.join()
    wall = time.perf_counter() - wall_start

    counters = coordinator.metrics.to_dict()["counters"]
    saturation[0] = counters.get("jobs_shed_total", 0)
    result = {
        "workers": workers,
        "clients": clients,
        "requests_per_client": requests_per_client,
        "jobs_completed": len(latencies),
        "failures": len(failures),
        "wall_seconds": round(wall, 3),
        "jobs_per_sec": round(len(latencies) / wall, 2) if wall else 0.0,
        "latency_p50_seconds": round(percentile(latencies, 0.50), 4),
        "latency_p99_seconds": round(percentile(latencies, 0.99), 4),
        "latency_max_seconds": round(max(latencies), 4) if latencies else 0.0,
        "latency_mean_seconds": (
            round(statistics.fmean(latencies), 4) if latencies else 0.0
        ),
        "submitted_total": counters.get("jobs_submitted_total", 0),
        "deduped_total": counters.get("jobs_deduped_total", 0),
        "result_store_hits": counters.get(
            "fleet_result_cache_hits_total", 0,
        ),
        "shed_total": counters.get("jobs_shed_total", 0),
        "tasks_done_total": counters.get("fleet_tasks_done_total", 0),
        "phase_breakdown_seconds": _phase_breakdown(trace_dir),
    }

    coordinator.begin_drain()
    for worker in fleet_workers:
        worker.request_stop()
    for thread in threads:
        thread.join(timeout=15.0)
    coordinator.stop()

    if failures:
        for failure in failures[:10]:
            print(f"  FAIL: {failure}", file=sys.stderr)
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=200)
    parser.add_argument("--requests", type=int, default=2,
                        help="jobs each client submits sequentially")
    parser.add_argument("--fleet-sizes", default="1,2,4")
    parser.add_argument("--distinct-configs", type=int, default=64,
                        help="size of the job-configuration pool; repeats "
                             "exercise dedup and the shared result store")
    parser.add_argument("--queue-capacity", type=int, default=64)
    parser.add_argument("--out", default="BENCH_service.json")
    args = parser.parse_args(argv)

    sizes = [int(s) for s in args.fleet_sizes.split(",") if s]
    runs = []
    for size in sizes:
        # A fresh cache per fleet size: result-store hits then measure
        # dedup *within* one run, not leakage from the previous one.
        with tempfile.TemporaryDirectory(prefix="loadtest-") as cache_dir:
            print(
                f"loadtest: {size} worker(s), {args.clients} clients x "
                f"{args.requests} request(s) ..."
            )
            run = run_fleet_size(
                size, args.clients, args.requests, args.distinct_configs,
                args.queue_capacity, cache_dir,
            )
            runs.append(run)
            print(
                f"  {run['jobs_completed']} jobs in {run['wall_seconds']}s "
                f"({run['jobs_per_sec']}/s), p50 "
                f"{run['latency_p50_seconds']}s, "
                f"p99 {run['latency_p99_seconds']}s, "
                f"{run['failures']} failure(s)"
            )

    report = {
        "harness": "benchmarks/loadtest/run_loadtest.py",
        "settings": {
            "warmup": TINY.warmup,
            "measure": TINY.measure,
            "seed": TINY.seed,
        },
        "environment": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "note": (
            "thread workers time-share the host's cores: jobs/sec tracks "
            "worker count only when cpu_count allows; on a single CPU the "
            "curve is flat by construction"
        ),
        "runs": runs,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"loadtest: report written to {args.out}")
    return 1 if any(run["failures"] for run in runs) else 0


if __name__ == "__main__":
    sys.exit(main())
