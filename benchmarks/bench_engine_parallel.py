"""Engine runner: parallel sweep throughput and serial equivalence.

Runs the Figure 2 store-queue x prefetch-mode grid for one workload through
:class:`~repro.engine.runner.EngineRunner` and checks the engine-layer
contract: the parallel batch returns bit-identical numbers to the serial
workbench path, and the shared artifact cache means the batch pays for at
most one annotation per (workload, variant).
"""

from __future__ import annotations

import pytest

from repro import api
from repro.config import StorePrefetchMode

from conftest import once


@pytest.mark.benchmark(group="engine")
def test_parallel_sweep_matches_serial(benchmark, bench_default,
                                       runner_default):
    spec = api.SweepSpec.build(
        "database",
        store_prefetch=[StorePrefetchMode.NONE, StorePrefetchMode.AT_RETIRE,
                        StorePrefetchMode.AT_EXECUTE],
        store_queue=[16, 32, 64],
    )
    parallel = once(benchmark, api.sweep, spec, runner=runner_default)
    serial = [
        bench_default.run("database", **dict(point))
        for point in spec.points()
    ]
    assert [r.epi_per_1000 for r in parallel] == \
        [r.epi_per_1000 for r in serial]
    assert [r.store_mlp for r in parallel] == \
        [r.store_mlp for r in serial]
    print()
    for record in parallel:
        print(f"  {record.label():42s} EPI/1000={record.epi_per_1000:.3f}")


@pytest.mark.benchmark(group="engine")
def test_parallel_smac_sweep(benchmark, runner_smac):
    """SMAC profiles reach the workers via the runner's profiles argument."""
    spec = api.SweepSpec.build("database", store_queue=[32, 64])
    records = once(benchmark, api.sweep, spec, runner=runner_smac)
    assert len(records) == 2
    assert all(r.epi_per_1000 > 0 for r in records)
