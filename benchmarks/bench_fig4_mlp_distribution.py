"""Figure 4: store MLP distributions segmented by load+instruction MLP.

Paper claims asserted: the database workload has few *expensive* missing
stores (lone store miss overlapped with nothing), while for SPECjbb2000 and
SPECweb99 the majority of store-miss epochs are expensive — those stores
precede serializing instructions.
"""

from __future__ import annotations

import pytest

from repro.harness.figures import figure4

from conftest import ALL_WORKLOADS, once


@pytest.mark.benchmark(group="figure4")
def test_figure4_mlp_distributions(benchmark, bench_default):
    results = once(benchmark, figure4, bench_default, ALL_WORKLOADS)
    print()
    for workload, cells in results.items():
        print(f"== {workload}: fraction of epochs by (storeMLP, load+instMLP) ==")
        bars = {}
        for (store_mlp, load_mlp), fraction in sorted(cells.items()):
            if store_mlp == 0:
                continue
            bars.setdefault(store_mlp, []).append((load_mlp, fraction))
        for store_mlp, segments in bars.items():
            body = " ".join(f"li{l}={f:.4f}" for l, f in segments)
            print(f"  storeMLP={store_mlp}: {body}")

    def expensive_fraction(cells):
        """Lone missing store, no other misses, over store-MLP>=1 epochs."""
        store_epochs = sum(
            fraction for (s, _), fraction in cells.items() if s >= 1
        )
        lone = cells.get((1, 0), 0.0)
        return lone / store_epochs if store_epochs else 0.0

    fractions = {
        workload: expensive_fraction(cells)
        for workload, cells in results.items()
    }
    print("expensive store-miss epochs:", {
        k: round(v, 3) for k, v in fractions.items()
    })

    # SPECjbb/SPECweb: the majority of store-miss epochs are expensive.
    assert fractions["specjbb"] > 0.5
    assert fractions["specweb"] > 0.5
    # Database: relatively few expensive missing stores.
    assert fractions["database"] < fractions["specjbb"]
    assert fractions["database"] < fractions["specweb"]

    # Database achieves high store MLP (bursts overlap): some epochs with
    # storeMLP >= 3 exist.
    db = results["database"]
    assert any(s >= 3 and f > 0 for (s, _), f in db.items())
