"""Ablation: store coalescing granularity (paper Section 5.1 prose).

The paper reports coalescing is moderately effective for the database
workload and TPC-W with small store queues — 64B coalescing lets a 32-entry
queue perform like a 64-entry queue without coalescing — and has no effect
for SPECjbb/SPECweb, whose limiter is serialization.
"""

from __future__ import annotations

import pytest

from repro.config import StorePrefetchMode

from conftest import once


def run_coalescing_sweep(bench):
    results = {}
    for workload in ("database", "tpcw", "specjbb", "specweb"):
        series = {}
        for granularity in (0, 8, 64):
            for sq in (16, 32, 64):
                result = bench.run(
                    workload,
                    coalesce_bytes=granularity,
                    store_queue=sq,
                    store_prefetch=StorePrefetchMode.NONE,
                )
                series[f"co{granularity}/sq{sq}"] = result.epi_per_1000
        results[workload] = series
    return results


@pytest.mark.benchmark(group="ablation")
def test_coalescing_granularity(benchmark, bench_default):
    results = once(benchmark, run_coalescing_sweep, bench_default)
    print()
    for workload, series in results.items():
        row = " ".join(f"{key}={value:.3f}" for key, value in series.items())
        print(f"  {workload}: {row}")

    for workload, series in results.items():
        # Coalescing never hurts at any queue size.
        for sq in (16, 32, 64):
            assert series[f"co64/sq{sq}"] <= series[f"co0/sq{sq}"] * 1.03
            assert series[f"co8/sq{sq}"] <= series[f"co0/sq{sq}"] * 1.03

    # The paper's headline: for the database workload, 64B coalescing at
    # SQ=32 reaches (or beats) the uncoalesced SQ=64 configuration.
    db = results["database"]
    assert db["co64/sq32"] <= db["co0/sq64"] * 1.05

    # SPECjbb/SPECweb are insensitive: the spread across granularities at
    # the default queue is small.
    for workload in ("specjbb", "specweb"):
        series = results[workload]
        values = [series[f"co{g}/sq32"] for g in (0, 8, 64)]
        assert max(values) - min(values) <= 0.12 * max(values) + 0.02
