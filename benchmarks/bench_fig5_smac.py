"""Figure 5: Store Miss Accelerator effectiveness.

Runs on the scaled SMAC geometry (see DESIGN.md: SMAC entry counts and
workload store-miss footprints are both scaled 1:128 from the paper, which
warmed its SMAC for 1G instructions).  Paper claims asserted:

1. the SMAC improves store performance at every prefetch setting,
2. EPI is monotonically non-increasing in SMAC size,
3. a sufficiently large SMAC approaches prefetch-at-execute's EPI without
   issuing any prefetch requests (bandwidth conservation),
4. saturation order follows footprints: SPECweb saturates with a smaller
   SMAC than the database workload.
"""

from __future__ import annotations

import pytest

from repro.harness.figures import SMAC_ENTRY_SWEEP, figure5
from repro.harness.formatting import format_series

from conftest import ALL_WORKLOADS, once


@pytest.mark.benchmark(group="figure5")
def test_figure5_smac(benchmark, bench_smac):
    results = once(benchmark, figure5, bench_smac, ALL_WORKLOADS)
    print()
    for workload, series in results.items():
        print(f"== {workload} (epochs per 1000 instructions) ==")
        for mode in ("Sp0", "Sp1", "Sp2"):
            points = {
                key.split("/", 1)[1]: value
                for key, value in series.items()
                if key.startswith(mode + "/")
            }
            print(" ", format_series(mode, points))

    for workload, series in results.items():
        for mode in ("Sp0", "Sp1", "Sp2"):
            none = series[f"{mode}/none"]
            biggest = series[f"{mode}/smac{SMAC_ENTRY_SWEEP[-1]}"]
            perfect = series[f"{mode}/perfect"]
            # (1) the SMAC helps.
            assert biggest <= none * 1.01
            # (2) monotone in SMAC capacity.
            sweep = [series[f"{mode}/smac{entries}"]
                     for entries in SMAC_ENTRY_SWEEP]
            for small, large in zip(sweep, sweep[1:]):
                assert large <= small * 1.04
            # Sanity: nothing beats perfect stores.
            assert biggest >= perfect * 0.98

    # (3) without any prefetching, a big SMAC recovers most of the gap that
    # prefetch-at-execute recovers.
    for workload in ("database", "specweb"):
        series = results[workload]
        sp0_none = series["Sp0/none"]
        sp2_none = series["Sp2/none"]
        sp0_big = series[f"Sp0/smac{SMAC_ENTRY_SWEEP[-1]}"]
        prefetch_gain = sp0_none - sp2_none
        smac_gain = sp0_none - sp0_big
        if prefetch_gain > 0.05:
            assert smac_gain >= 0.5 * prefetch_gain

    # (4) saturation ordering: the SMAC size at which each workload reaches
    # within 5% of its large-SMAC EPI grows with its footprint.
    def saturation_entries(series, mode="Sp0"):
        floor = series[f"{mode}/smac{SMAC_ENTRY_SWEEP[-1]}"]
        span = series[f"{mode}/none"] - floor
        if span <= 0.02:
            return SMAC_ENTRY_SWEEP[0]
        for entries in SMAC_ENTRY_SWEEP:
            if series[f"{mode}/smac{entries}"] <= floor + 0.1 * span:
                return entries
        return SMAC_ENTRY_SWEEP[-1]

    assert saturation_entries(results["specweb"]) <= saturation_entries(
        results["database"]
    )
