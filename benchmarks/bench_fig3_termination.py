"""Figure 3: window termination conditions, default config (A) and
SLE + prefetch-past-serializing (B).

Paper claims asserted: store-serialize dominates epochs with store MLP >= 1
for TPC-W/SPECjbb/SPECweb in (A); after SLE it collapses and becomes
negligible for SPECjbb/SPECweb in (B).
"""

from __future__ import annotations

import pytest

from repro.core.epoch import TerminationCondition
from repro.harness.figures import figure3

from conftest import ALL_WORKLOADS, once


def _print(results, label):
    print(f"-- Figure 3{label}: fraction of epochs (store MLP >= 1) --")
    for workload, fractions in results.items():
        ranked = sorted(fractions.items(), key=lambda kv: -kv[1])
        row = " ".join(f"{cond.value}={frac:.3f}" for cond, frac in ranked)
        print(f"  {workload}: {row}")


@pytest.mark.benchmark(group="figure3")
def test_figure3a_default_terminations(benchmark, bench_default):
    results = once(benchmark, figure3, bench_default, ALL_WORKLOADS, sle=False)
    print()
    _print(results, "A")

    for workload in ("tpcw", "specjbb", "specweb"):
        fractions = results[workload]
        serialize = fractions.get(TerminationCondition.STORE_SERIALIZE, 0.0)
        assert serialize == max(fractions.values()), (
            f"{workload}: store serialize must dominate Figure 3A"
        )

    # The database workload is not serialize-dominated: its store misses
    # overlap with window-full and other conditions.
    db = results["database"]
    db_serialize = db.get(TerminationCondition.STORE_SERIALIZE, 0.0)
    assert db_serialize < 0.5 * sum(db.values())


@pytest.mark.benchmark(group="figure3")
def test_figure3b_sle_terminations(benchmark, bench_default):
    results_a = figure3(bench_default, ALL_WORKLOADS, sle=False)
    results_b = once(
        benchmark, figure3, bench_default, ALL_WORKLOADS, sle=True
    )
    print()
    _print(results_b, "B")

    for workload in ("specjbb", "specweb"):
        before = results_a[workload].get(
            TerminationCondition.STORE_SERIALIZE, 0.0
        )
        after = results_b[workload].get(
            TerminationCondition.STORE_SERIALIZE, 0.0
        )
        assert after < 0.25 * before + 0.01, (
            f"{workload}: SLE must collapse store-serialize terminations"
        )
