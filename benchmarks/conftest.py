"""Shared workbenches for the table/figure reproduction benches.

Sizing: the paper measured 100M instructions after 50M of warmup per core.
Pure Python cannot do that per configuration sweep, so benches default to a
60K-instruction measurement window after 25K of warmup — large enough for
stable EPI ordering — and honour two environment variables for bigger runs::

    REPRO_BENCH_MEASURE=200000 REPRO_BENCH_WARMUP=80000 \
        pytest benchmarks/ --benchmark-only

The SMAC benches (Figures 5 and 6) use their own longer-warmup workbench
because the accelerator needs warm ownership state (the paper used 1G
instructions of warming there).
"""

from __future__ import annotations

import os

import pytest

from repro.harness import ExperimentSettings, Workbench
from repro.harness.figures import smac_scaled_profile

MEASURE = int(os.environ.get("REPRO_BENCH_MEASURE", 60_000))
WARMUP = int(os.environ.get("REPRO_BENCH_WARMUP", 25_000))
SEED = int(os.environ.get("REPRO_BENCH_SEED", 7))

ALL_WORKLOADS = ("database", "tpcw", "specjbb", "specweb")


@pytest.fixture(scope="session")
def bench_default() -> Workbench:
    """Workbench with the paper's default memory system, calibrated."""
    return Workbench(ExperimentSettings(
        warmup=WARMUP, measure=MEASURE, seed=SEED, calibrate=True,
    ))


@pytest.fixture(scope="session")
def bench_smac() -> Workbench:
    """Workbench with SMAC-scaled profiles and longer warming."""
    bench = Workbench(ExperimentSettings(
        warmup=max(WARMUP, 60_000),
        measure=max(MEASURE, 90_000),
        seed=SEED,
        calibrate=False,
    ))
    for name in ALL_WORKLOADS:
        bench.set_profile(name, smac_scaled_profile(name))
    return bench


def once(benchmark, func, *args, **kwargs):
    """Run *func* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
