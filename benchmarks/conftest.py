"""Shared workbenches and runners for the table/figure reproduction benches.

Sizing: the paper measured 100M instructions after 50M of warmup per core.
Pure Python cannot do that per configuration sweep, so benches default to a
60K-instruction measurement window after 25K of warmup — large enough for
stable EPI ordering — and honour two environment variables for bigger runs::

    REPRO_BENCH_MEASURE=200000 REPRO_BENCH_WARMUP=80000 \
        pytest benchmarks/ --benchmark-only

The SMAC benches (Figures 5 and 6) use their own longer-warmup workbench
because the accelerator needs warm ownership state (the paper used 1G
instructions of warming there).

All workbenches share one persistent artifact cache (``REPRO_CACHE_DIR`` or
``.repro-cache``), so the calibrate/generate/annotate stages amortise across
bench files and repeated invocations; ``REPRO_BENCH_CACHE=none`` disables
persistence.  The ``runner_default``/``runner_smac`` fixtures provide
matching :class:`~repro.engine.runner.EngineRunner` instances for the
parallel-sweep benches.
"""

from __future__ import annotations

import os

import pytest

from repro.engine import EngineRunner
from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench
from repro.harness.figures import smac_scaled_profile

MEASURE = int(os.environ.get("REPRO_BENCH_MEASURE", 60_000))
WARMUP = int(os.environ.get("REPRO_BENCH_WARMUP", 25_000))
SEED = int(os.environ.get("REPRO_BENCH_SEED", 7))
CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE", "auto")
if CACHE_DIR.lower() == "none":
    CACHE_DIR = None
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", 0)) or None

ALL_WORKLOADS = ("database", "tpcw", "specjbb", "specweb")

_DEFAULT_SETTINGS = ExperimentSettings(
    warmup=WARMUP, measure=MEASURE, seed=SEED, calibrate=True,
)
_SMAC_SETTINGS = ExperimentSettings(
    warmup=max(WARMUP, 60_000),
    measure=max(MEASURE, 90_000),
    seed=SEED,
    calibrate=False,
)


@pytest.fixture(scope="session")
def bench_default() -> Workbench:
    """Workbench with the paper's default memory system, calibrated."""
    return Workbench(_DEFAULT_SETTINGS, cache_dir=CACHE_DIR)


@pytest.fixture(scope="session")
def bench_smac() -> Workbench:
    """Workbench with SMAC-scaled profiles and longer warming."""
    bench = Workbench(_SMAC_SETTINGS, cache_dir=CACHE_DIR)
    for name in ALL_WORKLOADS:
        bench.set_profile(name, smac_scaled_profile(name))
    return bench


@pytest.fixture(scope="session")
def runner_default() -> EngineRunner:
    """Parallel runner matching ``bench_default`` (shares its cache dir)."""
    return EngineRunner(
        settings=_DEFAULT_SETTINGS, cache_dir=CACHE_DIR, workers=WORKERS,
    )


@pytest.fixture(scope="session")
def runner_smac() -> EngineRunner:
    """Parallel runner matching ``bench_smac``.

    Worker processes cannot see ``set_profile`` calls made in this process,
    so the SMAC-scaled profiles ship via the runner's ``profiles`` argument
    and are installed by each worker's initializer.
    """
    return EngineRunner(
        settings=_SMAC_SETTINGS,
        cache_dir=CACHE_DIR,
        workers=WORKERS,
        profiles={name: smac_scaled_profile(name) for name in ALL_WORKLOADS},
    )


def once(benchmark, func, *args, **kwargs):
    """Run *func* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
