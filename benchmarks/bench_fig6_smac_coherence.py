"""Figure 6: impact of cross-chip coherence on the SMAC.

Left graph: SMAC coherence invalidates per 1000 instructions; right graph:
percentage of missing stores that hit an invalidated SMAC entry.  Paper
claims asserted: invalidate traffic and invalid-hit rates grow when moving
from a 2-node to a 4-node system, and the SMAC still performs well (hit
rates remain useful) as nodes scale.
"""

from __future__ import annotations

import pytest

from repro.harness.figures import SMAC_ENTRY_SWEEP, figure6
from repro.harness.formatting import format_series

from conftest import once

WORKLOADS = ("database", "tpcw", "specjbb", "specweb")


@pytest.mark.benchmark(group="figure6")
def test_figure6_smac_coherence(benchmark, bench_smac):
    results = once(benchmark, figure6, bench_smac, WORKLOADS)
    print()
    for workload, series in results.items():
        print(f"== {workload} ==")
        for metric in ("invalidates_per_1000", "invalid_hit_percent"):
            for nodes, by_entries in series[metric].items():
                print(" ", format_series(f"{metric}/{nodes}-node", by_entries))

    for workload, series in results.items():
        invalidates = series["invalidates_per_1000"]
        invalid_hits = series["invalid_hit_percent"]
        big = SMAC_ENTRY_SWEEP[-1]
        # More nodes -> more remote traffic -> more stolen ownership.
        assert invalidates[4][big] >= invalidates[2][big]
        assert invalid_hits[4][big] >= invalid_hits[2][big] * 0.8
        # Invalid-hit percentages stay in the paper's regime (< ~30%):
        # the SMAC keeps performing as the system scales.
        for nodes in (2, 4):
            for entries in SMAC_ENTRY_SWEEP:
                assert 0 <= invalid_hits[nodes][entries] <= 35
