"""Figure 7: memory consistency model optimizations (PC1-3 vs WC1-3).

Paper claims asserted:

1. a large store-performance gap separates PC1 from WC1,
2. SLE (PC3/WC3) is effective at reducing that gap for TPC-W, SPECjbb and
   SPECweb, and strongly mitigates store impact under PC,
3. prefetch past serializing instructions (PC2) improves the database
   workload and SPECjbb moderately,
4. even with SLE and prefetch-past, store prefetching still matters.
"""

from __future__ import annotations

import pytest

from repro.harness.figures import figure7

from conftest import ALL_WORKLOADS, once


@pytest.mark.benchmark(group="figure7")
def test_figure7_consistency_models(benchmark, bench_default):
    results = once(benchmark, figure7, bench_default, ALL_WORKLOADS)
    print()
    for workload, series in results.items():
        print(f"== {workload} (epochs per 1000 instructions) ==")
        for key, pair in series.items():
            print(
                f"  {key:10s} with_stores={pair['with_stores']:.3f} "
                f"perfect={pair['perfect']:.3f}"
            )

    for workload, series in results.items():
        pc1 = series["Sp1/PC1"]["with_stores"]
        wc1 = series["Sp1/WC1"]["with_stores"]
        pc3 = series["Sp1/PC3"]["with_stores"]
        wc3 = series["Sp1/WC3"]["with_stores"]

        # (1) WC beats PC out of the box.
        assert wc1 < pc1

        # (2) SLE narrows the gap: PC3 recovers most of PC1-WC1.
        gap = pc1 - wc1
        if gap > 0.05:
            remaining = pc3 - wc3
            assert remaining < 0.6 * gap, (
                f"{workload}: SLE left {remaining:.3f} of a {gap:.3f} gap"
            )

    # (3) prefetch past serializing helps the serialize-bound workloads.
    for workload in ("database", "specjbb"):
        series = results[workload]
        assert series["Sp1/PC2"]["with_stores"] <= (
            series["Sp1/PC1"]["with_stores"] * 1.005
        )

    # (4) store prefetching still matters with SLE under PC: Sp0 vs Sp2.
    for workload in ("database", "tpcw"):
        series = results[workload]
        assert series["Sp2/PC3"]["with_stores"] <= (
            series["Sp0/PC3"]["with_stores"] * 1.01
        )
