"""Ablation: the SMAC's bandwidth claim (paper Sections 3.3.2-3.3.3).

"Store prefetching is effective but requires a significant amount of
core-to-L2 bandwidth ... the Store Miss Accelerator achieves similar gains
as store prefetching while conserving L2 cache bandwidth."

This bench quantifies both halves on the scaled SMAC configuration: EPI
improvement AND L2 write-path requests per committed store.
"""

from __future__ import annotations

import pytest

from repro.config import StorePrefetchMode
from repro.harness.figures import SMAC_ENTRY_SWEEP, smac_memory_config

from conftest import once


def run_bandwidth_study(bench):
    results = {}
    for workload in ("database", "specweb"):
        rows = {}
        # Prefetching: better EPI, extra write requests.
        for label, mode in (("Sp0", StorePrefetchMode.NONE),
                            ("Sp1", StorePrefetchMode.AT_RETIRE),
                            ("Sp2", StorePrefetchMode.AT_EXECUTE)):
            result = bench.run(
                workload,
                memory_config=smac_memory_config(None),
                tag="none",
                store_prefetch=mode,
            )
            rows[label] = {
                "epi": result.epi_per_1000,
                "overhead": result.store_bandwidth_overhead,
            }
        # SMAC without prefetching: better EPI, no extra requests.
        result = bench.run(
            workload,
            memory_config=smac_memory_config(SMAC_ENTRY_SWEEP[-1]),
            tag=f"smac-{SMAC_ENTRY_SWEEP[-1]}",
            store_prefetch=StorePrefetchMode.NONE,
        )
        rows["SMAC"] = {
            "epi": result.epi_per_1000,
            "overhead": result.store_bandwidth_overhead,
        }
        results[workload] = rows
    return results


@pytest.mark.benchmark(group="ablation")
def test_smac_conserves_bandwidth(benchmark, bench_smac):
    results = once(benchmark, run_bandwidth_study, bench_smac)
    print()
    for workload, rows in results.items():
        print(f"== {workload} ==")
        for label, row in rows.items():
            print(f"  {label:5s} EPI/1000={row['epi']:.3f} "
                  f"write-overhead={row['overhead']:.4f} req/store")

    for workload, rows in results.items():
        # The SMAC improves on Sp0 without any prefetch requests.
        assert rows["SMAC"]["epi"] < rows["Sp0"]["epi"]
        assert rows["SMAC"]["overhead"] == 0.0
        # Prefetching pays measurable write-path overhead; Sp1's is at most
        # marginally above Sp2's (the paper notes Sp1's can be *smaller*
        # because coalesced stores skip their prefetch).
        assert rows["Sp1"]["overhead"] > 0.0
        assert rows["Sp2"]["overhead"] >= rows["Sp1"]["overhead"] * 0.9