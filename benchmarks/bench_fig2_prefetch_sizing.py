"""Figure 2: store prefetching x store buffer size x store queue size.

The paper's key results, asserted here:

1. store prefetching (Sp1 or Sp2) is highly effective for all workloads
   except SPECjbb2000 (whose limiter is serialization),
2. for SPECjbb/SPECweb, even Sp2 leaves a gap to perfect stores and
   enlarging the queues has little effect,
3. store MLP is insensitive to store buffer size (8 entries suffice for the
   64-entry ROB),
4. EPI is monotonically non-increasing in store queue size.
"""

from __future__ import annotations

import pytest

from repro.harness.figures import figure2
from repro.harness.formatting import format_series

from conftest import ALL_WORKLOADS, once


@pytest.mark.benchmark(group="figure2")
def test_figure2_prefetch_and_sizing(benchmark, bench_default):
    results = once(benchmark, figure2, bench_default, ALL_WORKLOADS)
    print()
    for workload, series in results.items():
        print(f"== {workload} (epochs per 1000 instructions) ==")
        for mode in ("Sp0", "Sp1", "Sp2"):
            points = {
                key.split("/", 1)[1]: value
                for key, value in series.items()
                if key.startswith(mode + "/")
            }
            print(" ", format_series(mode, points))
        print(f"  perfect stores: {series['perfect']:.3f}")

    for workload, series in results.items():
        default_key = "sb16/sq32"
        sp0 = series[f"Sp0/{default_key}"]
        sp1 = series[f"Sp1/{default_key}"]
        sp2 = series[f"Sp2/{default_key}"]

        # (1) prefetching helps (never hurts).
        assert sp1 <= sp0 * 1.01
        assert sp2 <= sp1 * 1.02

        # (4) monotone in SQ size for the no-prefetch configuration.
        for sb in (8, 16, 32):
            epi_by_sq = [series[f"Sp0/sb{sb}/sq{sq}"]
                         for sq in (16, 32, 64, 256)]
            for small, large in zip(epi_by_sq, epi_by_sq[1:]):
                assert large <= small * 1.03

        # (3) store buffer size is not the limiter at the default SQ.
        sb8 = series["Sp1/sb8/sq32"]
        sb32 = series["Sp1/sb32/sq32"]
        assert abs(sb8 - sb32) <= 0.15 * sb8 + 0.05

    # (1)/(2) split: prefetching recovers most of the store cost for the
    # database workload, but SPECjbb/SPECweb stay serialization-bound.
    for workload in ("specjbb", "specweb"):
        series = results[workload]
        assert series["Sp2/sb16/sq256"] > series["perfect"] * 1.05

    db = results["database"]
    db_gap_sp0 = db["Sp0/sb16/sq32"] - db["perfect"]
    db_gap_sp1 = db["Sp1/sb16/sq32"] - db["perfect"]
    assert db_gap_sp1 < 0.5 * db_gap_sp0
