"""Ablation: the serialization cliff.

The paper attributes the PC store problem to serializing instructions in
lock acquire/release.  Sweeping the generator's critical-section density
shows the cliff directly: EPI under PC rises with lock density while WC is
much flatter, and the PC-WC gap widens.
"""

from __future__ import annotations

import pytest

from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench
from repro.workloads import SPECWEB

from conftest import MEASURE, SEED, WARMUP, once

DENSITIES = (0.5, 2.0, 6.0)


def run_density_sweep():
    results = {}
    for locks_per_1000 in DENSITIES:
        bench = Workbench(ExperimentSettings(
            warmup=WARMUP, measure=MEASURE, seed=SEED, calibrate=False,
        ))
        bench.set_profile(
            "specweb", SPECWEB.with_(locks_per_1000=locks_per_1000)
        )
        pc = bench.run("specweb").epi_per_1000
        wc = bench.run("specweb", variant="wc").epi_per_1000
        results[locks_per_1000] = {"pc": pc, "wc": wc, "gap": pc - wc}
    return results


@pytest.mark.benchmark(group="ablation")
def test_lock_density_cliff(benchmark):
    results = once(benchmark, run_density_sweep)
    print()
    for density, row in results.items():
        print(
            f"  locks/1000={density}: PC={row['pc']:.3f} WC={row['wc']:.3f} "
            f"gap={row['gap']:.3f}"
        )

    densities = list(DENSITIES)
    # PC EPI grows with lock density.
    pcs = [results[d]["pc"] for d in densities]
    assert pcs[0] < pcs[-1]
    # The PC-WC gap widens with lock density.
    gaps = [results[d]["gap"] for d in densities]
    assert gaps[0] < gaps[-1]
    # WC is flatter than PC across the sweep.
    wcs = [results[d]["wc"] for d in densities]
    assert (wcs[-1] - wcs[0]) < (pcs[-1] - pcs[0])
