"""Table 2: fraction of missing stores fully overlapped with computation.

Paper values: database 0.09, TPC-W 0.12, SPECjbb 0.06, SPECweb 0.22 — i.e.
most missing stores CANNOT be hidden under computation, which motivates the
whole study.
"""

from __future__ import annotations

import pytest

from repro.harness.tables import PAPER_TABLE2, format_table2, table2

from conftest import ALL_WORKLOADS, once


@pytest.mark.benchmark(group="table2")
def test_table2_store_overlap(benchmark, bench_default):
    measured = once(benchmark, table2, bench_default, ALL_WORKLOADS)
    print()
    print(format_table2(measured))

    # Headline claim: the majority of missing stores are NOT overlappable
    # with computation, for every workload.
    for workload, fraction in measured.items():
        assert fraction < 0.5, f"{workload}: overlap {fraction} too high"

    # Shape: SPECweb overlaps the most, SPECjbb the least (paper ordering).
    assert measured["specweb"] == max(measured.values())
    assert measured["specjbb"] <= measured["tpcw"]
    # Magnitudes within a factor of ~2.5 of the paper's Table 2.
    for workload, fraction in measured.items():
        assert fraction <= PAPER_TABLE2[workload] * 2.5 + 0.02
