"""Figure 8: Hardware Scout and its store optimizations.

Paper claims asserted:

1. HWS is very effective at improving load and instruction MLP (the
   perfect-store EPI drops sharply from No-HWS to HWS0),
2. HWS1 (prefetch stores in scout mode) improves store impact over HWS0,
3. HWS2 (also invoke scout on store-queue stalls) almost fully mitigates
   the impact of missing stores,
4. HWS2 almost completely bridges the PC-vs-WC gap.
"""

from __future__ import annotations

import pytest

from repro.harness.figures import figure8

from conftest import ALL_WORKLOADS, once


@pytest.mark.benchmark(group="figure8")
def test_figure8_hardware_scout(benchmark, bench_default):
    results = once(benchmark, figure8, bench_default, ALL_WORKLOADS)
    print()
    for workload, series in results.items():
        print(f"== {workload} (epochs per 1000 instructions) ==")
        for key, pair in series.items():
            print(
                f"  {key:10s} with_stores={pair['with_stores']:.3f} "
                f"perfect={pair['perfect']:.3f}"
            )

    for workload, series in results.items():
        def store_cost(key):
            return series[key]["with_stores"] - series[key]["perfect"]

        # (1) HWS slashes load/instruction EPI.
        assert series["PC/HWS0"]["perfect"] < series["PC/NoHWS"]["perfect"]

        # (2) HWS1 <= HWS0 on store impact.
        assert store_cost("PC/HWS1") <= store_cost("PC/HWS0") * 1.05 + 0.01

        # (3) HWS2 nearly eliminates store impact relative to the baseline
        # and is the best scout configuration.  (The database workload's
        # dense load-dependent branches cut scout episodes short, so its
        # residual is larger than the other workloads' ~25-40%.)
        base_cost = store_cost("PC/NoHWS")
        hws2_cost = store_cost("PC/HWS2")
        if base_cost > 0.05:
            assert hws2_cost < 0.7 * base_cost, (
                f"{workload}: HWS2 left {hws2_cost:.3f} of {base_cost:.3f}"
            )
        assert hws2_cost <= store_cost("PC/HWS1") * 1.02 + 0.01

        # (4) HWS2 nearly bridges the consistency gap.
        base_gap = (
            series["PC/NoHWS"]["with_stores"]
            - series["WC/NoHWS"]["with_stores"]
        )
        hws2_gap = (
            series["PC/HWS2"]["with_stores"]
            - series["WC/HWS2"]["with_stores"]
        )
        if base_gap > 0.05:
            assert hws2_gap < 0.75 * base_gap
