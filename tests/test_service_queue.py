"""Queue lifecycle, dedup, cancellation and dispatcher resilience
(repro.service.jobqueue + repro.obs.metrics)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.jobqueue import (
    Dispatcher,
    JobQueue,
    JobState,
    QueueFullError,
)
from repro.obs.metrics import MetricsRegistry, percentile
from repro.service.protocol import parse_job_request


def sweep_request(queues=(16, 32), priority=0, workload="database"):
    return parse_job_request({
        "kind": "sweep",
        "priority": priority,
        "sweep": {"workloads": [workload],
                  "axes": {"store_queue": list(queues)}},
    })


class TestJobQueue:
    def test_lifecycle_queued_running_done(self):
        queue = JobQueue()
        job, deduped = queue.submit(sweep_request())
        assert not deduped and job.state is JobState.QUEUED
        claimed = queue.next_job(timeout=1.0)
        assert claimed is job and job.state is JobState.RUNNING
        queue.finish(job, result={"answer": 42})
        assert job.state is JobState.DONE
        assert job.status_payload()["result"] == {"answer": 42}
        assert job.finished_at is not None

    def test_identical_inflight_submissions_dedup(self):
        queue = JobQueue()
        first, deduped_first = queue.submit(sweep_request())
        second, deduped_second = queue.submit(sweep_request())
        assert not deduped_first and deduped_second
        assert second is first
        assert first.dedup_count == 1
        assert queue.depth() == 1

    def test_dedup_holds_while_running_but_not_after(self):
        queue = JobQueue()
        job, _ = queue.submit(sweep_request())
        queue.next_job(timeout=1.0)  # now running
        again, deduped = queue.submit(sweep_request())
        assert deduped and again is job
        queue.finish(job, result=None)
        fresh, deduped = queue.submit(sweep_request())
        assert not deduped and fresh is not job

    def test_different_requests_do_not_dedup(self):
        queue = JobQueue()
        a, _ = queue.submit(sweep_request(queues=(16,)))
        b, _ = queue.submit(sweep_request(queues=(32,)))
        assert a is not b and queue.depth() == 2

    def test_priority_order_then_fifo(self):
        queue = JobQueue()
        low, _ = queue.submit(sweep_request(queues=(1,), priority=0))
        urgent, _ = queue.submit(sweep_request(queues=(2,), priority=5))
        also_low, _ = queue.submit(sweep_request(queues=(3,), priority=0))
        order = [queue.next_job(timeout=1.0) for _ in range(3)]
        assert order == [urgent, low, also_low]

    def test_bounded_capacity_rejects(self):
        queue = JobQueue(capacity=2)
        queue.submit(sweep_request(queues=(1,)))
        queue.submit(sweep_request(queues=(2,)))
        with pytest.raises(QueueFullError):
            queue.submit(sweep_request(queues=(3,)))
        # identical submissions still dedup even at capacity
        _, deduped = queue.submit(sweep_request(queues=(1,)))
        assert deduped

    def test_cancelled_job_never_runs(self):
        queue = JobQueue()
        job, _ = queue.submit(sweep_request())
        assert queue.cancel(job.id)
        assert job.state is JobState.CANCELLED
        assert queue.next_job(timeout=0.05) is None

    def test_cancel_refuses_running_and_unknown(self):
        queue = JobQueue()
        job, _ = queue.submit(sweep_request())
        queue.next_job(timeout=1.0)
        assert not queue.cancel(job.id)
        assert not queue.cancel("nope")
        assert job.state is JobState.RUNNING

    def test_cancelled_key_frees_dedup_slot(self):
        queue = JobQueue()
        job, _ = queue.submit(sweep_request())
        queue.cancel(job.id)
        fresh, deduped = queue.submit(sweep_request())
        assert not deduped and fresh is not job

    def test_history_bound_forgets_oldest_terminal(self):
        queue = JobQueue(history=2)
        ids = []
        for n in range(4):
            job, _ = queue.submit(sweep_request(queues=(n + 100,)))
            ids.append(job.id)
            queue.next_job(timeout=1.0)
            queue.finish(job, result=None)
        assert queue.get(ids[0]) is None and queue.get(ids[1]) is None
        assert queue.get(ids[2]) is not None and queue.get(ids[3]) is not None

    def test_concurrent_identical_submissions_run_once(self):
        queue = JobQueue()
        results = []
        barrier = threading.Barrier(8)

        def submit():
            barrier.wait()
            results.append(queue.submit(sweep_request()))

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        jobs = {job.id for job, _ in results}
        deduped = [flag for _, flag in results]
        assert len(jobs) == 1
        assert sum(deduped) == 7
        assert queue.depth() == 1


class TestCancelRaces:
    def test_cancel_while_deduped_fans_out_exactly_n_detaches(self):
        """N clients attached to one job, N concurrent cancels.

        Each waiter's cancel must detach exactly one attachment; the final
        cancel (no waiters left) cancels the job itself.  No outcome may
        be lost or double-counted under concurrency.
        """
        queue = JobQueue()
        waiters = 7
        job, _ = queue.submit(sweep_request())
        for _ in range(waiters):
            again, deduped = queue.submit(sweep_request())
            assert deduped and again is job
        assert job.dedup_count == waiters

        outcomes = []
        lock = threading.Lock()
        barrier = threading.Barrier(waiters + 1)

        def cancel():
            barrier.wait()
            outcome = queue.cancel(job.id)
            with lock:
                outcomes.append(outcome)

        threads = [
            threading.Thread(target=cancel) for _ in range(waiters + 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert outcomes.count("detached") == waiters
        assert outcomes.count("cancelled") == 1
        assert job.state is JobState.CANCELLED
        assert queue.next_job(timeout=0.05) is None

    def test_detach_keeps_the_job_alive_for_remaining_waiters(self):
        queue = JobQueue()
        job, _ = queue.submit(sweep_request())
        queue.submit(sweep_request())  # one waiter attaches
        assert queue.cancel(job.id) == "detached"
        assert job.state is JobState.QUEUED  # the other client still waits
        claimed = queue.next_job(timeout=1.0)
        assert claimed is job  # ... and the job still runs
        # running with no waiters left: cancel is refused, not detached
        assert queue.cancel(job.id) == ""

    def test_priority_order_survives_concurrent_submit_and_cancel(self):
        queue = JobQueue(capacity=256)
        cancelled = []
        lock = threading.Lock()

        def churn(offset):
            for n in range(10):
                job, _ = queue.submit(
                    sweep_request(
                        queues=(1000 + offset * 100 + n,), priority=n % 3,
                    ),
                )
                if n % 4 == 0:
                    assert queue.cancel(job.id) == "cancelled"
                    with lock:
                        cancelled.append(job.id)

        threads = [
            threading.Thread(target=churn, args=(k,)) for k in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        drained = []
        while True:
            job = queue.next_job(timeout=0.05)
            if job is None:
                break
            drained.append(job)
        assert len(drained) == 40 - len(cancelled)
        # no cancelled job is ever dispatched ...
        assert not set(cancelled) & {job.id for job in drained}
        # ... and dispatch order is priority-monotonic despite the churn
        priorities = [job.priority for job in drained]
        assert priorities == sorted(priorities, reverse=True)


class TestDispatcher:
    def _drain(self, queue, executor):
        dispatcher = Dispatcher(queue, executor)
        dispatcher.start()
        return dispatcher

    def test_executes_and_fans_result_out(self):
        queue = JobQueue()
        dispatcher = self._drain(
            queue, lambda request: {"echo": request.kind},
        )
        try:
            job, _ = queue.submit(sweep_request())
            assert queue.wait(job.id, timeout=5.0)
            assert job.state is JobState.DONE
            assert job.result == {"echo": "sweep"}
        finally:
            dispatcher.stop()

    def test_executor_exception_marks_failed_not_wedged(self):
        queue = JobQueue()
        calls = []

        def executor(request):
            calls.append(request)
            if len(calls) == 1:
                raise ValueError("synthetic failure")
            return {"ok": True}

        dispatcher = self._drain(queue, executor)
        try:
            bad, _ = queue.submit(sweep_request(queues=(1,)))
            assert queue.wait(bad.id, timeout=5.0)
            assert bad.state is JobState.FAILED
            payload = bad.status_payload()
            assert "synthetic failure" in payload["error"]
            assert "ValueError" in payload["traceback"]
            # the queue keeps draining after a poisoned job
            good, _ = queue.submit(sweep_request(queues=(2,)))
            assert queue.wait(good.id, timeout=5.0)
            assert good.state is JobState.DONE
        finally:
            dispatcher.stop()

    def test_cancelled_job_is_skipped_by_drain(self):
        queue = JobQueue()
        executed = []
        gate = threading.Event()

        def executor(request):
            gate.wait(5.0)
            executed.append(request.signature())
            return None

        blocker, _ = queue.submit(sweep_request(queues=(1,)))
        victim, _ = queue.submit(sweep_request(queues=(2,)))
        dispatcher = self._drain(queue, executor)
        try:
            # let the dispatcher claim the blocker, then cancel the victim
            deadline = time.monotonic() + 5.0
            while blocker.state is JobState.QUEUED:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            assert queue.cancel(victim.id)
            gate.set()
            assert queue.wait(blocker.id, timeout=5.0)
            assert queue.wait(victim.id, timeout=5.0)
            assert victim.state is JobState.CANCELLED
            assert len(executed) == 1
        finally:
            gate.set()
            dispatcher.stop()


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        metrics = MetricsRegistry()
        metrics.inc("jobs_submitted_total")
        metrics.inc("jobs_submitted_total", 2)
        metrics.gauge("queue_depth", lambda: 7)
        snapshot = metrics.to_dict()
        assert snapshot["counters"]["jobs_submitted_total"] == 3
        assert snapshot["gauges"]["queue_depth"] == 7.0

    def test_latency_percentiles(self):
        metrics = MetricsRegistry()
        for ms in range(1, 101):
            metrics.observe("job_exec", ms / 1000.0)
        summary = metrics.latency_summary("job_exec")
        assert summary["count"] == 100
        assert summary["p50"] == pytest.approx(0.0505, abs=1e-3)
        assert summary["p99"] == pytest.approx(0.099, abs=1e-3)
        assert summary["mean"] == pytest.approx(0.0505, abs=1e-4)

    def test_percentile_edge_cases(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0], 0.99) == 3.0
        assert percentile([1.0, 2.0], 0.5) == pytest.approx(1.5)

    def test_prometheus_rendering(self):
        metrics = MetricsRegistry()
        metrics.inc("jobs_submitted_total", 4)
        metrics.gauge("queue_depth", lambda: 2)
        metrics.observe("job_exec", 0.5)
        text = metrics.render_prometheus()
        assert "# TYPE repro_jobs_submitted_total counter" in text
        assert "repro_jobs_submitted_total 4" in text
        assert "repro_queue_depth 2" in text
        assert "# TYPE repro_job_exec_seconds summary" in text
        assert 'repro_job_exec_seconds{quantile="0.95"} 0.500000' in text
        assert "repro_job_exec_seconds_count 1" in text
        assert text.endswith("\n")
