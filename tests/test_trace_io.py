"""Binary trace serialization round-trips and error handling."""

from __future__ import annotations

import io

import pytest

from repro.errors import TraceError, TraceFormatError
from repro.isa import Instruction, InstructionClass
from repro.trace import (
    read_trace,
    read_trace_file,
    write_trace,
    write_trace_file,
)
from repro.trace.writer import HEADER, MAGIC


def sample_trace():
    return [
        Instruction(InstructionClass.LOAD, pc=0x1000, address=0xABC0,
                    size=8, dest=5, srcs=(1,)),
        Instruction(InstructionClass.STORE, pc=0x1004, address=0xDEF8,
                    size=4, srcs=(1, 5)),
        Instruction(InstructionClass.BRANCH, pc=0x1008, taken=True,
                    target=0x2000, srcs=(5,)),
        Instruction(InstructionClass.CAS, pc=0x100C, address=0x40,
                    size=8, dest=6, srcs=(2,), lock_acquire=True),
        Instruction(InstructionClass.STORE, pc=0x1010, address=0x40,
                    size=8, srcs=(2,), lock_release=True),
        Instruction(InstructionClass.MEMBAR, pc=0x1014),
        Instruction(InstructionClass.NOP, pc=0x1018),
    ]


class TestRoundTrip:
    def test_memory_round_trip_preserves_everything(self):
        trace = sample_trace()
        buffer = io.BytesIO()
        count = write_trace(buffer, trace)
        assert count == len(trace)
        buffer.seek(0)
        assert list(read_trace(buffer)) == trace

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "sample.mlpt"
        trace = sample_trace()
        write_trace_file(path, trace)
        assert read_trace_file(path) == trace

    def test_empty_trace(self):
        buffer = io.BytesIO()
        assert write_trace(buffer, []) == 0
        buffer.seek(0)
        assert list(read_trace(buffer)) == []

    def test_generator_input(self):
        buffer = io.BytesIO()
        count = write_trace(
            buffer,
            (Instruction(InstructionClass.NOP, pc=i * 4) for i in range(100)),
        )
        assert count == 100
        buffer.seek(0)
        assert len(list(read_trace(buffer))) == 100

    def test_large_addresses_survive(self):
        inst = Instruction(
            InstructionClass.LOAD, pc=2**63 - 8, address=2**40 + 64,
            size=8, dest=1,
        )
        buffer = io.BytesIO()
        write_trace(buffer, [inst])
        buffer.seek(0)
        assert list(read_trace(buffer)) == [inst]


class TestErrors:
    def test_too_many_sources_rejected(self):
        inst = Instruction(InstructionClass.ALU, pc=0, srcs=(1, 2, 3, 4))
        with pytest.raises(TraceError):
            write_trace(io.BytesIO(), [inst])

    def test_bad_magic(self):
        buffer = io.BytesIO(HEADER.pack(b"XXXX", 1, 0, 0))
        with pytest.raises(TraceFormatError, match="magic"):
            list(read_trace(buffer))

    def test_bad_version(self):
        buffer = io.BytesIO(HEADER.pack(MAGIC, 99, 0, 0))
        with pytest.raises(TraceFormatError, match="version"):
            list(read_trace(buffer))

    def test_truncated_header(self):
        with pytest.raises(TraceFormatError, match="header"):
            list(read_trace(io.BytesIO(b"ML")))

    def test_truncated_records(self):
        buffer = io.BytesIO()
        write_trace(buffer, sample_trace())
        data = buffer.getvalue()[:-10]
        with pytest.raises(TraceFormatError, match="truncated"):
            list(read_trace(io.BytesIO(data)))
