"""SMT multi-context simulation: schedulers, sharing, and invariants.

The load-bearing guarantees pinned here:

- ``contexts=1`` is bit-identical to the reference single-context
  backend under *every* scheduling policy (the redesigned ``contexts=``
  axis is a strict superset of the old API, not a parallel code path);
- every policy is deterministic run-to-run;
- per-context counters reconcile exactly with the aggregate STP/ANTT/
  fairness the results object reports;
- cross-context sharing (SMAC invalidation, lock contention) only
  exists between contexts and behaves per the documented model;
- the committed ``BENCH_smt.json`` scenario reproduces exactly and the
  MLP-aware policy beats round-robin on it (the regression gate).
"""

from __future__ import annotations

import json
from pathlib import Path
from types import SimpleNamespace

import pytest

from conftest import annotated
from repro.analysis import compare_schedulers, context_breakdown, scheduler_rows
from repro.config import (
    CacheConfig,
    MemoryConfig,
    SimulationConfig,
    SmacConfig,
)
from repro.core.mlpsim import MlpSimulator
from repro.engine import serialize
from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench
from repro.isa import InstructionClass
from repro.smt import (
    DEFAULT_SCHEDULER,
    IcountScheduler,
    MlpScheduler,
    RoundRobinScheduler,
    SharedLockTable,
    SharedSmac,
    SmtContext,
    SmtSimulator,
    resolve_scheduler,
    run_smt,
    valid_schedulers,
)
from repro.workloads.mixes import MIXES, mix_components, resolve_mix

GOLDEN_SETTINGS = ExperimentSettings(
    warmup=3000, measure=9000, seed=13, calibrate=False,
)
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_smt.json"


@pytest.fixture(scope="module")
def bench() -> Workbench:
    return Workbench(GOLDEN_SETTINGS, cache_dir=None)


# ------------------------------------------------------------ policies --


def fake_context(
    cid: int,
    pos: int = 0,
    draining: bool = False,
    intensity: float = 0.0,
    granted: int = 0,
) -> SimpleNamespace:
    """The slice of SmtContext the scheduler protocol reads."""
    return SimpleNamespace(
        cid=cid,
        state=SimpleNamespace(pos=pos),
        draining=lambda: draining,
        store_intensity=lambda: intensity,
        slots_granted=granted,
    )


class TestSchedulers:
    def test_registry_and_default(self):
        assert valid_schedulers() == ["icount", "mlp", "round_robin"]
        assert resolve_scheduler("").name == DEFAULT_SCHEDULER
        assert resolve_scheduler("MLP").name == "mlp"

    def test_unknown_scheduler_lists_valid_policies(self):
        with pytest.raises(ValueError) as err:
            resolve_scheduler("fifo")
        assert "unknown scheduler 'fifo'" in str(err.value)
        assert "icount, mlp, round_robin" in str(err.value)

    def test_fresh_instance_per_resolve(self):
        assert resolve_scheduler("round_robin") is not resolve_scheduler(
            "round_robin"
        )

    def test_round_robin_rotates(self):
        contexts = [fake_context(cid) for cid in range(3)]
        policy = RoundRobinScheduler()
        picked = [policy.pick(contexts, slot).cid for slot in range(6)]
        assert picked == [0, 1, 2, 0, 1, 2]

    def test_round_robin_skips_stalled_context(self):
        policy = RoundRobinScheduler()
        assert policy.pick([fake_context(0), fake_context(1)], 0).cid == 0
        # Context 1 unrunnable this slot: the cursor wraps past it.
        assert policy.pick([fake_context(0), fake_context(2)], 1).cid == 2

    def test_icount_favors_least_progressed(self):
        contexts = [fake_context(0, pos=90), fake_context(1, pos=10)]
        assert IcountScheduler().pick(contexts, 0).cid == 1

    def test_icount_ties_break_on_cid(self):
        contexts = [fake_context(1, pos=5), fake_context(0, pos=5)]
        assert IcountScheduler().pick(contexts, 0).cid == 0

    def test_mlp_deprioritizes_draining_context(self):
        draining = fake_context(0, draining=True)
        compute = fake_context(1, intensity=0.9)
        assert MlpScheduler().pick([draining, compute], 0).cid == 1

    def test_mlp_prefers_lowest_store_intensity(self):
        stores = fake_context(0, intensity=0.5)
        compute = fake_context(1, intensity=0.1)
        assert MlpScheduler().pick([stores, compute], 0).cid == 1

    def test_mlp_all_draining_falls_back_to_full_pool(self):
        a = fake_context(0, draining=True, intensity=0.4)
        b = fake_context(1, draining=True, intensity=0.2)
        assert MlpScheduler().pick([a, b], 0).cid == 1

    def test_mlp_ties_rotate_on_slots_granted(self):
        a = fake_context(0, granted=3)
        b = fake_context(1, granted=2)
        assert MlpScheduler().pick([a, b], 0).cid == 1


# ------------------------------------------------------------- sharing --


class TestSharedSmac:
    def test_own_writes_keep_the_entry_trained(self):
        smac = SharedSmac()
        smac.note_store(0, granule=7)
        assert smac.probe(0, 7) is True
        assert smac.invalidations == 0

    def test_foreign_write_invalidates(self):
        smac = SharedSmac()
        smac.note_store(1, granule=7)
        assert smac.probe(0, 7) is False
        assert smac.invalidations == 1
        # The entry stays stale until context 0 writes it back.
        assert smac.probe(0, 7) is False
        smac.note_store(0, granule=7)
        assert smac.probe(0, 7) is True

    def test_unwritten_granule_is_trusted(self):
        assert SharedSmac().probe(0, 99) is True


class TestSharedLockTable:
    def test_uncontended_acquire_is_free(self):
        locks = SharedLockTable()
        assert locks.acquire(0, 0x1000) == 0
        assert locks.contentions == 0

    def test_cross_context_acquire_spins(self):
        locks = SharedLockTable(spin_penalty=3)
        locks.acquire(0, 0x1000)
        assert locks.acquire(1, 0x1000) == 3
        assert locks.contentions == 1
        # Ownership transferred: context 1 re-acquires freely.
        assert locks.acquire(1, 0x1000) == 0

    def test_release_frees_the_line(self):
        locks = SharedLockTable()
        locks.acquire(0, 0x1000)
        locks.release(0, 0x1000)
        assert locks.acquire(1, 0x1000) == 0

    def test_release_by_non_owner_is_a_noop(self):
        locks = SharedLockTable()
        locks.acquire(0, 0x1000)
        locks.release(1, 0x1000)
        assert locks.acquire(1, 0x1000) == 1

    def test_locks_are_line_granular(self):
        locks = SharedLockTable()
        locks.acquire(0, 0x1000)
        # Same 64B line, different word: still contended.
        assert locks.acquire(1, 0x1008) == 1
        # A different line is independent.
        assert locks.acquire(1, 0x2000) == 0

    def test_finished_context_drops_its_locks(self):
        locks = SharedLockTable()
        locks.acquire(0, 0x1000)
        locks.drop_context(0)
        assert locks.acquire(1, 0x1000) == 0

    def test_spin_penalty_must_be_positive(self):
        with pytest.raises(ValueError):
            SharedLockTable(spin_penalty=0)


def _lock_trace(lock_address: int = 0x4000, epochs: int = 4):
    """Acquire a lock, hold it across several miss-closed epochs, release.

    Each missing load closes an epoch, so the acquire lands several
    epochs before the release — the window in which another context's
    acquire of the same line contends.
    """
    trace = [annotated(InstructionClass.ALU, lock_acquire=True,
                       address=lock_address)]
    for i in range(epochs):
        trace.append(annotated(InstructionClass.LOAD, miss=True,
                               address=0x10000 + 64 * i))
        # Enough work behind the blocking miss to fill the window and
        # close the epoch.
        trace.extend(
            annotated(InstructionClass.ALU, pc=0x1000 + 4 * (100 * i + j))
            for j in range(100)
        )
    trace.append(annotated(InstructionClass.ALU, lock_release=True,
                           address=lock_address))
    return trace


class TestLockContentionInTheSlotLoop:
    def _context(self, cid: int, trace) -> SmtContext:
        simulator = MlpSimulator(SimulationConfig())
        state, accountant = simulator.new_state(trace)
        return SmtContext(
            cid=cid, workload=f"synthetic{cid}", trace=trace,
            simulator=simulator, state=state, accountant=accountant,
        )

    def test_overlapping_critical_sections_contend(self):
        contexts = [
            self._context(0, _lock_trace()),
            self._context(1, _lock_trace()),
        ]
        result = SmtSimulator(contexts, RoundRobinScheduler()).run()
        assert result.lock_contentions >= 1
        assert sum(c.spin_slots for c in result.contexts) >= 1

    def test_disjoint_locks_never_contend(self):
        contexts = [
            self._context(0, _lock_trace(lock_address=0x4000)),
            self._context(1, _lock_trace(lock_address=0x9000)),
        ]
        result = SmtSimulator(contexts, RoundRobinScheduler()).run()
        assert result.lock_contentions == 0
        assert all(c.spin_slots == 0 for c in result.contexts)

    def test_single_context_never_attaches_sharing(self):
        trace = _lock_trace()
        alone = SmtSimulator(
            [self._context(0, trace)], RoundRobinScheduler(),
        )
        assert alone.contexts[0].state.observer is None
        assert alone.contexts[0].state.smac_probe is None
        result = alone.run()
        assert result.lock_contentions == 0
        assert result.smac_invalidations == 0


# --------------------------------------------------------------- mixes --


class TestMixes:
    def test_single_workload_replicates(self):
        assert resolve_mix("database", 3) == (
            "database", "database", "database",
        )

    def test_plus_list_assigns_in_order_and_cycles(self):
        assert resolve_mix("database+specjbb", 2) == ("database", "specjbb")
        assert resolve_mix("database+specjbb", 3) == (
            "database", "specjbb", "database",
        )

    def test_named_mix_expands(self):
        assert resolve_mix("oltp_java", 2) == MIXES["oltp_java"]

    def test_components_helper(self):
        assert mix_components("oltp_java") == ("database", "specjbb")
        assert mix_components("tpcw") == ("tpcw",)

    def test_unknown_component_lists_valid_names(self):
        with pytest.raises(ValueError) as err:
            resolve_mix("database+nosql", 2)
        message = str(err.value)
        assert "nosql" in message
        assert "valid workloads" in message
        assert "oltp_java" in message

    def test_contexts_must_be_positive(self):
        with pytest.raises(ValueError):
            resolve_mix("database", 0)


# --------------------------------------------- determinism & identity --


class TestDeterminism:
    @pytest.mark.parametrize("scheduler", ["round_robin", "icount", "mlp"])
    def test_rerun_is_bitwise_identical(self, bench, scheduler):
        first = run_smt(
            bench, "oltp_java", contexts=2, scheduler=scheduler,
        )
        second = run_smt(
            bench, "oltp_java", contexts=2, scheduler=scheduler,
        )
        assert serialize.to_jsonable(first) == serialize.to_jsonable(second)


class TestSingleContextBitIdentity:
    @pytest.mark.parametrize("scheduler", ["round_robin", "icount", "mlp"])
    def test_matches_the_reference_backend(self, bench, scheduler):
        reference = bench.run("database")
        smt = run_smt(bench, "database", contexts=1, scheduler=scheduler)
        assert serialize.to_jsonable(smt.contexts[0].result) == \
            serialize.to_jsonable(reference)
        # Golden constants from tests/test_golden_window.py.
        assert smt.epoch_count == 205
        assert smt.epi_per_1000 == pytest.approx(22.777777778)

    def test_alone_means_no_interference(self, bench):
        smt = run_smt(bench, "database", contexts=1)
        (context,) = smt.contexts
        assert context.turnaround_slots == context.baseline_slots
        assert smt.stp == pytest.approx(1.0)
        assert smt.antt == pytest.approx(1.0)
        assert smt.fairness == pytest.approx(1.0)


class TestPerContextReconciliation:
    @pytest.fixture(scope="class")
    def result(self):
        bench = Workbench(GOLDEN_SETTINGS, cache_dir=None)
        return run_smt(bench, "oltp_java", contexts=2, scheduler="mlp")

    def test_aggregates_are_per_context_sums(self, result):
        assert result.instructions == sum(
            c.result.instructions for c in result.contexts
        )
        assert result.epoch_count == sum(
            c.result.epoch_count for c in result.contexts
        )
        assert result.total_misses == sum(
            c.result.total_misses for c in result.contexts
        )

    def test_multiprogram_metrics_recompute_from_contexts(self, result):
        ntts = [c.normalized_turnaround for c in result.contexts]
        assert result.stp == pytest.approx(sum(
            c.baseline_slots / c.turnaround_slots for c in result.contexts
        ))
        assert result.antt == pytest.approx(sum(ntts) / len(ntts))
        assert result.fairness == pytest.approx(min(ntts) / max(ntts))

    def test_slot_accounting_closes(self, result):
        for context in result.contexts:
            # Every slot up to the finish was either stepped or absorbed.
            assert context.slots_granted + context.slots_absorbed == \
                context.turnaround_slots
            assert context.turnaround_slots <= result.total_slots
            # Scheduling reorders epoch steps but never adds or removes
            # them: granted slots equal the standalone turnaround.
            assert context.slots_granted == context.baseline_slots

    def test_telemetry_hooks_are_drop_in(self, result):
        # EngineTelemetry reads these off every job result; SmtResult
        # must answer like a SimulationResult.
        assert result.sb_occupancy_hwm == max(
            c.result.sb_occupancy_hwm for c in result.contexts
        )
        assert result.sq_occupancy_hwm == max(
            c.result.sq_occupancy_hwm for c in result.contexts
        )
        histogram = result.termination_histogram()
        assert sum(histogram.values()) == result.epoch_count

    def test_context_workloads_follow_the_mix(self, result):
        assert tuple(c.workload for c in result.contexts) == (
            "database", "specjbb",
        )


class TestCrossContextSmac:
    def test_replicated_threads_invalidate_trained_entries(self, bench):
        # A replicated workload models threads of one application: the
        # contexts draw stores from the same pool, so one thread's store
        # miss demotes another's trained SMAC entry.  (The small L2 is
        # what gives the SMAC trainable traffic at smoke trace sizes.)
        memory = MemoryConfig(
            l2=CacheConfig(64 * 1024, 4), smac=SmacConfig(),
        )
        result = run_smt(
            bench, "database", contexts=2, scheduler="round_robin",
            memory_config=memory,
        )
        assert result.smac_invalidations > 0

    def test_single_context_smac_never_invalidates(self, bench):
        memory = MemoryConfig(
            l2=CacheConfig(64 * 1024, 4), smac=SmacConfig(),
        )
        result = run_smt(
            bench, "database", contexts=1, memory_config=memory,
        )
        assert result.smac_invalidations == 0


# ------------------------------------------------------ regression gate --


class TestBenchGate:
    """``BENCH_smt.json``: the committed MLP-vs-round-robin scenario."""

    @pytest.fixture(scope="class")
    def committed(self) -> dict:
        return json.loads(BENCH_PATH.read_text(encoding="utf-8"))

    def test_committed_scenario_pins_the_golden_settings(self, committed):
        assert committed["scenario"]["settings"] == {
            "warmup": 3000, "measure": 9000, "seed": 13, "calibrate": False,
        }
        assert committed["scenario"]["workload"] == "oltp_java"
        assert committed["scenario"]["contexts"] == 2

    def test_committed_mlp_beats_round_robin(self, committed):
        rows = committed["schedulers"]
        assert rows["mlp"]["stp"] > rows["round_robin"]["stp"]
        assert rows["mlp"]["antt"] < rows["round_robin"]["antt"]

    def test_live_rerun_reproduces_the_artifact(self, committed):
        scenario = committed["scenario"]
        bench = Workbench(
            ExperimentSettings(**scenario["settings"]), cache_dir=None,
        )
        comparison = compare_schedulers(
            bench,
            scenario["workload"],
            contexts=scenario["contexts"],
            schedulers=tuple(sorted(committed["schedulers"])),
            variant=scenario["variant"],
        )
        for name, stp, antt, fairness, epi in scheduler_rows(
            comparison.results
        ):
            row = committed["schedulers"][name]
            assert round(stp, 9) == row["stp"], name
            assert round(antt, 9) == row["antt"], name
            assert round(fairness, 9) == row["fairness"], name
            assert round(epi, 9) == row["epi_per_1000"], name
            assert comparison.by_scheduler()[name].total_slots == \
                row["total_slots"]
        best = comparison.best("stp")
        assert best.scheduler == "mlp"
        assert comparison.best("antt").scheduler == "mlp"
        breakdown = context_breakdown(best)
        assert [cid for cid, *_ in breakdown] == [0, 1]
