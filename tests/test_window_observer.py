"""WindowObserver hooks: they fire, and they don't perturb the simulation."""

from __future__ import annotations

from repro.config import CoreConfig, SimulationConfig
from repro.core import (
    MlpSimulator,
    TerminationCondition,
    WindowObserver,
)
from repro.isa import InstructionClass

from conftest import annotated


class RecordingObserver(WindowObserver):
    def __init__(self):
        self.epochs = []
        self.terminations = []
        self.store_events = []

    def on_epoch(self, record):
        self.epochs.append(record)

    def on_termination(self, condition, pos, epoch):
        self.terminations.append((condition, pos, epoch))

    def on_store_event(self, entry, pos, epoch):
        self.store_events.append((entry, pos, epoch))


def _trace():
    """Two epochs: a load miss window, then a store-miss epoch."""
    return [
        annotated(InstructionClass.ALU),
        annotated(InstructionClass.LOAD, miss=True, dest=1, address=0x100),
        annotated(InstructionClass.ALU),
        annotated(InstructionClass.STORE, miss=True, address=0x2000),
        annotated(InstructionClass.ALU, srcs=(1,)),
        annotated(InstructionClass.LOAD, miss=True, dest=2, address=0x300,
                  srcs=(1,)),
        annotated(InstructionClass.ALU),
    ]


def _config(**core):
    defaults = dict(store_buffer=4, store_queue=4)
    defaults.update(core)
    return SimulationConfig(core=CoreConfig(**defaults))


class TestObserverHooks:
    def test_on_termination_fires_once_per_epoch(self):
        observer = RecordingObserver()
        result = MlpSimulator(_config()).run(_trace(), observer=observer)
        assert len(observer.terminations) == result.epoch_count
        assert observer.terminations[-1][0] is \
            TerminationCondition.END_OF_TRACE
        # epochs are reported in order
        epochs = [epoch for _, _, epoch in observer.terminations]
        assert epochs == sorted(epochs)

    def test_on_epoch_fires_for_miss_epochs(self):
        observer = RecordingObserver()
        result = MlpSimulator(_config()).run(_trace(), observer=observer)
        assert len(observer.epochs) == len(result.epochs)
        assert [r.index for r in observer.epochs] == \
            [r.index for r in result.epochs]

    def test_on_store_event_fires_for_store_misses(self):
        observer = RecordingObserver()
        MlpSimulator(_config()).run(_trace(), observer=observer)
        assert len(observer.store_events) == 1
        entry, pos, epoch = observer.store_events[0]
        assert epoch >= 0

    def test_constructor_attached_observer(self):
        observer = RecordingObserver()
        MlpSimulator(_config(), observer=observer).run(_trace())
        assert observer.terminations

    def test_run_argument_overrides_constructor_observer(self):
        constructor_obs = RecordingObserver()
        run_obs = RecordingObserver()
        MlpSimulator(_config(), observer=constructor_obs).run(
            _trace(), observer=run_obs,
        )
        assert run_obs.terminations
        assert not constructor_obs.terminations


class TestObserverNeutrality:
    def test_observed_run_is_bit_identical_to_unobserved(self):
        config = _config()
        plain = MlpSimulator(config).run(_trace())
        observed = MlpSimulator(config).run(
            _trace(), observer=RecordingObserver(),
        )
        assert observed.epoch_count == plain.epoch_count
        assert observed.epi_per_1000 == plain.epi_per_1000
        assert observed.stores_committed == plain.stores_committed
        assert observed.termination_histogram() == \
            plain.termination_histogram()

    def test_base_observer_is_a_no_op(self):
        config = _config()
        plain = MlpSimulator(config).run(_trace())
        observed = MlpSimulator(config).run(
            _trace(), observer=WindowObserver(),
        )
        assert observed.epoch_count == plain.epoch_count


def _busy_trace():
    """Many store misses interleaved with load misses across epochs."""
    trace = []
    for i in range(12):
        reg = 1 + (i % 4)
        trace.append(annotated(InstructionClass.ALU))
        trace.append(annotated(
            InstructionClass.STORE, miss=True, address=0x1000 * (i + 1),
        ))
        trace.append(annotated(
            InstructionClass.LOAD, miss=(i % 3 == 0), dest=reg,
            address=0x200 + 64 * i,
        ))
        trace.append(annotated(InstructionClass.ALU, srcs=(reg,)))
    trace.append(annotated(InstructionClass.ALU))
    return trace


class TestObserverFastPath:
    """``add_store_events`` takes a hoisted fast path when no observer is
    attached; attaching one must only add the callbacks, never change what
    is simulated."""

    def test_every_store_event_reported_exactly_once_in_order(self):
        observer = RecordingObserver()
        MlpSimulator(_config()).run(_busy_trace(), observer=observer)
        assert len(observer.store_events) >= 2
        # no entry is reported twice
        ids = [id(entry) for entry, _, _ in observer.store_events]
        assert len(ids) == len(set(ids))
        # epochs arrive in nondecreasing order
        epochs = [epoch for _, _, epoch in observer.store_events]
        assert epochs == sorted(epochs)
        # the position passed to the hook is the one stamped on the entry
        assert all(
            entry.issue_position == pos
            for entry, pos, _ in observer.store_events
        )

    def test_event_stream_is_deterministic(self):
        first, second = RecordingObserver(), RecordingObserver()
        MlpSimulator(_config()).run(_busy_trace(), observer=first)
        MlpSimulator(_config()).run(_busy_trace(), observer=second)
        assert [(pos, epoch) for _, pos, epoch in first.store_events] == \
            [(pos, epoch) for _, pos, epoch in second.store_events]
        assert first.terminations == second.terminations

    def test_with_and_without_observer_bit_identical(self):
        config = _config()
        plain = MlpSimulator(config).run(_busy_trace())
        observed = MlpSimulator(config).run(
            _busy_trace(), observer=RecordingObserver(),
        )
        assert observed.epochs == plain.epochs
        assert observed.instructions == plain.instructions
        assert observed.fully_overlapped_stores == \
            plain.fully_overlapped_stores
        assert observed.accelerated_stores == plain.accelerated_stores
        assert observed.stores_committed == plain.stores_committed
        assert observed.store_prefetch_requests == \
            plain.store_prefetch_requests
        assert observed.stores_coalesced == plain.stores_coalesced
        assert observed.termination_histogram() == \
            plain.termination_histogram()
