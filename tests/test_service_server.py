"""End-to-end service tests over real HTTP (repro.service.server/client).

The acceptance contract: four concurrent clients submitting the same
figure-2-style sweep share ONE engine execution (dedup counter = 3), all
four read bit-identical results matching a direct Workbench run, and
``/metrics`` reports consistent queue/cache counters throughout.

Kept fast with a deliberately tiny trace (the same sizing the engine
runner tests use); the service is started in-process on an ephemeral port.
"""

from __future__ import annotations

import threading

import pytest

from repro.config import StorePrefetchMode
from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench
from repro.estimate import EpiEstimate
from repro.estimate import estimate as estimate_verb
from repro.service import ReproService, ServiceClient, ServiceError
from repro.smt import run_smt
from repro.tune import TuneResult

SMALL = ExperimentSettings(warmup=1500, measure=4000, seed=11,
                           calibrate=False)

#: A miniature Figure 2 slice: the store-prefetch axis on one workload.
FIG2_AXES = {"store_prefetch": ["sp0", "sp1", "sp2"]}


@pytest.fixture()
def service(tmp_path):
    """An in-process daemon with the dispatcher held back, so tests can
    stage a deterministic backlog before anything executes."""
    svc = ReproService(
        settings=SMALL,
        cache_dir=tmp_path / "cache",
        workers=1,
        start_dispatcher=False,
    ).start()
    yield svc
    svc.stop()


@pytest.fixture()
def client(service):
    return ServiceClient(service.url, timeout=30.0)


class TestEndToEnd:
    def test_four_concurrent_clients_one_execution(self, service, client):
        receipts = []
        barrier = threading.Barrier(4)

        def submit():
            own = ServiceClient(service.url, timeout=30.0)
            barrier.wait()
            receipts.append(
                own.submit_sweep("database", **FIG2_AXES)
            )

        threads = [threading.Thread(target=submit) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # (a) all four submissions resolved to one job, three deduplicated
        ids = {receipt["id"] for receipt in receipts}
        assert len(ids) == 1
        assert sum(receipt["deduped"] for receipt in receipts) == 3
        assert service.metrics.counter("jobs_deduped_total") == 3
        assert service.metrics.counter("jobs_submitted_total") == 4

        service.start_dispatcher()
        job_id = ids.pop()
        statuses = [client.wait(job_id, timeout=240.0) for _ in range(4)]

        # (b) every client reads the same bit-identical results, equal to
        # a direct (service-free) Workbench run of the same points
        reports = [ServiceClient.decode_report(s) for s in statuses]
        bench = Workbench(SMALL, cache_dir=None)
        for mode, job in zip(StorePrefetchMode, reports[0].jobs):
            assert job.ok
            direct = bench.run("database", store_prefetch=mode)
            assert job.result == direct
        for report in reports[1:]:
            assert report == reports[0]
        assert statuses[0]["dedup_count"] == 3

        # (c) /metrics agrees with what actually happened
        metrics = client.metrics()
        counters = metrics["counters"]
        assert counters["jobs_submitted_total"] == 4
        assert counters["jobs_deduped_total"] == 3
        assert counters["jobs_done_total"] == 1
        assert counters.get("jobs_failed_total", 0) == 0
        gauges = metrics["gauges"]
        assert gauges["queue_depth"] == 0
        assert gauges["jobs_done"] == 1
        assert gauges["jobs_queued"] == gauges["jobs_running"] == 0
        stats = service.engine.artifacts.stats
        assert gauges["cache_misses"] == stats.misses
        assert gauges["cache_memory_hits"] == stats.memory_hits
        assert metrics["latency"]["job_exec"]["count"] == 1
        prom = client.metrics(format="text")
        assert "repro_jobs_deduped_total 3" in prom
        assert "repro_queue_depth 0" in prom

    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["settings"]["measure"] == SMALL.measure
        assert health["jobs"]["queued"] == 0

    def test_simulate_job_and_status_payload(self, service, client):
        service.start_dispatcher()
        receipt = client.submit_simulate(
            "database", store_prefetch="sp1", store_queue=16,
        )
        status = client.wait(receipt["id"], timeout=240.0)
        assert status["state"] == "done"
        report = ServiceClient.decode_report(status)
        direct = Workbench(SMALL, cache_dir=None).run(
            "database",
            store_prefetch=StorePrefetchMode.AT_RETIRE,
            store_queue=16,
        )
        assert report.jobs[0].result == direct

    def test_tune_job_returns_best_config(self, service, client):
        service.start_dispatcher()
        receipt = client.submit_tune(
            "database", strategy="grid", budget=2,
            scout=["none", "hws2"],
        )
        status = client.wait(receipt["id"], timeout=240.0)
        assert status["state"] == "done"
        result = status["result"]
        assert result["kind"] == "tune"
        assert result["best"]["knobs"]["scout"] == "hws2"
        assert result["best"]["epi_per_1000"] > 0
        assert "tune:database" in result["summary"]
        decoded = TuneResult.from_dict(result["tune_result"])
        assert decoded.evaluations == 2
        # identical resubmission resumes from the daemon's shared cache
        again = client.submit_tune(
            "database", strategy="grid", budget=2,
            scout=["none", "hws2"],
        )
        second = client.wait(again["id"], timeout=240.0)
        resumed = TuneResult.from_dict(second["result"]["tune_result"])
        assert resumed.evaluations == 0
        assert resumed.resumed > 0
        assert second["result"]["best"] == result["best"]

    def test_cancel_queued_job_via_http(self, service, client):
        # dispatcher never started: the job stays queued
        receipt = client.submit_sweep("tpcw", store_queue=[16])
        cancelled = client.cancel(receipt["id"])
        assert cancelled["cancelled"] is True
        status = client.status(receipt["id"])
        assert status["state"] == "cancelled"
        # cancelling again conflicts
        with pytest.raises(ServiceError) as excinfo:
            client.cancel(receipt["id"])
        assert excinfo.value.status == 409

    def test_bad_requests_answer_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"kind": "sweep"})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.submit({
                "kind": "sweep",
                "sweep": {"workloads": ["database"],
                          "axes": {"store_prefetch": ["warp9"]}},
            })
        assert excinfo.value.status == 400
        assert "warp9" in str(excinfo.value)

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.status("doesnotexist")
        assert excinfo.value.status == 404


class TestProtocolVersioning:
    def test_responses_carry_wire_version(self, client):
        from repro.service.protocol import PROTOCOL_VERSION

        assert client.health()["v"] == PROTOCOL_VERSION
        receipt = client.submit_sweep("database", store_queue=[16])
        assert receipt["v"] == PROTOCOL_VERSION
        assert client.status(receipt["id"])["v"] == PROTOCOL_VERSION

    def test_version_mismatch_is_structured_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit({
                "v": 2,
                "kind": "sweep",
                "sweep": {"workloads": ["database"],
                          "axes": {"store_queue": [16]}},
            })
        assert excinfo.value.status == 400
        assert "protocol version" in str(excinfo.value)
        # even the error document names the version the server speaks
        from repro.service.protocol import PROTOCOL_VERSION
        assert excinfo.value.payload.get("v") == PROTOCOL_VERSION

    def test_result_verb_returns_decoded_report(self, service, client):
        service.start_dispatcher()
        receipt = client.submit_simulate("database", store_queue=16)
        report = client.result(receipt["id"], timeout=240.0)
        assert report.jobs[0].ok
        assert report.jobs[0].result.epoch_count > 0

    def test_result_verb_raises_on_cancelled_job(self, service, client):
        # dispatcher never started: the job stays queued until cancelled
        receipt = client.submit_sweep("tpcw", store_queue=[16])
        client.cancel(receipt["id"])
        with pytest.raises(ServiceError) as excinfo:
            client.result(receipt["id"], timeout=5.0)
        assert "cancelled" in str(excinfo.value)

    def test_job_listing(self, service, client):
        client.submit_sweep("database", store_queue=[16])
        client.submit_sweep("tpcw", store_queue=[16])
        listed = client.jobs()
        assert len(listed) == 2
        assert {job["state"] for job in listed} == {"queued"}

    def test_failed_job_carries_traceback(self, service, client,
                                          monkeypatch):
        def boom(request):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(service.dispatcher, "executor", boom)
        service.start_dispatcher()
        receipt = client.submit_sweep("database", store_queue=[16])
        status = client.wait(receipt["id"], timeout=30.0)
        assert status["state"] == "failed"
        assert "engine exploded" in status["error"]
        assert "RuntimeError" in status["traceback"]
        assert client.metrics()["counters"]["jobs_failed_total"] == 1


class TestSaturationAndDrain:
    def test_healthz_reports_backends_and_fleet_shape(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert "reference" in health["backends"]
        assert health["fleet"] == {"workers": 0}

    def test_draining_daemon_answers_503_with_retry_after(
        self, service, client,
    ):
        service.draining = True
        with pytest.raises(ServiceError) as excinfo:
            client.submit_simulate("database")
        error = excinfo.value
        assert error.status == 503
        assert error.payload["code"] == "saturated"
        assert error.retry_after >= 1  # parsed from the Retry-After header
        assert client.health()["status"] == "draining"
        # draining refuses *new* work; reads still answer
        assert client.jobs() == []

    def test_full_queue_answers_429_with_retry_after(self, tmp_path):
        svc = ReproService(
            settings=SMALL,
            cache_dir=tmp_path / "cache",
            workers=1,
            queue_capacity=1,
            start_dispatcher=False,
        ).start()
        try:
            own = ServiceClient(svc.url, timeout=30.0)
            own.submit_sweep("database", store_queue=[16])
            with pytest.raises(ServiceError) as excinfo:
                own.submit_sweep("database", store_queue=[32])
            error = excinfo.value
            assert error.status == 429
            assert error.payload["code"] == "saturated"
            assert error.retry_after >= 1
        finally:
            svc.stop()


class TestClientBackoff:
    """Saturation retry behaviour against a scripted stub server."""

    def _stub(self, fail_times, status=429, retry_after="0"):
        import json
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        seen = []

        class Handler(BaseHTTPRequestHandler):
            def do_POST(self):
                self.rfile.read(int(self.headers.get("Content-Length", 0)))
                seen.append(self.path)
                if len(seen) <= fail_times:
                    body = json.dumps(
                        {"error": "try later", "code": "saturated"},
                    ).encode("utf-8")
                    self.send_response(status)
                    self.send_header("Retry-After", retry_after)
                else:
                    body = json.dumps(
                        {"id": "j1", "state": "queued", "deduped": False},
                    ).encode("utf-8")
                    self.send_response(202)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        httpd = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        return httpd, seen

    def test_retries_past_saturation_then_succeeds(self):
        import random

        httpd, seen = self._stub(fail_times=2)
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{httpd.server_address[1]}",
                saturation_retries=3,
                backoff=0.001,
                max_backoff=0.01,
                rng=random.Random(7),
            )
            receipt = client.submit_simulate("database")
            assert receipt["id"] == "j1"
            assert len(seen) == 3  # two 429 answers, then the 202
        finally:
            httpd.shutdown()

    def test_exhausted_retries_surface_the_retry_after_hint(self):
        httpd, seen = self._stub(fail_times=99, status=503, retry_after="7")
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{httpd.server_address[1]}",
                saturation_retries=0,  # surface saturation immediately
            )
            with pytest.raises(ServiceError) as excinfo:
                client.submit_simulate("database")
            error = excinfo.value
            assert error.status == 503
            assert error.payload["code"] == "saturated"
            assert error.retry_after == 7.0
            assert len(seen) == 1  # no retry when opted out
        finally:
            httpd.shutdown()

    def test_decorrelated_jitter_stays_within_bounds(self):
        import random

        client = ServiceClient(
            "http://127.0.0.1:9", retries=0,
            backoff=0.01, max_backoff=0.5, rng=random.Random(1),
        )
        previous = client.backoff
        for _ in range(200):
            value = client._jitter_sleep()
            assert client.backoff <= value <= client.max_backoff
            assert value <= max(previous * 3, client.backoff) + 1e-12
            previous = value


class TestSmtAndEstimateVerbs:
    def test_smt_simulate_over_http(self, service, client):
        service.start_dispatcher()
        receipt = client.submit_simulate(
            "oltp_java", contexts=2, scheduler="mlp",
        )
        status = client.wait(receipt["id"], timeout=240.0)
        assert status["state"] == "done"
        report = ServiceClient.decode_report(status)
        result = report.jobs[0].result
        assert result.scheduler == "mlp"
        assert len(result.contexts) == 2
        direct = run_smt(
            Workbench(SMALL, cache_dir=None), "oltp_java",
            contexts=2, scheduler="mlp",
        )
        assert result.stp == direct.stp
        assert result.antt == direct.antt

    def test_estimate_resolves_without_the_dispatcher(self, client):
        # No dispatcher: estimates are answered inline on submit, so
        # the job is already done when the receipt comes back.
        receipt = client.submit_estimate("database", scout="hws2")
        status = client.wait(receipt["id"], timeout=30.0)
        assert status["state"] == "done"
        result = status["result"]
        assert result["kind"] == "estimate"
        assert result["predicted_epi_per_1000"] > 0
        assert "estimate database" in result["summary"]
        decoded = client.result(receipt["id"])
        assert isinstance(decoded, EpiEstimate)
        assert decoded == estimate_verb("database", scout="hws2")

    def test_estimate_bad_scheduler_answers_400(self, client):
        from repro.service import ServiceError as _err

        with pytest.raises(_err):
            client.submit_simulate(
                "database", contexts=2, scheduler="fifo",
            )
