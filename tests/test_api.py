"""The repro.api facade: one front door over workbench, engine, service."""

from __future__ import annotations

import pytest

from repro import api
from repro.harness.experiment import Workbench

SMALL = api.ExperimentSettings(
    warmup=1500, measure=4000, seed=11, calibrate=False,
)


class TestRun:
    def test_matches_a_direct_workbench_run(self):
        via_api = api.run("database", settings=SMALL, cache_dir=None)
        direct = Workbench(SMALL, cache_dir=None).run("database")
        assert via_api == direct

    def test_core_changes_reach_the_simulation(self):
        base = api.run("database", settings=SMALL, cache_dir=None)
        prefetched = api.run(
            "database", settings=SMALL, cache_dir=None, store_prefetch="sp2",
        )
        assert prefetched.epi_per_1000 <= base.epi_per_1000

    def test_shared_workbench_reuses_artifacts(self):
        bench = api.workbench(SMALL, cache_dir=None)
        first = api.run("database", bench=bench)
        second = api.run("database", bench=bench, store_queue=16)
        assert first.instructions == second.instructions
        # one annotation served both runs
        assert bench.artifacts.stats.memory_hits > 0


class TestSweep:
    def test_spec_object_and_mapping_agree(self):
        spec = api.SweepSpec.build("database", store_queue=[16, 32])
        from_spec = api.sweep(
            spec, settings=SMALL, cache_dir=None, workers=1,
        )
        from_mapping = api.sweep(
            {"workloads": ["database"], "axes": {"store_queue": [16, 32]}},
            settings=SMALL, cache_dir=None, workers=1,
        )
        assert [r.epi_per_1000 for r in from_spec] == \
            [r.epi_per_1000 for r in from_mapping]
        assert [dict(r.point)["store_queue"] for r in from_spec] == [16, 32]

    def test_records_match_serial_runs(self):
        records = api.sweep(
            api.SweepSpec.build("database", store_queue=[16, 32]),
            settings=SMALL, cache_dir=None, workers=1,
        )
        bench = Workbench(SMALL, cache_dir=None)
        for record in records:
            direct = bench.run("database", **dict(record.point))
            assert record.epi_per_1000 == direct.epi_per_1000

    def test_malformed_mapping_is_a_type_error(self):
        with pytest.raises(TypeError, match="SweepSpec"):
            api.sweep({"axes": {"store_queue": [16]}})
        with pytest.raises(TypeError, match="SweepSpec"):
            api.sweep("database")


class TestSurface:
    def test_connect_builds_a_client(self):
        client = api.connect(
            "http://127.0.0.1:9/", timeout=1.0, retries=0,
        )
        assert client.base_url == "http://127.0.0.1:9"
        assert client.retries == 0

    def test_facade_is_exported_from_the_package_root(self):
        import repro

        assert repro.api is api
        assert "api" in repro.__all__

    def test_old_entry_points_still_importable(self):
        # the deprecation is a docstring note, not a runtime break
        from repro.engine.runner import EngineRunner
        from repro.harness.experiment import Workbench
        from repro.service.client import ServiceClient

        assert api.EngineRunner is EngineRunner
        assert api.Workbench is Workbench
        assert api.ServiceClient is ServiceClient
