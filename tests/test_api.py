"""The repro.api facade: one front door over workbench, engine, service."""

from __future__ import annotations

import pytest

from repro import api
from repro.config import ScoutMode
from repro.harness.experiment import Workbench

SMALL = api.ExperimentSettings(
    warmup=1500, measure=4000, seed=11, calibrate=False,
)


class TestRun:
    def test_matches_a_direct_workbench_run(self):
        via_api = api.run("database", settings=SMALL, cache_dir=None)
        direct = Workbench(SMALL, cache_dir=None).run("database")
        assert via_api == direct

    def test_core_changes_reach_the_simulation(self):
        base = api.run("database", settings=SMALL, cache_dir=None)
        prefetched = api.run(
            "database", settings=SMALL, cache_dir=None, store_prefetch="sp2",
        )
        assert prefetched.epi_per_1000 <= base.epi_per_1000

    def test_shared_workbench_reuses_artifacts(self):
        bench = api.workbench(SMALL, cache_dir=None)
        first = api.run("database", bench=bench)
        second = api.run("database", bench=bench, store_queue=16)
        assert first.instructions == second.instructions
        # one annotation served both runs
        assert bench.artifacts.stats.memory_hits > 0

    def test_jobspec_shaped_mapping_matches_direct_run(self):
        # The JobSpec convention the service speaks works at the front
        # door too: a mapping with core_changes in wire spellings.
        via_mapping = api.run(
            {"workload": "database", "variant": "wc",
             "core_changes": {"scout": "hws2", "store_queue": 16}},
            settings=SMALL, cache_dir=None,
        )
        direct = Workbench(SMALL, cache_dir=None).run(
            "database", variant="wc",
            scout=ScoutMode.HWS2, store_queue=16,
        )
        assert via_mapping == direct

    def test_explicit_kwargs_override_jobspec_fields(self):
        overridden = api.run(
            {"workload": "database", "core_changes": {"store_queue": 16}},
            settings=SMALL, cache_dir=None, store_queue=64,
        )
        direct = Workbench(SMALL, cache_dir=None).run(
            "database", store_queue=64,
        )
        assert overridden == direct

    def test_unknown_knob_lists_valid_axes(self):
        with pytest.raises(ValueError, match="valid axes"):
            api.run("database", settings=SMALL, cache_dir=None,
                    warp_drive=9)

    def test_unknown_job_field_lists_valid_fields(self):
        with pytest.raises(ValueError, match="valid fields"):
            api.run({"workload": "database", "cromulence": 3},
                    settings=SMALL, cache_dir=None)


class TestSweep:
    def test_spec_object_and_mapping_agree(self):
        spec = api.SweepSpec.build("database", store_queue=[16, 32])
        from_spec = api.sweep(
            spec, settings=SMALL, cache_dir=None, workers=1,
        )
        from_mapping = api.sweep(
            {"workloads": ["database"], "axes": {"store_queue": [16, 32]}},
            settings=SMALL, cache_dir=None, workers=1,
        )
        assert [r.epi_per_1000 for r in from_spec] == \
            [r.epi_per_1000 for r in from_mapping]
        assert [dict(r.point)["store_queue"] for r in from_spec] == [16, 32]

    def test_records_match_serial_runs(self):
        records = api.sweep(
            api.SweepSpec.build("database", store_queue=[16, 32]),
            settings=SMALL, cache_dir=None, workers=1,
        )
        bench = Workbench(SMALL, cache_dir=None)
        for record in records:
            direct = bench.run("database", **dict(record.point))
            assert record.epi_per_1000 == direct.epi_per_1000

    def test_malformed_mapping_is_a_type_error(self):
        with pytest.raises(TypeError, match="SweepSpec"):
            api.sweep({"axes": {"store_queue": [16]}})
        with pytest.raises(TypeError, match="SweepSpec"):
            api.sweep("database")

    def test_sharded_sweep_is_bit_identical(self, tmp_path):
        spec = api.SweepSpec.build("database", store_queue=[16, 32])
        plain = api.sweep(
            spec, settings=SMALL, cache_dir=None, workers=1,
        )
        sharded = api.sweep(
            spec, settings=SMALL, cache_dir=tmp_path / "shards",
            workers=1, shards=2,
        )
        assert [r.point for r in sharded] == [r.point for r in plain]
        assert [r.epi_per_1000 for r in sharded] == \
            [r.epi_per_1000 for r in plain]

    def test_checkpointed_sweep_is_bit_identical(self, tmp_path):
        spec = api.SweepSpec.build("database", store_queue=[16, 32])
        plain = api.sweep(
            spec, settings=SMALL, cache_dir=None, workers=1,
        )
        checkpointed = api.sweep(
            spec, settings=SMALL, cache_dir=tmp_path / "ckpt",
            workers=1, checkpoint_every=2000,
        )
        assert [r.epi_per_1000 for r in checkpointed] == \
            [r.epi_per_1000 for r in plain]


class TestTune:
    def test_facade_finds_the_cheap_corner(self, tmp_path):
        result = api.tune(
            {"scout": ["none", "hws2"]},
            profile="database", strategy="grid", budget=2,
            settings=SMALL, cache_dir=tmp_path / "tune",
        )
        assert result.evaluations == 2
        # Scouting is worth ~30% on database at any trace size; the
        # exhaustive two-point search must pick it up.
        assert dict(result.best)["scout"].value != "none"
        baseline = api.run("database", settings=SMALL, cache_dir=None)
        assert result.best_epi_per_1000 < baseline.epi_per_1000


class TestSurface:
    def test_connect_builds_a_client(self):
        client = api.connect(
            "http://127.0.0.1:9/", timeout=1.0, retries=0,
        )
        assert client.base_url == "http://127.0.0.1:9"
        assert client.retries == 0

    def test_facade_is_exported_from_the_package_root(self):
        import repro

        assert repro.api is api
        assert "api" in repro.__all__

    def test_canonical_homes_remain_importable(self):
        # v2 removed the *aliases*; the classes themselves stay
        # importable from their canonical modules for extension code.
        from repro.engine.runner import EngineRunner
        from repro.harness.experiment import Workbench
        from repro.service.client import ServiceClient

        assert api.EngineRunner is EngineRunner
        assert api.Workbench is Workbench
        assert api.ServiceClient is ServiceClient


class TestRunContexts:
    """The redesigned ``contexts=``/``scheduler=`` axis on ``api.run``."""

    def test_multi_context_returns_an_smt_result(self):
        result = api.run(
            "oltp_java", settings=SMALL, cache_dir=None,
            contexts=2, scheduler="mlp",
        )
        assert isinstance(result, api.SmtResult)
        assert result.scheduler == "mlp"
        assert [c.workload for c in result.contexts] == [
            "database", "specjbb",
        ]

    def test_jobspec_mapping_carries_the_smt_fields(self):
        result = api.run(
            {"workload": "database", "contexts": 2},
            settings=SMALL, cache_dir=None,
        )
        assert isinstance(result, api.SmtResult)
        assert result.scheduler == "round_robin"

    def test_single_context_keeps_the_reference_result(self):
        bench = api.workbench(SMALL, cache_dir=None)
        assert api.run("database", bench=bench, contexts=1) == \
            bench.run("database")

    def test_scheduler_requires_multiple_contexts(self):
        with pytest.raises(ValueError, match="contexts > 1"):
            api.run(
                "database", settings=SMALL, cache_dir=None,
                scheduler="mlp",
            )

    def test_contexts_cannot_shard(self):
        with pytest.raises(ValueError, match="not shardable"):
            api.run(
                "database", settings=SMALL, cache_dir=None,
                contexts=2, shards=2,
            )

    def test_contexts_cannot_trace(self):
        with pytest.raises(ValueError, match="trace="):
            api.run(
                "database", settings=SMALL, cache_dir=None,
                contexts=2, trace="run.jsonl",
            )

    def test_valid_schedulers_exported(self):
        assert "mlp" in api.valid_schedulers()


class TestJobSpecSmtFields:
    def test_coerce_validates_contexts(self):
        from repro.engine.runner import JobSpec

        with pytest.raises(ValueError, match="integer >= 1"):
            JobSpec.coerce({"workload": "database", "contexts": 0})

    def test_coerce_validates_scheduler(self):
        from repro.engine.runner import JobSpec

        with pytest.raises(ValueError, match="valid schedulers"):
            JobSpec.coerce({
                "workload": "database", "contexts": 2, "scheduler": "fifo",
            })

    def test_describe_shows_the_smt_suffix(self):
        from repro.engine.runner import JobSpec

        spec = JobSpec.coerce({
            "workload": "oltp_java", "contexts": 2, "scheduler": "mlp",
        })
        assert "x2" in spec.describe()
        assert "mlp" in spec.describe()
