"""MESI transition rules."""

from __future__ import annotations

import pytest

from repro.memory.coherence import (
    MesiState,
    on_local_read_fill,
    on_local_write,
    on_snoop_read,
    on_snoop_write,
)


class TestLocal:
    def test_read_fill_exclusive_when_private(self):
        assert on_local_read_fill(shared_elsewhere=False) is MesiState.EXCLUSIVE

    def test_read_fill_shared_when_shared(self):
        assert on_local_read_fill(shared_elsewhere=True) is MesiState.SHARED

    @pytest.mark.parametrize("state", [
        MesiState.MODIFIED, MesiState.EXCLUSIVE, MesiState.SHARED,
    ])
    def test_write_always_yields_modified(self, state):
        assert on_local_write(state) is MesiState.MODIFIED

    def test_write_to_invalid_rejected(self):
        with pytest.raises(ValueError):
            on_local_write(MesiState.INVALID)


class TestSnoopRead:
    def test_modified_writes_back_and_shares(self):
        result = on_snoop_read(MesiState.MODIFIED)
        assert result.next_state is MesiState.SHARED
        assert result.writeback

    @pytest.mark.parametrize("state", [MesiState.EXCLUSIVE, MesiState.SHARED])
    def test_clean_states_downgrade_silently(self, state):
        result = on_snoop_read(state)
        assert result.next_state is MesiState.SHARED
        assert not result.writeback

    def test_invalid_stays_invalid(self):
        assert on_snoop_read(MesiState.INVALID).next_state is MesiState.INVALID


class TestSnoopWrite:
    def test_modified_writes_back_then_invalidates(self):
        result = on_snoop_write(MesiState.MODIFIED)
        assert result.next_state is MesiState.INVALID
        assert result.writeback

    @pytest.mark.parametrize("state", [
        MesiState.EXCLUSIVE, MesiState.SHARED, MesiState.INVALID,
    ])
    def test_others_invalidate_without_writeback(self, state):
        result = on_snoop_write(state)
        assert result.next_state is MesiState.INVALID
        assert not result.writeback
