"""Phase decomposition and span-tree tests for repro.obs.timeline.

Events here are hand-built coordinator traces: the contract under test is
that a job's wall time is tiled *exactly* by the five phases (the <=5%
reconciliation bound in the fleet acceptance check is slack for clock
reads, not for gaps in the model), and that cross-process span stitching
distinguishes a connected tree from a split one.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    PHASES,
    aggregate_phases,
    connected_roots,
    critical_path,
    fleet_job_ids,
    job_timeline,
    render_timeline_report,
    span_tree,
)


def _span(kind, name, corr, span_id, parent="", ts=0.0, **attrs):
    event = {
        "kind": kind, "name": name, "corr": corr, "span": "",
        "id": span_id, "parent": parent, "ts": ts,
    }
    event.update(attrs)
    return event


def fleet_trace():
    """A two-task job where one shard's worker dies and the task resumes.

    t=10 submit, t=11 expanded, task A runs 12..15 on w1; task B leased
    at 12.5 on w2 which dies, is re-leased at 18 to w1, completes at 22
    (from a checkpoint); the job assembles and finishes at 23.
    """
    j = "job-1"
    return [
        _span("span_start", "fleet_job", j, "root", ts=10.0, job=j),
        {"kind": "fleet_job_expanded", "corr": j, "ts": 11.0, "tasks": 2},
        {"kind": "fleet_task_leased", "corr": j, "ts": 12.0, "task": "A",
         "worker": "w1", "attempt": 1},
        {"kind": "fleet_task_leased", "corr": j, "ts": 12.5, "task": "B",
         "worker": "w2", "attempt": 1},
        {"kind": "fleet_task_complete", "corr": j, "ts": 15.0, "task": "A",
         "worker": "w1", "state": "done", "resumed_pos": -1,
         "checkpoints": 2},
        {"kind": "fleet_worker_evicted", "corr": j, "ts": 17.0,
         "worker": "w2"},
        {"kind": "fleet_task_leased", "corr": j, "ts": 18.0, "task": "B",
         "worker": "w1", "attempt": 2},
        {"kind": "fleet_task_complete", "corr": j, "ts": 22.0, "task": "B",
         "worker": "w1", "state": "done", "resumed_pos": 4000,
         "checkpoints": 1},
        _span("span_end", "fleet_job", j, "root", ts=23.0, dur=13.0,
              state="done"),
    ]


class TestSpanTree:
    def test_connected_tree_has_single_root(self):
        events = [
            _span("span_start", "fleet_job", "j", "root", ts=1.0),
            # Worker-side spans parent into the coordinator's root via
            # the propagated traceparent.
            _span("span_start", "engine_batch", "j", "batch", "root", 2.0),
            _span("span_start", "simulate", "j", "sim", "batch", 3.0),
            _span("span_end", "simulate", "j", "sim", "batch", 4.0, dur=1.0),
            _span("span_end", "engine_batch", "j", "batch", "root", 5.0,
                  dur=3.0),
            _span("span_end", "fleet_job", "j", "root", ts=6.0, dur=5.0),
        ]
        nodes = span_tree(events, "j")
        assert nodes["root"]["children"] == ["batch"]
        assert nodes["batch"]["children"] == ["sim"]
        assert connected_roots(events, "j") == {"root"}

    def test_unpropagated_span_splits_the_tree(self):
        events = [
            _span("span_start", "fleet_job", "j", "root", ts=1.0),
            _span("span_start", "engine_batch", "j", "orphan",
                  "missing-parent", 2.0),
        ]
        assert connected_roots(events, "j") == {"root", "orphan"}

    def test_sigkilled_span_keeps_open_end(self):
        events = [
            _span("span_start", "fleet_job", "j", "root", ts=1.0),
            _span("span_start", "engine_batch", "j", "killed", "root", 2.0),
        ]
        nodes = span_tree(events, "j")
        assert nodes["killed"]["end"] is None
        assert connected_roots(events, "j") == {"root"}

    def test_fleet_job_ids_in_submit_order(self):
        events = [
            _span("span_start", "fleet_job", "j2", "r2", ts=2.0),
            _span("span_start", "fleet_job", "j1", "r1", ts=1.0),
            _span("span_start", "engine_batch", "j3", "b", ts=3.0),
        ]
        assert fleet_job_ids(events) == ["j2", "j1"]


class TestJobTimeline:
    def test_unknown_job_returns_none(self):
        assert job_timeline(fleet_trace(), "nope") is None

    def test_phases_tile_the_wall_exactly(self):
        timeline = job_timeline(fleet_trace(), "job-1")
        assert timeline is not None
        assert timeline.wall == pytest.approx(13.0)
        assert timeline.phase_sum == pytest.approx(timeline.wall)
        phases = timeline.phases
        assert set(phases) == set(PHASES)
        assert phases["queued"] == pytest.approx(1.0)       # 10 -> 11
        assert phases["lease_wait"] == pytest.approx(1.5)   # 11 -> 12.5
        assert phases["recovery"] == pytest.approx(5.5)     # 12.5 -> 18
        assert phases["executing"] == pytest.approx(4.0)    # 18 -> 22
        assert phases["merging"] == pytest.approx(1.0)      # 22 -> 23

    def test_backbone_and_bookkeeping(self):
        timeline = job_timeline(fleet_trace(), "job-1")
        assert timeline.backbone_task == "B"
        assert timeline.state == "done"
        assert timeline.task_count == 2
        assert timeline.workers == ["w1", "w2"]
        assert timeline.resumes == 1
        assert timeline.checkpoints == 3
        recovery = [s for s in timeline.segments if s.phase == "recovery"]
        assert len(recovery) == 1
        assert "w2" in recovery[0].detail and "w1" in recovery[0].detail

    def test_no_failure_means_no_recovery(self):
        j = "fast"
        events = [
            _span("span_start", "fleet_job", j, "root", ts=0.0),
            {"kind": "fleet_job_expanded", "corr": j, "ts": 1.0, "tasks": 1},
            {"kind": "fleet_task_leased", "corr": j, "ts": 2.0, "task": "T",
             "worker": "w1", "attempt": 1},
            {"kind": "fleet_task_complete", "corr": j, "ts": 5.0, "task": "T",
             "worker": "w1", "state": "done", "resumed_pos": -1,
             "checkpoints": 0},
            _span("span_end", "fleet_job", j, "root", ts=5.5, dur=5.5,
                  state="done"),
        ]
        timeline = job_timeline(events, j)
        assert timeline.phases["recovery"] == 0.0
        assert timeline.phase_sum == pytest.approx(timeline.wall)

    def test_running_job_decomposes_partial_wall(self):
        events = [e for e in fleet_trace() if e["kind"] != "span_end"]
        timeline = job_timeline(events, "job-1")
        assert timeline.state == "running"
        assert timeline.finished == pytest.approx(22.0)
        assert timeline.phase_sum == pytest.approx(timeline.wall)

    def test_to_dict_round_trips_through_json(self):
        import json

        timeline = job_timeline(fleet_trace(), "job-1")
        payload = json.loads(json.dumps(timeline.to_dict()))
        assert payload["job"] == "job-1"
        assert payload["phases"]["recovery"] == pytest.approx(5.5)
        assert len(payload["segments"]) == len(timeline.segments)

    def test_critical_path_matches_timeline_segments(self):
        timeline = job_timeline(fleet_trace(), "job-1")
        path = critical_path(fleet_trace(), "job-1")
        assert [(s.phase, s.duration) for s in path] == [
            (s.phase, s.duration) for s in timeline.segments
        ]
        assert critical_path(fleet_trace(), "nope") == []


class TestAggregation:
    def test_aggregate_phases_and_wall(self):
        timelines = [job_timeline(fleet_trace(), "job-1")] * 3
        stats = aggregate_phases(timelines)
        assert stats["recovery"]["count"] == 3.0
        assert stats["recovery"]["p50"] == pytest.approx(5.5)
        assert stats["wall"]["mean"] == pytest.approx(13.0)

    def test_aggregate_of_nothing_is_empty(self):
        assert aggregate_phases([]) == {}


class TestRendering:
    def test_report_mentions_phases_and_tree_health(self):
        events = fleet_trace()
        timeline = job_timeline(events, "job-1")
        text = render_timeline_report(timeline, events)
        for phase in PHASES:
            assert phase in text
        assert "critical path" in text
        assert "connected (1 root(s))" in text

    def test_report_flags_split_tree(self):
        events = fleet_trace() + [
            _span("span_start", "engine_batch", "job-1", "lost",
                  "not-a-span", 12.6),
        ]
        timeline = job_timeline(events, "job-1")
        text = render_timeline_report(timeline, events)
        assert "SPLIT" in text
