"""Fetch buffer occupancy model."""

from __future__ import annotations

import pytest

from repro.frontend import FetchBuffer


class TestFetchBuffer:
    def test_push_within_capacity(self):
        fb = FetchBuffer(8)
        assert fb.push(5) == 5
        assert fb.occupied == 5
        assert fb.free == 3

    def test_push_clips_at_capacity(self):
        fb = FetchBuffer(8)
        assert fb.push(10) == 8
        assert fb.full

    def test_pop_drains(self):
        fb = FetchBuffer(8)
        fb.push(6)
        assert fb.pop(4) == 4
        assert fb.occupied == 2

    def test_pop_clips_at_occupancy(self):
        fb = FetchBuffer(8)
        fb.push(2)
        assert fb.pop(5) == 2
        assert fb.occupied == 0

    def test_flush(self):
        fb = FetchBuffer(8)
        fb.push(8)
        fb.flush()
        assert fb.occupied == 0 and not fb.full

    def test_validation(self):
        with pytest.raises(ValueError):
            FetchBuffer(0)
        fb = FetchBuffer(4)
        with pytest.raises(ValueError):
            fb.push(-1)
        with pytest.raises(ValueError):
            fb.pop(-1)
