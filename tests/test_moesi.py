"""MOESI protocol extension (paper: the SMAC 'can be easily extended to
the MOESI protocol')."""

from __future__ import annotations

import pytest

from repro.memory.coherence import (
    MoesiState,
    moesi_on_eviction,
    moesi_on_snoop_read,
    moesi_on_snoop_write,
)


class TestSnoopRead:
    def test_modified_becomes_owned_without_writeback(self):
        result = moesi_on_snoop_read(MoesiState.MODIFIED)
        assert result.next_state is MoesiState.OWNED
        assert not result.writeback
        assert result.supplies_data

    def test_owned_stays_owned_and_supplies(self):
        result = moesi_on_snoop_read(MoesiState.OWNED)
        assert result.next_state is MoesiState.OWNED
        assert result.supplies_data

    @pytest.mark.parametrize("state", [MoesiState.EXCLUSIVE, MoesiState.SHARED])
    def test_clean_states_share_silently(self, state):
        result = moesi_on_snoop_read(state)
        assert result.next_state is MoesiState.SHARED
        assert not result.supplies_data

    def test_invalid_is_noop(self):
        result = moesi_on_snoop_read(MoesiState.INVALID)
        assert result.next_state is MoesiState.INVALID


class TestSnoopWrite:
    @pytest.mark.parametrize("state", [MoesiState.MODIFIED, MoesiState.OWNED])
    def test_dirty_holders_supply_and_invalidate(self, state):
        result = moesi_on_snoop_write(state)
        assert result.next_state is MoesiState.INVALID
        assert result.supplies_data
        assert not result.writeback  # data moves chip-to-chip, not to memory

    @pytest.mark.parametrize("state", [
        MoesiState.EXCLUSIVE, MoesiState.SHARED, MoesiState.INVALID,
    ])
    def test_clean_holders_just_invalidate(self, state):
        result = moesi_on_snoop_write(state)
        assert result.next_state is MoesiState.INVALID
        assert not result.supplies_data


class TestEviction:
    def test_dirty_states_write_back(self):
        assert moesi_on_eviction(MoesiState.MODIFIED)
        assert moesi_on_eviction(MoesiState.OWNED)

    @pytest.mark.parametrize("state", [
        MoesiState.EXCLUSIVE, MoesiState.SHARED, MoesiState.INVALID,
    ])
    def test_clean_states_do_not(self, state):
        assert not moesi_on_eviction(state)
