"""Metrics registry and Prometheus exposition tests for repro.obs.metrics.

The scrape half covers the bug this layer fixed: the old renderer only
annotated latency summaries, so strict Prometheus parsers rejected the
bare counter and gauge samples.  ``parse_exposition`` below enforces the
0.0.4 text-format contract — every sample line must sit under a ``# HELP``
and ``# TYPE`` pair for its metric family — first against a registry built
by hand, then against a live ``/metrics`` endpoint with the engine and
simulation metric families registered.
"""

from __future__ import annotations

import json
import urllib.request
from typing import Dict

import pytest

from repro.harness import ExperimentSettings
from repro.obs.metrics import MetricsRegistry, percentile
from repro.service import ReproService

SMALL = ExperimentSettings(warmup=1500, measure=4000, seed=11,
                           calibrate=False)


def parse_exposition(text: str) -> Dict[str, dict]:
    """Parse Prometheus text format 0.0.4, strictly.

    Returns ``{family: {"help": str, "type": str, "samples": [(name,
    labels, value)]}}`` and asserts that every sample line belongs to a
    family whose ``# HELP`` and ``# TYPE`` lines both appeared first.
    """
    families: Dict[str, dict] = {}
    current: Dict[str, str] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            family, _, help_text = rest.partition(" ")
            assert help_text, f"line {number}: HELP without text"
            assert family not in families, (
                f"line {number}: family {family} declared twice"
            )
            families[family] = {"help": help_text, "type": "", "samples": []}
            current = families[family]
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            family, _, kind = rest.partition(" ")
            assert family in families, (
                f"line {number}: TYPE before HELP for {family}"
            )
            assert kind in {"counter", "gauge", "summary", "histogram"}, (
                f"line {number}: bad type {kind!r}"
            )
            families[family]["type"] = kind
            continue
        assert not line.startswith("#"), f"line {number}: stray comment"
        name, _, value_text = line.partition(" ")
        labels = ""
        if "{" in name:
            name, _, labels = name.partition("{")
            labels = "{" + labels
        family = name
        # Summary series samples (_count/_sum) belong to the base family.
        for suffix in ("_count", "_sum"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                family = name[: -len(suffix)]
        assert family in families, (
            f"line {number}: sample {name} outside any HELP/TYPE family"
        )
        assert families[family]["type"], (
            f"line {number}: sample {name} before its TYPE line"
        )
        families[family]["samples"].append(
            (name, labels, float(value_text))
        )
    return families


class TestPercentile:
    def test_empty_and_singleton(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.99) == 7.0

    def test_linear_interpolation(self):
        assert percentile([0.0, 10.0], 0.5) == 5.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0

    def test_service_shim_removed(self):
        # The repro.service.metrics re-export shim was removed in v2.0;
        # repro.obs.metrics is the only home.
        with pytest.raises(ImportError):
            from repro.service.metrics import percentile  # noqa: F401


class TestRegistry:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.inc("jobs_total")
        registry.inc("jobs_total", 2)
        registry.gauge("depth", lambda: 4.0)
        assert registry.counter("jobs_total") == 3
        snapshot = registry.to_dict()
        assert snapshot["counters"]["jobs_total"] == 3
        assert snapshot["gauges"]["depth"] == 4.0

    def test_latency_summary_quantiles(self):
        registry = MetricsRegistry()
        for ms in range(1, 101):
            registry.observe("exec", ms / 1000.0)
        summary = registry.latency_summary("exec")
        assert summary["count"] == 100
        assert summary["p50"] == pytest.approx(0.0505, abs=1e-6)
        assert summary["p99"] == pytest.approx(0.09901, abs=1e-5)

    def test_registry_importable_from_service_package(self):
        # The service package re-exposes the canonical registry class for
        # daemon embedders (the deep repro.service.metrics module is gone).
        from repro.service import MetricsRegistry as reexported

        assert reexported is MetricsRegistry


class TestPrometheusRendering:
    def test_every_metric_kind_is_annotated(self):
        registry = MetricsRegistry()
        registry.inc("jobs_total", help="jobs accepted")
        registry.gauge("queue_depth", lambda: 2.0, help="queued jobs")
        registry.observe("exec", 0.25, help="execution latency")
        registry.inc("undescribed_total")  # placeholder HELP path

        families = parse_exposition(registry.render_prometheus())
        assert families["repro_jobs_total"]["type"] == "counter"
        assert families["repro_jobs_total"]["help"] == "jobs accepted"
        assert families["repro_queue_depth"]["type"] == "gauge"
        assert families["repro_exec_seconds"]["type"] == "summary"
        assert families["repro_undescribed_total"]["help"]

        quantiles = [
            labels
            for name, labels, _ in families["repro_exec_seconds"]["samples"]
            if name == "repro_exec_seconds"
        ]
        assert quantiles == [
            '{quantile="0.5"}', '{quantile="0.95"}', '{quantile="0.99"}',
        ]

    def test_summary_emits_count_and_sum(self):
        registry = MetricsRegistry()
        registry.observe("exec", 1.0)
        registry.observe("exec", 3.0)
        families = parse_exposition(registry.render_prometheus())
        samples = {
            name: value
            for name, _, value in families["repro_exec_seconds"]["samples"]
        }
        assert samples["repro_exec_seconds_count"] == 2
        assert samples["repro_exec_seconds_sum"] == pytest.approx(4.0)


class TestLabeledSeries:
    def test_inc_and_set_and_read_back(self):
        registry = MetricsRegistry()
        registry.inc_labeled("worker_tasks", {"worker": "a"}, 2)
        registry.inc_labeled("worker_tasks", {"worker": "a"})
        registry.set_labeled(
            "worker_tasks", {"worker": "b"}, 7, kind="counter",
        )
        assert registry.labeled_value("worker_tasks", {"worker": "a"}) == 3
        assert registry.labeled_value("worker_tasks", {"worker": "b"}) == 7
        assert registry.labeled_value("worker_tasks", {"worker": "c"}) == 0.0

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.set_labeled("inflight", {"worker": "a"}, 1, kind="gauge")
        with pytest.raises(ValueError, match="is a gauge, not a counter"):
            registry.inc_labeled("inflight", {"worker": "a"})

    def test_remove_series_and_family(self):
        registry = MetricsRegistry()
        registry.set_labeled("inflight", {"worker": "a"}, 1, kind="gauge")
        registry.set_labeled("inflight", {"worker": "b"}, 2, kind="gauge")
        registry.remove_labeled("inflight", {"worker": "a"})
        assert registry.labeled_value("inflight", {"worker": "a"}) == 0.0
        assert registry.labeled_value("inflight", {"worker": "b"}) == 2
        registry.remove_labeled("inflight")
        assert registry.labeled_series("inflight") == {}

    def test_labeled_families_render_and_parse_strictly(self):
        registry = MetricsRegistry()
        registry.inc_labeled(
            "fleet_worker_tasks_done_total", {"worker": "alpha"}, 5,
            help="tasks per worker",
        )
        registry.inc_labeled(
            "fleet_worker_tasks_done_total", {"worker": "beta"}, 2,
        )
        registry.set_labeled(
            "fleet_worker_inflight", {"worker": "alpha"}, 1.0, kind="gauge",
        )
        families = parse_exposition(registry.render_prometheus())
        done = families["repro_fleet_worker_tasks_done_total"]
        assert done["type"] == "counter"
        assert done["help"] == "tasks per worker"
        assert sorted(
            (labels, value) for _, labels, value in done["samples"]
        ) == [('{worker="alpha"}', 5.0), ('{worker="beta"}', 2.0)]
        inflight = families["repro_fleet_worker_inflight"]
        assert inflight["type"] == "gauge"
        assert inflight["samples"] == [
            ("repro_fleet_worker_inflight", '{worker="alpha"}', 1.0),
        ]

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.set_labeled(
            "inflight", {"worker": 'we"ird\\name\n'}, 1, kind="gauge",
        )
        rendered = registry.render_prometheus()
        assert '{worker="we\\"ird\\\\name\\n"}' in rendered
        # The escaped line still parses under the strict grammar.
        parse_exposition(rendered)

    def test_to_dict_includes_labeled_section(self):
        registry = MetricsRegistry()
        registry.set_labeled(
            "inflight", {"worker": "a"}, 3, kind="gauge",
        )
        snapshot = registry.to_dict()
        assert snapshot["labeled"]["inflight"] == [
            {"labels": {"worker": "a"}, "value": 3.0},
        ]


class TestLiveScrape:
    """Scrape a real daemon: the whole stack's metrics parse strictly."""

    @pytest.fixture()
    def service(self, tmp_path):
        svc = ReproService(
            settings=SMALL, cache_dir=tmp_path / "cache", workers=1,
        ).start()
        yield svc
        svc.stop()

    def _get(self, url: str) -> str:
        with urllib.request.urlopen(url, timeout=30.0) as response:
            return response.read().decode("utf-8")

    def test_metrics_expose_engine_and_simulation_families(self, service):
        from repro.service import ServiceClient

        client = ServiceClient(service.url, timeout=30.0)
        receipt = client.submit_simulate("database")
        client.result(receipt["id"], timeout=60.0)

        families = parse_exposition(self._get(service.url + "/metrics"))
        for family in [
            "repro_jobs_submitted_total",     # service layer
            "repro_engine_jobs_ok_total",     # engine layer
            "repro_cache_memory_hits",        # artifact cache
            "repro_sim_epochs_total",         # simulation layer
            "repro_sim_sb_occupancy_hwm",
        ]:
            assert family in families, f"missing {family}"
        (sample,) = families["repro_sim_epochs_total"]["samples"]
        assert sample[2] > 0

        snapshot = json.loads(
            self._get(service.url + "/metrics?format=json")
        )
        assert snapshot["counters"]["jobs_submitted_total"] == 1
        assert snapshot["gauges"]["engine_jobs_ok_total"] == 1
        assert snapshot["gauges"]["sim_epochs_total"] > 0
