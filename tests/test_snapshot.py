"""Snapshot/restore of a running simulation (repro.core.snapshot).

The contract under test is exact: resuming from any checkpoint a run
emitted reproduces the straight-through result bit-for-bit, and the
checkpoint positions themselves are a deterministic function of the
interval alone (so a resumed run re-emits the same remaining marks).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import MlpSimulator
from repro.core.snapshot import (
    SNAPSHOT_VERSION,
    capture_snapshot,
    is_quiescent,
    restore_simulation,
)
from repro.engine import serialize
from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench

SMALL = ExperimentSettings(warmup=1500, measure=4000, seed=11,
                           calibrate=False)


@pytest.fixture(scope="module")
def bench():
    return Workbench(SMALL)


@pytest.fixture(scope="module")
def trace(bench):
    return bench.annotated("database", "pc")


@pytest.fixture(scope="module")
def config(bench):
    return bench.resolved_config("database", "pc")


@pytest.fixture(scope="module")
def golden(config, trace):
    return MlpSimulator(config).run(trace)


def _stagnation_limit(core):
    # mirrors MlpSimulator.run's derivation
    return core.store_queue + core.store_buffer + 8


def _checkpoints(config, trace, every):
    snapshots = []
    result = MlpSimulator(config).run(
        trace, checkpoint_every=every, checkpoint_sink=snapshots.append,
    )
    return result, snapshots


class TestCheckpointCapture:
    def test_sink_does_not_perturb_the_run(self, config, trace, golden):
        result, snapshots = _checkpoints(config, trace, 1000)
        assert result == golden
        assert snapshots

    def test_marks_are_deterministic(self, config, trace):
        _, first = _checkpoints(config, trace, 1000)
        _, second = _checkpoints(config, trace, 1000)
        assert [s.pos for s in first] == [s.pos for s in second]
        # one checkpoint at the first boundary at or past each mark
        for snapshot, mark in zip(first, range(1000, len(trace), 1000)):
            assert snapshot.pos >= mark

    def test_snapshot_identifies_its_run(self, config, trace):
        _, snapshots = _checkpoints(config, trace, 1000)
        for snapshot in snapshots:
            assert snapshot.version == SNAPSHOT_VERSION
            assert snapshot.instructions == len(trace)

    def test_interval_longer_than_trace_emits_nothing(self, config, trace):
        _, snapshots = _checkpoints(config, trace, len(trace) + 1)
        assert snapshots == []


class TestResume:
    @pytest.mark.parametrize("pick", [0, "mid", -1])
    def test_resume_matches_straight_through(
        self, config, trace, golden, pick,
    ):
        _, snapshots = _checkpoints(config, trace, 1000)
        index = len(snapshots) // 2 if pick == "mid" else pick
        resumed = MlpSimulator(config).run(trace, resume=snapshots[index])
        assert resumed == golden

    def test_resumed_run_reemits_remaining_marks(self, config, trace):
        _, snapshots = _checkpoints(config, trace, 1000)
        start = snapshots[0]
        remainder = []
        MlpSimulator(config).run(
            trace, resume=start,
            checkpoint_every=1000, checkpoint_sink=remainder.append,
        )
        assert [s.pos for s in remainder] == \
            [s.pos for s in snapshots[1:]]

    def test_restore_capture_roundtrip(self, config, trace):
        _, snapshots = _checkpoints(config, trace, 1000)
        snapshot = snapshots[len(snapshots) // 2]
        state, accountant = restore_simulation(
            snapshot, config.core, _stagnation_limit(config.core),
        )
        again = capture_snapshot(
            state, accountant, snapshot.instructions, snapshot.config_key,
        )
        assert again == snapshot

    def test_serialize_roundtrip(self, config, trace):
        _, snapshots = _checkpoints(config, trace, 2000)
        snapshot = snapshots[0]
        decoded = serialize.from_jsonable(serialize.to_jsonable(snapshot))
        assert decoded == snapshot


class TestQuiescence:
    def test_probe_finds_quiescent_boundaries(self, config, trace, golden):
        log = []
        result = MlpSimulator(config).run(trace, quiescent_log=log)
        assert result == golden  # probing does not perturb either
        assert log, "a multi-thousand-instruction run passes quiescence"
        positions = [pos for pos, _ in log]
        assert positions == sorted(positions)
        assert all(0 < pos < len(trace) for pos, _ in log)

    def test_quiescent_state_carries_nothing_forward(self, config, trace):
        # replay a checkpoint and verify the predicate agrees with a direct
        # inspection of the restored machine state
        _, snapshots = _checkpoints(config, trace, 1000)
        log = []
        MlpSimulator(config).run(trace, quiescent_log=log)
        quiescent_positions = {pos for pos, _ in log}
        for snapshot in snapshots:
            state, _ = restore_simulation(
                snapshot, config.core, _stagnation_limit(config.core),
            )
            if snapshot.pos in quiescent_positions:
                assert is_quiescent(state)
                assert not snapshot.sb and not snapshot.sq

    def test_nonquiescent_when_stores_in_flight(self, config, trace):
        _, snapshots = _checkpoints(config, trace, 1000)
        busy = [s for s in snapshots if s.sb or s.sq]
        for snapshot in busy:
            state, _ = restore_simulation(
                snapshot, config.core, _stagnation_limit(config.core),
            )
            assert not is_quiescent(state)


class TestSnapshotImmutability:
    def test_snapshot_is_frozen(self, config, trace):
        _, snapshots = _checkpoints(config, trace, 2000)
        with pytest.raises(dataclasses.FrozenInstanceError):
            snapshots[0].pos = 0
