"""EPI -> CPI translation (paper Section 3.4)."""

from __future__ import annotations

import pytest

from repro.core.cpi import (
    CpiModel,
    PAPER_CPI_ON_CHIP,
    off_chip_cpi,
    overall_cpi,
)
from repro.errors import ConfigError


class TestFunctions:
    def test_off_chip_cpi_is_linear_in_epi(self):
        """5 epochs per 1000 instructions at 500 cycles -> 2.5 CPI, the
        paper's own worked conversion."""
        assert off_chip_cpi(5 / 1000, 500) == pytest.approx(2.5)

    def test_overall_cpi_composition(self):
        assert overall_cpi(1.0, 0.002, 500, overlap=0.0) == pytest.approx(2.0)

    def test_overlap_discounts_on_chip_time(self):
        assert overall_cpi(1.0, 0.0, 500, overlap=0.25) == pytest.approx(0.75)

    @pytest.mark.parametrize("kwargs", [
        dict(epi=-0.1, miss_penalty=500),
        dict(epi=0.1, miss_penalty=0),
    ])
    def test_off_chip_validation(self, kwargs):
        with pytest.raises(ConfigError):
            off_chip_cpi(**kwargs)

    def test_overall_validation(self):
        with pytest.raises(ConfigError):
            overall_cpi(1.0, 0.1, 500, overlap=1.5)
        with pytest.raises(ConfigError):
            overall_cpi(0.0, 0.1, 500)


class TestCpiModel:
    def test_bound_model(self):
        model = CpiModel(cpi_on_chip=1.11, miss_penalty=500)
        assert model.off_chip(0.002) == pytest.approx(1.0)
        assert model.overall(0.002) == pytest.approx(2.11)
        assert model.off_chip_share(0.002) == pytest.approx(1.0 / 2.11)

    def test_paper_table3_constants(self):
        assert PAPER_CPI_ON_CHIP["database"] == 1.11
        assert PAPER_CPI_ON_CHIP["specjbb"] == 0.95
        assert set(PAPER_CPI_ON_CHIP) == {
            "database", "tpcw", "specjbb", "specweb",
        }

    def test_model_validation(self):
        with pytest.raises(ConfigError):
            CpiModel(cpi_on_chip=0, miss_penalty=500)
        with pytest.raises(ConfigError):
            CpiModel(cpi_on_chip=1, miss_penalty=500, overlap=2.0)

    def test_zero_epi_share(self):
        model = CpiModel(cpi_on_chip=1.0, miss_penalty=500)
        assert model.off_chip_share(0.0) == 0.0
