"""The Store Miss Accelerator: ownership retention, capacity, snoops."""

from __future__ import annotations

import pytest

from repro.config import SmacConfig
from repro.memory import StoreMissAccelerator


@pytest.fixture
def smac():
    """Small SMAC: 16 entries, 2-way, 2048B regions, 64B sub-blocks."""
    return StoreMissAccelerator(SmacConfig(entries=16, associativity=2))


REGION = 2048


class TestOwnershipLifecycle:
    def test_cold_probe_misses(self, smac):
        probe = smac.probe_store(0x10000)
        assert not probe.hit and not probe.invalidated_hit

    def test_evicted_modified_line_is_retained(self, smac):
        smac.on_modified_evict(0x10000)
        assert smac.probe_store(0x10000).hit

    def test_hit_consumes_ownership(self, smac):
        """The line moves back into the L2 in M state, so the SMAC's E bit
        is cleared; state is never held in two places."""
        smac.on_modified_evict(0x10000)
        assert smac.probe_store(0x10000).hit
        assert not smac.probe_store(0x10000).hit

    def test_sub_block_granularity(self, smac):
        smac.on_modified_evict(0x10000)
        # Different 64B sub-block of the same 2KB region: not owned.
        assert not smac.probe_store(0x10000 + 64).hit
        # Same sub-block, different byte: owned.
        smac.on_modified_evict(0x10000)
        assert smac.probe_store(0x10000 + 8).hit

    def test_multiple_sub_blocks_accumulate(self, smac):
        base = 0x20000
        for i in range(4):
            smac.on_modified_evict(base + 64 * i)
        for i in range(4):
            assert smac.probe_store(base + 64 * i).hit


class TestSnoops:
    def test_snoop_steals_ownership(self, smac):
        smac.on_modified_evict(0x10000)
        assert smac.snoop(0x10000)
        assert not smac.probe_store(0x10000).hit

    def test_snoop_miss_reports_false(self, smac):
        assert not smac.snoop(0x999000)

    def test_snoop_of_unowned_sub_block_reports_false(self, smac):
        smac.on_modified_evict(0x10000)
        assert not smac.snoop(0x10000 + 64)

    def test_invalidated_hit_tracked_for_figure6(self, smac):
        """A store that would have been accelerated but for a remote snoop
        is counted as an invalidated hit (Figure 6, right graph)."""
        smac.on_modified_evict(0x10000)
        smac.snoop(0x10000)
        probe = smac.probe_store(0x10000)
        assert not probe.hit
        assert probe.invalidated_hit
        assert smac.stats.invalidated_hits == 1

    def test_reinsert_clears_tombstone(self, smac):
        smac.on_modified_evict(0x10000)
        smac.snoop(0x10000)
        smac.on_modified_evict(0x10000)
        probe = smac.probe_store(0x10000)
        assert probe.hit and not probe.invalidated_hit


class TestCapacity:
    def test_set_overflow_evicts_lru_entry(self, smac):
        # 16 entries 2-way -> 8 sets; regions spaced by 8*2048 collide.
        stride = 8 * REGION
        base = 0x100000
        smac.on_modified_evict(base)
        smac.on_modified_evict(base + stride)
        smac.on_modified_evict(base + 2 * stride)  # evicts the first
        assert smac.stats.entry_evictions == 1
        assert not smac.probe_store(base).hit
        assert smac.probe_store(base + 2 * stride).hit

    def test_touch_order_protects_recent_entries(self, smac):
        stride = 8 * REGION
        base = 0x100000
        smac.on_modified_evict(base)
        smac.on_modified_evict(base + stride)
        smac.on_modified_evict(base)            # refresh first entry
        smac.on_modified_evict(base + 2 * stride)
        assert smac.probe_store(base).hit       # survived
        assert not smac.probe_store(base + stride).hit

    def test_owned_sub_blocks_accounting(self, smac):
        smac.on_modified_evict(0x10000)
        smac.on_modified_evict(0x10000 + 64)
        smac.on_modified_evict(0x30000)
        assert smac.owned_sub_blocks() == 3


class TestStats:
    def test_hit_ratio(self, smac):
        smac.on_modified_evict(0x10000)
        smac.probe_store(0x10000)
        smac.probe_store(0x50000)
        assert smac.stats.hit_ratio == pytest.approx(0.5)

    def test_reset(self, smac):
        smac.on_modified_evict(0x10000)
        smac.probe_store(0x10000)
        smac.stats.reset()
        assert smac.stats.probes == 0
        assert smac.stats.hits == 0
