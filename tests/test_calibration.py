"""Profile calibration against Table 1 through the real cache simulation."""

from __future__ import annotations

import pytest

from repro.errors import CalibrationError
from repro.workloads import (
    DATABASE,
    TPCW,
    calibrate_profile,
    measure_profile,
)
from repro.workloads.calibration import MeasuredRates, _within


class TestMeasure:
    def test_measures_plausible_rates(self):
        rates = measure_profile(DATABASE, instructions=60_000, warmup=20_000)
        assert 8 < rates.store_frequency < 13
        assert 0 < rates.store_miss_per_100 < 2
        assert 0 < rates.load_miss_per_100 < 2

    def test_rejects_degenerate_window(self):
        with pytest.raises(CalibrationError):
            measure_profile(DATABASE, instructions=100, warmup=100)


class TestCalibrate:
    @pytest.mark.slow
    def test_database_converges(self):
        calibrated = calibrate_profile(
            DATABASE, instructions=120_000, warmup=40_000, tolerance=0.25
        )
        rates = measure_profile(calibrated, instructions=120_000, warmup=40_000)
        assert rates.store_miss_per_100 == pytest.approx(
            DATABASE.store_miss_per_100, rel=0.25
        )
        assert rates.load_miss_per_100 == pytest.approx(
            DATABASE.load_miss_per_100, rel=0.25
        )

    def test_tolerance_check_skips_tiny_targets(self):
        profile = TPCW.with_(inst_miss_per_100=0.001)
        measured = MeasuredRates(
            store_frequency=7.0,
            store_miss_per_100=profile.store_miss_per_100,
            load_miss_per_100=profile.load_miss_per_100,
            inst_miss_per_100=0.01,  # 10x off but below measurement floor
        )
        assert _within(profile, measured, tolerance=0.2, window=80_000)

    def test_impossible_target_raises(self):
        # A target far beyond what the generator's structure can produce
        # within the clamped steering range must fail loudly.
        profile = DATABASE.with_(load_miss_per_100=60.0)
        with pytest.raises(CalibrationError):
            calibrate_profile(
                profile, instructions=30_000, warmup=10_000, iterations=2,
            )
