"""Instruction-class semantics and the Instruction record."""

from __future__ import annotations

import pytest

from repro.config import ConsistencyModel
from repro.isa import (
    Instruction,
    InstructionClass,
    NUM_REGISTERS,
    RegisterAllocator,
    is_load_like,
    is_memory_access,
    is_serializing,
    is_store_like,
)
from repro.isa.opcodes import drains_store_queue, is_control
from repro.isa.registers import REG_ZERO


class TestClassification:
    @pytest.mark.parametrize("kind", [
        InstructionClass.LOAD, InstructionClass.CAS,
        InstructionClass.LOAD_LOCKED,
    ])
    def test_load_like(self, kind):
        assert is_load_like(kind)

    @pytest.mark.parametrize("kind", [
        InstructionClass.STORE, InstructionClass.CAS,
        InstructionClass.STORE_COND,
    ])
    def test_store_like(self, kind):
        assert is_store_like(kind)

    def test_cas_is_both_load_and_store(self):
        assert is_load_like(InstructionClass.CAS)
        assert is_store_like(InstructionClass.CAS)

    @pytest.mark.parametrize("kind", [
        InstructionClass.ALU, InstructionClass.BRANCH,
        InstructionClass.MEMBAR, InstructionClass.ISYNC,
    ])
    def test_non_memory(self, kind):
        assert not is_memory_access(kind)

    @pytest.mark.parametrize("kind", [
        InstructionClass.BRANCH, InstructionClass.CALL,
        InstructionClass.RETURN,
    ])
    def test_control(self, kind):
        assert is_control(kind)


class TestSerialization:
    def test_casa_serializes_under_pc_only(self):
        assert is_serializing(InstructionClass.CAS, ConsistencyModel.PC)
        assert not is_serializing(InstructionClass.CAS, ConsistencyModel.WC)

    def test_membar_serializes_under_pc(self):
        assert is_serializing(InstructionClass.MEMBAR, ConsistencyModel.PC)

    def test_isync_serializes_under_wc_only(self):
        assert is_serializing(InstructionClass.ISYNC, ConsistencyModel.WC)
        assert not is_serializing(InstructionClass.ISYNC, ConsistencyModel.PC)

    def test_lwsync_never_serializes_execution(self):
        for model in ConsistencyModel:
            assert not is_serializing(InstructionClass.LWSYNC, model)

    def test_only_pc_barriers_drain_the_store_queue(self):
        """The paper's central asymmetry: casa/membar drain under PC; no
        WC barrier in the lock idiom drains the store queue."""
        assert drains_store_queue(InstructionClass.CAS, ConsistencyModel.PC)
        assert drains_store_queue(InstructionClass.MEMBAR, ConsistencyModel.PC)
        for kind in InstructionClass:
            assert not drains_store_queue(kind, ConsistencyModel.WC)


class TestInstruction:
    def test_reads_filters_zero_register(self):
        inst = Instruction(
            InstructionClass.ALU, pc=0, srcs=(REG_ZERO, 5, -1, 7)
        )
        assert inst.reads() == (5, 7)

    def test_line_address(self):
        inst = Instruction(InstructionClass.LOAD, pc=0, address=0x12345)
        assert inst.line_address(64) == 0x12340

    def test_memory_properties(self):
        store = Instruction(InstructionClass.STORE, pc=0, address=8)
        assert store.is_store and not store.is_load and store.is_memory

    def test_str_is_informative(self):
        inst = Instruction(
            InstructionClass.CAS, pc=0x40, address=0x80,
            size=8, dest=3, lock_acquire=True,
        )
        text = str(inst)
        assert "cas" in text and "(acq)" in text


class TestRegisterAllocator:
    def test_never_allocates_zero_or_reserved(self):
        allocator = RegisterAllocator(reserve=4)
        seen = {allocator.fresh() for _ in range(500)}
        assert REG_ZERO not in seen
        assert not (seen & set(allocator.reserved))

    def test_rotation_covers_scratch_space(self):
        allocator = RegisterAllocator(reserve=4)
        seen = {allocator.fresh() for _ in range(NUM_REGISTERS * 2)}
        assert len(seen) == NUM_REGISTERS - 1 - 4

    def test_rejects_reserving_everything(self):
        with pytest.raises(ValueError):
            RegisterAllocator(reserve=NUM_REGISTERS)
