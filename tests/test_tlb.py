"""TLB behaviour: LRU replacement over pages."""

from __future__ import annotations

import pytest

from repro.memory import Tlb

PAGE = 8192


@pytest.fixture
def tlb():
    return Tlb(entries=4, page_bytes=PAGE)


class TestTlb:
    def test_first_access_misses(self, tlb):
        assert not tlb.access(0x0)
        assert tlb.stats.misses == 1

    def test_same_page_hits(self, tlb):
        tlb.access(0x0)
        assert tlb.access(PAGE - 8)
        assert tlb.stats.hits == 1

    def test_capacity_eviction_is_lru(self, tlb):
        for i in range(4):
            tlb.access(i * PAGE)
        tlb.access(0)               # page 0 now MRU
        tlb.access(4 * PAGE)        # evicts page 1
        assert tlb.access(0)        # still resident
        assert not tlb.access(PAGE)  # evicted

    def test_occupancy_capped(self, tlb):
        for i in range(10):
            tlb.access(i * PAGE)
        assert tlb.occupancy() == 4

    def test_miss_ratio(self, tlb):
        tlb.access(0)
        tlb.access(0)
        assert tlb.stats.miss_ratio == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            Tlb(entries=0, page_bytes=PAGE)
        with pytest.raises(ValueError):
            Tlb(entries=4, page_bytes=1000)

    def test_reset(self, tlb):
        tlb.access(0)
        tlb.stats.reset()
        assert tlb.stats.accesses == 0
