"""Pluggable execution backends: registry, gating, and bit-identity.

The contract under test is the strongest one the subsystem makes: every
backend returns a :class:`~repro.core.results.SimulationResult` that is
field-for-field equal to the reference tick loop — on curated workload
variants, on seeded random configurations over seeded random traces, and
under sharding and checkpoint/resume.  The ``batch`` backend additionally
needs numpy (the ``fast`` extra); its tests skip, not fail, without it.
"""

from __future__ import annotations

import random
import sys

import pytest

from conftest import annotated
from repro import api
from repro.config import (
    ConsistencyModel,
    CoreConfig,
    ScoutMode,
    SimulationConfig,
    StorePrefetchMode,
)
from repro.core import MlpSimulator
from repro.core.backend import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    Backend,
    backend_names,
    resolve_backend,
)
from repro.core.backends.batch import (
    BatchLane,
    LockstepBatch,
    build_skip_tables_np,
    numpy_available,
    require_numpy,
)
from repro.core.backends.events import build_skip_tables
from repro.errors import BackendUnavailableError, UnknownBackendError
from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench
from repro.harness.figures import smac_memory_config
from repro.isa import InstructionClass as IC

needs_numpy = pytest.mark.skipif(
    not numpy_available(),
    reason="numpy not installed (pip install 'repro[fast]')",
)

TINY = ExperimentSettings(warmup=1000, measure=3000, seed=7,
                          calibrate=False)

#: Seeded so the sampled configurations and traces are stable run to run;
#: widen coverage by bumping the COUNTs, not by unseeding.
SEED = 20250807
CONFIG_COUNT = 6
TRACE_COUNT = 4


def _alternative_backends():
    names = ["event"]
    if numpy_available():
        names.append("batch")
    return names


@pytest.fixture(autouse=True)
def _clear_backend_env(monkeypatch):
    # The CI backend matrix runs the whole tier-1 subset under
    # REPRO_BACKEND; this suite drives selection explicitly, so ambient
    # values must not leak into its registry assertions.
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)


@pytest.fixture(scope="module")
def bench():
    return Workbench(TINY)


# ---------------------------------------------------------------- registry --


class TestRegistry:
    def test_default_is_reference(self):
        assert DEFAULT_BACKEND == "reference"
        assert resolve_backend().name == "reference"
        assert resolve_backend(None).name == "reference"

    def test_builtins_registered(self):
        assert backend_names() == ("batch", "event", "reference")
        for name in backend_names():
            backend = resolve_backend(name)
            assert isinstance(backend, Backend)
            assert backend.name == name

    def test_unknown_backend_is_structured(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            resolve_backend("evnet")
        assert excinfo.value.code == "backend-unknown"
        # The message must name the valid choices — it surfaces verbatim
        # in CLI and service error paths.
        for name in backend_names():
            assert name in str(excinfo.value)

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "event")
        assert resolve_backend().name == "event"
        # An explicit name always beats the environment.
        assert resolve_backend("reference").name == "reference"

    def test_env_var_unknown_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "bogus")
        with pytest.raises(UnknownBackendError):
            resolve_backend()


# ------------------------------------------------------------ numpy gating --


class TestNumpyGating:
    def test_available_path(self):
        if not numpy_available():
            pytest.skip("numpy not installed")
        assert require_numpy().__name__ == "numpy"

    def test_unavailable_is_structured(self, monkeypatch):
        # Hiding numpy behind a None module entry makes ``import numpy``
        # raise ImportError without uninstalling anything.
        monkeypatch.setitem(sys.modules, "numpy", None)
        assert not numpy_available()
        with pytest.raises(BackendUnavailableError) as excinfo:
            require_numpy()
        assert excinfo.value.code == "backend-unavailable"
        assert "repro[fast]" in str(excinfo.value)

    def test_batch_registers_without_numpy(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numpy", None)
        assert "batch" in backend_names()
        backend = resolve_backend("batch")
        trace = [annotated(IC.ALU), annotated(IC.STORE, miss=True)]
        with pytest.raises(BackendUnavailableError):
            backend.prepare(SimulationConfig(), trace)


# ----------------------------------------------------------- table builders --


@needs_numpy
class TestTableParity:
    def test_numpy_tables_match_reference_builder(self):
        rng = random.Random(SEED)
        trace = _random_trace(rng, 400)
        plain = build_skip_tables(trace)
        vectorized = build_skip_tables_np(trace)
        assert vectorized.n == plain.n
        assert vectorized.next_plain == plain.next_plain
        assert vectorized.next_barrier == plain.next_barrier
        assert vectorized.store_prefix == plain.store_prefix


# ----------------------------------------------- workload-level differential --


def _config_samples():
    rng = random.Random(SEED)
    samples = []
    for _ in range(CONFIG_COUNT):
        samples.append({
            "variant": rng.choice(["pc", "wc"]),
            "smac_entries": rng.choice([None, 512]),
            "store_prefetch": rng.choice(list(StorePrefetchMode)),
            "scout": rng.choice(list(ScoutMode)),
            "sle": rng.choice([True, False]),
            "store_queue": rng.choice([16, 32, 64]),
            "coalesce_bytes": rng.choice([0, 8, 64]),
        })
    return samples


@pytest.mark.parametrize(
    "sample", _config_samples(),
    ids=lambda s: "-".join(
        [s["variant"], f"smac{s['smac_entries'] or 0}",
         s["store_prefetch"].value, s["scout"].value,
         f"sle{int(s['sle'])}", f"sq{s['store_queue']}",
         f"co{s['coalesce_bytes']}"]
    ),
)
def test_backends_bit_identical_on_workloads(bench, sample):
    memory = (
        smac_memory_config(sample["smac_entries"])
        if sample["smac_entries"] is not None else None
    )
    trace = bench.annotated("database", sample["variant"], memory)
    config = bench.resolved_config(
        "database", sample["variant"],
        store_prefetch=sample["store_prefetch"],
        scout=sample["scout"],
        sle=sample["sle"],
        store_queue=sample["store_queue"],
        coalesce_bytes=sample["coalesce_bytes"],
    )
    golden = MlpSimulator(config).run(trace)
    assert resolve_backend("reference").simulate(config, trace) == golden
    for name in _alternative_backends():
        assert resolve_backend(name).simulate(config, trace) == golden, (
            f"backend {name!r} diverged from reference"
        )


# ------------------------------------------------ random-trace differential --

_KINDS = (
    [IC.ALU] * 6 + [IC.NOP] + [IC.LOAD] * 4 + [IC.STORE] * 4
    + [IC.BRANCH] * 2 + [IC.CALL, IC.RETURN]
    + [IC.CAS, IC.MEMBAR, IC.LOAD_LOCKED, IC.STORE_COND,
       IC.ISYNC, IC.LWSYNC, IC.PREFETCH]
)


def _random_trace(rng: random.Random, length: int):
    trace = []
    for index in range(length):
        kind = rng.choice(_KINDS)
        memory_op = kind in (IC.LOAD, IC.STORE, IC.CAS, IC.LOAD_LOCKED,
                             IC.STORE_COND, IC.PREFETCH)
        smac = memory_op and rng.random() < 0.05
        trace.append(annotated(
            kind,
            miss=memory_op and rng.random() < 0.15,
            imiss=rng.random() < 0.03,
            smac=smac,
            mispred=kind in (IC.BRANCH, IC.CALL, IC.RETURN)
            and rng.random() < 0.2,
            pc=0x1000 + 4 * index,
            address=rng.randrange(64) * 64 if memory_op else 0,
            dest=rng.randrange(32) if rng.random() < 0.5 else -1,
            srcs=tuple(rng.sample(range(32), rng.randrange(3))),
            lock_release=kind is IC.STORE and rng.random() < 0.05,
        ))
    return trace


def _random_config(rng: random.Random) -> SimulationConfig:
    return SimulationConfig(core=CoreConfig(
        store_buffer=rng.choice([1, 2, 8, 32]),
        store_queue=rng.choice([1, 2, 8, 32]),
        coalesce_bytes=rng.choice([0, 8, 64]),
        store_prefetch=rng.choice(list(StorePrefetchMode)),
        consistency=rng.choice(list(ConsistencyModel)),
        scout=rng.choice(list(ScoutMode)),
        sle=rng.choice([True, False]),
        prefetch_past_serializing=rng.choice([True, False]),
        perfect_stores=rng.random() < 0.1,
    ))


@pytest.mark.parametrize("trial", range(TRACE_COUNT))
def test_backends_bit_identical_on_random_traces(trial):
    rng = random.Random(SEED + trial)
    trace = _random_trace(rng, 600)
    config = _random_config(rng)
    golden = MlpSimulator(config).run(trace)
    for name in _alternative_backends():
        assert resolve_backend(name).simulate(config, trace) == golden, (
            f"backend {name!r} diverged on trial {trial} "
            f"(config {config.core})"
        )


# --------------------------------------- sharding and checkpoint/resume --


class TestShardedAndCheckpointed:
    @pytest.mark.parametrize("name", _alternative_backends())
    def test_sharded_run_matches_unsharded_reference(self, name):
        golden = api.run("database", settings=TINY, cache_dir=None)
        sharded = api.run(
            "database", settings=TINY, cache_dir=None,
            shards=3, workers=1, backend=name,
        )
        assert sharded == golden

    @pytest.mark.parametrize("name", _alternative_backends())
    def test_checkpoint_resume_matches_reference(self, bench, name):
        trace = bench.annotated("database", "pc")
        config = bench.resolved_config("database", "pc")
        golden = MlpSimulator(config).run(trace)
        backend = resolve_backend(name)

        snapshots = []
        checkpointed = backend.simulate(
            config, trace,
            checkpoint_every=700, checkpoint_sink=snapshots.append,
        )
        assert checkpointed == golden, "the sink must not perturb the run"
        assert snapshots, "a 4000-instruction run crosses several 700-marks"
        for snapshot in (snapshots[0], snapshots[-1]):
            assert backend.simulate(config, trace,
                                    resume=snapshot) == golden


# ------------------------------------------------------- engine and facade --


class TestEndToEnd:
    def test_api_run_backend_equality(self):
        golden = api.run("database", settings=TINY, cache_dir=None,
                         backend="reference")
        for name in _alternative_backends():
            assert api.run("database", settings=TINY, cache_dir=None,
                           backend=name) == golden

    def test_api_run_unknown_backend(self):
        with pytest.raises(UnknownBackendError):
            api.run("database", settings=TINY, cache_dir=None,
                    backend="evnet")

    def test_env_var_reaches_workbench(self, bench, monkeypatch):
        golden = bench.run("database")
        monkeypatch.setenv(BACKEND_ENV_VAR, "event")
        assert bench.run("database") == golden

    def test_sweep_backend_equality(self):
        spec = api.SweepSpec.build(
            "database", store_queue=[16, 32],
            store_prefetch=["sp0", "sp2"],
        )
        golden = api.sweep(spec, settings=TINY, cache_dir=None, workers=1)
        for name in _alternative_backends():
            records = api.sweep(spec, settings=TINY, cache_dir=None,
                                workers=1, backend=name)
            assert records == golden, f"sweep via {name!r} diverged"


@needs_numpy
class TestLockstepBatch:
    def test_lanes_match_serial_results(self, bench):
        trace = bench.annotated("database", "pc")
        configs = [
            bench.resolved_config("database", "pc", store_queue=queue)
            for queue in (16, 32, 64)
        ]
        lanes = [BatchLane(config=config, trace=trace, tag=index)
                 for index, config in enumerate(configs)]
        outcomes = LockstepBatch(lanes).run()
        assert [outcome.tag for outcome in outcomes] == [0, 1, 2]
        for config, outcome in zip(configs, outcomes):
            assert outcome.ok, outcome.error
            assert outcome.result == MlpSimulator(config).run(trace)

    def test_failed_lane_does_not_poison_siblings(self, bench):
        trace = bench.annotated("database", "pc")
        config = bench.resolved_config("database", "pc")
        lanes = [
            BatchLane(config=config, trace=trace, tag="ok"),
            # A nonsense resume snapshot fails this lane at construction.
            BatchLane(config=config, trace=trace, tag="bad",
                      kwargs={"resume": object()}),
        ]
        outcomes = LockstepBatch(lanes).run()
        by_tag = {outcome.tag: outcome for outcome in outcomes}
        assert not by_tag["bad"].ok
        assert by_tag["bad"].error is not None
        assert by_tag["ok"].ok
        assert by_tag["ok"].result == MlpSimulator(config).run(trace)


# ------------------------------------------------------------ wire protocol --


class TestServiceProtocol:
    def test_backend_field_round_trips(self):
        from repro.service.protocol import parse_job_request

        request = parse_job_request({
            "kind": "simulate", "backend": "event",
            "job": {"workload": "database"},
        })
        assert request.backend == "event"
        bare = parse_job_request({
            "kind": "simulate", "job": {"workload": "database"},
        })
        assert bare.backend == ""
        # The backend participates in the dedup signature: the same job on
        # two backends must not be coalesced.
        assert request.signature() != bare.signature()

    def test_unknown_backend_is_a_400(self):
        from repro.service.protocol import ProtocolError, parse_job_request

        with pytest.raises(ProtocolError) as excinfo:
            parse_job_request({
                "kind": "simulate", "backend": "evnet",
                "job": {"workload": "database"},
            })
        assert excinfo.value.status == 400
        for name in backend_names():
            assert name in str(excinfo.value)

    def test_backend_rejected_on_figure_jobs(self):
        from repro.service.protocol import ProtocolError, parse_job_request

        with pytest.raises(ProtocolError) as excinfo:
            parse_job_request({
                "kind": "figure", "figure": "figure2", "backend": "event",
            })
        assert excinfo.value.status == 400
