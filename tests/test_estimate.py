"""The analytical EPI estimate (``repro.estimate``): accuracy and speed.

The estimate verb's contract, pinned here:

- at the anchor point (default config, golden-fixture settings) the
  calibrated prediction reproduces measured EPI essentially exactly —
  the calibration scales were fitted there;
- single-knob excursions on the committed fixtures stay within the
  documented :data:`~repro.estimate.VALIDATION_MARGIN` of measurement;
- a call costs well under a millisecond — no trace read, no simulation;
- the spec surface matches ``JobSpec.coerce`` (names, mappings, keyword
  knobs) and multi-context specs average their mix components;
- the one model is the one the fleet's cost router and the tuner's
  pruner import — it cannot fork.
"""

from __future__ import annotations

import time

import pytest

from repro import api
from repro.engine import serialize
from repro.engine.runner import JobSpec
from repro.estimate import (
    VALIDATION_MARGIN,
    EpiEstimate,
    epochs_per_inst,
    estimate,
    predicted_epi_per_1000,
)
from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench
from repro.workloads import WORKLOADS

GOLDEN_SETTINGS = ExperimentSettings(
    warmup=3000, measure=9000, seed=13, calibrate=False,
)


@pytest.fixture(scope="module")
def bench() -> Workbench:
    return Workbench(GOLDEN_SETTINGS, cache_dir=None)


class TestAnchorAccuracy:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_calibrated_estimate_reproduces_measured_epi(
        self, bench, workload,
    ):
        measured = bench.run(workload).epi_per_1000
        guess = estimate(workload)
        assert guess.predicted_epi_per_1000 == pytest.approx(
            measured, rel=1e-6,
        )

    @pytest.mark.parametrize("knobs", [
        {"scout": "hws2"},
        {"store_prefetch": "sp0"},
        {"store_buffer": 4},
    ])
    def test_single_knob_excursions_stay_within_margin(self, bench, knobs):
        measured = bench.run("database", **knobs).epi_per_1000
        guess = estimate("database", **knobs)
        assert guess.predicted_epi_per_1000 == pytest.approx(
            measured, rel=VALIDATION_MARGIN,
        )

    def test_wc_variant_stays_within_margin(self, bench):
        measured = bench.run("database", variant="wc").epi_per_1000
        guess = estimate("database", variant="wc")
        assert guess.predicted_epi_per_1000 == pytest.approx(
            measured, rel=VALIDATION_MARGIN,
        )


class TestSpeed:
    def test_sub_millisecond_per_call(self):
        estimate("database", scout="hws2")  # warm the imports
        start = time.perf_counter()
        calls = 200
        for _ in range(calls):
            estimate("database", scout="hws2")
        mean = (time.perf_counter() - start) / calls
        assert mean < 1e-3, f"estimate took {mean * 1e3:.3f} ms/call"


class TestSpecSurface:
    def test_name_mapping_and_jobspec_agree(self):
        by_name = estimate("database", scout="hws2")
        by_mapping = estimate({
            "workload": "database", "core_changes": {"scout": "hws2"},
        })
        by_spec = estimate(JobSpec.coerce(
            {"workload": "database", "core_changes": {"scout": "hws2"}},
        ))
        assert by_name == by_mapping == by_spec

    def test_keyword_knobs_split_from_job_fields(self):
        guess = estimate(
            workload="database", variant="pc", scout="hws2",
            store_queue=64,
        )
        spelled = {
            name: getattr(value, "value", value)
            for name, value in guess.knobs
        }
        assert spelled == {"scout": "hws2", "store_queue": 64}
        assert guess.variant == "pc"

    def test_spec_plus_kwargs_is_an_error(self):
        with pytest.raises(ValueError, match="not both"):
            estimate({"workload": "database"}, scout="hws2")

    def test_unknown_workload_lists_valid_names(self):
        with pytest.raises(ValueError) as err:
            estimate("nosql")
        assert "valid workloads" in str(err.value)

    def test_mix_estimate_averages_components(self):
        mixed = estimate("oltp_java", contexts=2)
        parts = [estimate(name) for name in ("database", "specjbb")]
        assert mixed.contexts == 2
        assert mixed.predicted_epi_per_1000 == pytest.approx(
            sum(p.predicted_epi_per_1000 for p in parts) / 2,
        )

    def test_knob_effects_flow_through_the_model(self):
        base = estimate("database")
        scouted = estimate("database", scout="hws2")
        assert scouted.predicted_epi_per_1000 < base.predicted_epi_per_1000

    def test_model_value_matches_the_shared_model(self):
        guess = estimate("tpcw")
        assert guess.model_epi_per_1000 == pytest.approx(
            predicted_epi_per_1000(WORKLOADS["tpcw"], {}),
        )
        # epochs_per_inst is the base term of the same model.
        assert epochs_per_inst(WORKLOADS["tpcw"]) > 0

    def test_api_alias(self):
        assert api.estimate("database") == estimate("database")
        assert api.EpiEstimate is EpiEstimate


class TestSharedModelConsumers:
    def test_fleet_cost_imports_the_canonical_model(self):
        from repro.fleet import cost

        assert cost.epochs_per_inst is epochs_per_inst

    def test_tune_pruner_imports_the_canonical_model(self):
        from repro.tune import pruner

        assert pruner.predicted_epi_per_1000 is predicted_epi_per_1000


class TestSerialization:
    def test_round_trip_is_exact(self):
        guess = estimate("database", contexts=2, scout="hws2")
        wire = serialize.to_jsonable(guess)
        back = serialize.from_jsonable(wire)
        assert isinstance(back, EpiEstimate)
        assert serialize.to_jsonable(back) == wire
        assert back.predicted_epi_per_1000 == guess.predicted_epi_per_1000

    def test_summary_names_the_knobs(self):
        text = estimate("database", contexts=2, scout="hws2").summary()
        assert "database" in text
        assert "contexts=2" in text
        assert "scout=hws2" in text
