"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


SMALL = ["--measure", "12000", "--warmup", "6000", "--no-calibrate"]


class TestCli:
    def test_table1(self, capsys):
        code, out, _ = run_cli(
            capsys, *SMALL, "--workloads", "tpcw", "table1"
        )
        assert code == 0
        assert "Table 1" in out
        assert "store frequency" in out

    def test_table2(self, capsys):
        code, out, _ = run_cli(
            capsys, *SMALL, "--workloads", "specweb", "table2"
        )
        assert code == 0
        assert "fully overlapped" in out

    def test_figure3(self, capsys):
        code, out, _ = run_cli(
            capsys, *SMALL, "--workloads", "specjbb", "figure3"
        )
        assert code == 0
        assert "specjbb" in out

    def test_run_command(self, capsys):
        code, out, _ = run_cli(
            capsys, *SMALL, "run", "--workload", "tpcw",
            "--prefetch", "sp2", "--consistency", "wc",
        )
        assert code == 0
        assert "epochs=" in out

    def test_unknown_workload_rejected(self, capsys):
        code, _, err = run_cli(
            capsys, *SMALL, "--workloads", "mysql", "table1"
        )
        assert code == 2
        assert "unknown workloads" in err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bench_needs_a_mode(self, capsys):
        code, _, err = run_cli(capsys, "bench")
        assert code == 2
        assert "--smoke or --perf" in err

    def test_bench_perf_writes_a_gateable_report(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_core.json"
        code, out, _ = run_cli(
            capsys, "bench", "--perf", "--reps", "1",
            "--warmup-reps", "0", "--out", str(out_path),
        )
        assert code == 0
        assert "geomean" in out
        # the fresh report gates cleanly against itself
        code, out, _ = run_cli(
            capsys, "bench", "--perf", "--reps", "1",
            "--warmup-reps", "0", "--baseline", str(out_path),
            "--max-regression", "0.99",
        )
        assert code == 0
        assert "regression gate ok" in out

    def test_sweep_reports_bad_axis_names(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(
                capsys, *SMALL, "sweep", "--workload", "database",
                "--axis", "store_que=16,32",
            )
        assert "unknown sweep axis" in str(excinfo.value)

    def test_tune_writes_best_config(self, capsys, tmp_path):
        out_path = tmp_path / "best.json"
        code, out, _ = run_cli(
            capsys, *SMALL, "--cache-dir", str(tmp_path / "cache"),
            "tune", "--workload", "database",
            "--param", "scout=none,hws2", "--strategy", "grid",
            "--budget", "2", "--out", str(out_path),
        )
        assert code == 0
        assert "tune:database" in out
        assert "resume state token" in out
        import json

        payload = json.loads(out_path.read_text())
        assert payload["workload"] == "database"
        assert payload["strategy"] == "grid"
        assert payload["evaluations"] == 2
        assert payload["best_knobs"]["scout"] == "hws2"
        assert payload["best_epi_per_1000"] > 0

    def test_tune_requires_a_param(self, capsys):
        code, _, err = run_cli(
            capsys, *SMALL, "tune", "--workload", "database",
        )
        assert code == 2
        assert "--param" in err

    def test_tune_reports_bad_axis_names(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(
                capsys, *SMALL, "tune", "--workload", "database",
                "--param", "warp_drive=1,2",
            )
        assert "valid axes" in str(excinfo.value)
