"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


SMALL = ["--measure", "12000", "--warmup", "6000", "--no-calibrate"]


class TestCli:
    def test_table1(self, capsys):
        code, out, _ = run_cli(
            capsys, *SMALL, "--workloads", "tpcw", "table1"
        )
        assert code == 0
        assert "Table 1" in out
        assert "store frequency" in out

    def test_table2(self, capsys):
        code, out, _ = run_cli(
            capsys, *SMALL, "--workloads", "specweb", "table2"
        )
        assert code == 0
        assert "fully overlapped" in out

    def test_figure3(self, capsys):
        code, out, _ = run_cli(
            capsys, *SMALL, "--workloads", "specjbb", "figure3"
        )
        assert code == 0
        assert "specjbb" in out

    def test_run_command(self, capsys):
        code, out, _ = run_cli(
            capsys, *SMALL, "run", "--workload", "tpcw",
            "--prefetch", "sp2", "--consistency", "wc",
        )
        assert code == 0
        assert "epochs=" in out

    def test_unknown_workload_rejected(self, capsys):
        code, _, err = run_cli(
            capsys, *SMALL, "--workloads", "mysql", "table1"
        )
        assert code == 2
        assert "unknown workloads" in err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bench_needs_a_mode(self, capsys):
        code, _, err = run_cli(capsys, "bench")
        assert code == 2
        assert "--smoke or --perf" in err

    def test_bench_perf_writes_a_gateable_report(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_core.json"
        code, out, _ = run_cli(
            capsys, "bench", "--perf", "--reps", "1",
            "--warmup-reps", "0", "--out", str(out_path),
        )
        assert code == 0
        assert "geomean" in out
        # the fresh report gates cleanly against itself
        code, out, _ = run_cli(
            capsys, "bench", "--perf", "--reps", "1",
            "--warmup-reps", "0", "--baseline", str(out_path),
            "--max-regression", "0.99",
        )
        assert code == 0
        assert "regression gate ok" in out

    def test_sweep_reports_bad_axis_names(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(
                capsys, *SMALL, "sweep", "--workload", "database",
                "--axis", "store_que=16,32",
            )
        assert "unknown sweep axis" in str(excinfo.value)

    def test_tune_writes_best_config(self, capsys, tmp_path):
        out_path = tmp_path / "best.json"
        code, out, _ = run_cli(
            capsys, *SMALL, "--cache-dir", str(tmp_path / "cache"),
            "tune", "--workload", "database",
            "--param", "scout=none,hws2", "--strategy", "grid",
            "--budget", "2", "--out", str(out_path),
        )
        assert code == 0
        assert "tune:database" in out
        assert "resume state token" in out
        import json

        payload = json.loads(out_path.read_text())
        assert payload["workload"] == "database"
        assert payload["strategy"] == "grid"
        assert payload["evaluations"] == 2
        assert payload["best_knobs"]["scout"] == "hws2"
        assert payload["best_epi_per_1000"] > 0

    def test_tune_requires_a_param(self, capsys):
        code, _, err = run_cli(
            capsys, *SMALL, "tune", "--workload", "database",
        )
        assert code == 2
        assert "--param" in err

    def test_tune_reports_bad_axis_names(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(
                capsys, *SMALL, "tune", "--workload", "database",
                "--param", "warp_drive=1,2",
            )
        assert "valid axes" in str(excinfo.value)


def _write_fleet_trace(path):
    """A minimal coordinator trace: one job, one task, clean run."""
    import json as _json

    events = [
        {"kind": "span_start", "name": "fleet_job", "corr": "job-1",
         "span": "", "id": "root", "parent": "", "ts": 10.0},
        {"kind": "fleet_job_expanded", "corr": "job-1", "ts": 11.0,
         "tasks": 1},
        {"kind": "fleet_task_leased", "corr": "job-1", "ts": 12.0,
         "task": "T", "worker": "w1", "attempt": 1},
        {"kind": "fleet_task_complete", "corr": "job-1", "ts": 15.0,
         "task": "T", "worker": "w1", "state": "done", "resumed_pos": -1,
         "checkpoints": 0},
        {"kind": "span_end", "name": "fleet_job", "corr": "job-1",
         "span": "", "id": "root", "parent": "", "ts": 16.0, "dur": 6.0,
         "state": "done"},
    ]
    path.write_text(
        "".join(_json.dumps(event) + "\n" for event in events)
    )


class TestObsCli:
    def test_obs_report_json_format(self, capsys, tmp_path):
        trace = tmp_path / "trace-1.jsonl"
        _write_fleet_trace(trace)
        code, out, _ = run_cli(
            capsys, "obs", "report", str(trace), "--format", "json",
        )
        assert code == 0
        import json as _json

        digest = _json.loads(out)
        assert digest["events"] >= 5

    def test_critical_path_renders_phases(self, capsys, tmp_path):
        trace = tmp_path / "trace-1.jsonl"
        _write_fleet_trace(trace)
        code, out, _ = run_cli(
            capsys, "obs", "critical-path", "job-1",
            "--trace-dir", str(tmp_path),
        )
        assert code == 0
        assert "job job-1" in out
        for phase in ("queued", "lease_wait", "executing", "merging"):
            assert phase in out
        assert "connected (1 root(s))" in out

    def test_critical_path_json_and_all(self, capsys, tmp_path):
        trace = tmp_path / "trace-1.jsonl"
        _write_fleet_trace(trace)
        code, out, _ = run_cli(
            capsys, "obs", "critical-path", "all",
            "--trace-dir", str(tmp_path), "--json",
        )
        assert code == 0
        import json as _json

        payload = _json.loads(out)
        assert isinstance(payload, list) and len(payload) == 1
        assert payload[0]["job"] == "job-1"
        assert payload[0]["wall_seconds"] == 6.0
        assert payload[0]["phase_sum_seconds"] == 6.0

    def test_critical_path_unknown_job_errors(self, capsys, tmp_path):
        trace = tmp_path / "trace-1.jsonl"
        _write_fleet_trace(trace)
        code, _, err = run_cli(
            capsys, "obs", "critical-path", "nope",
            "--trace-dir", str(tmp_path),
        )
        assert code == 1
        assert "no trace for job" in err


class TestFleetTopRendering:
    def test_render_frame_from_snapshot(self):
        from repro.cli import _render_fleet_top

        snapshot = {
            "counters": {"jobs_submitted_total": 3, "jobs_shed_total": 1},
            "gauges": {"fleet_workers": 2.0, "queue_depth": 1.0,
                       "fleet_workers_evicted_total": 0.0},
            "latency": {
                "task_lease_wait": {"count": 4, "p50": 0.01, "p99": 0.05},
            },
            "labeled": {
                "fleet_worker_inflight": [
                    {"labels": {"worker": "w0"}, "value": 1.0},
                    {"labels": {"worker": "w1"}, "value": 2.0},
                ],
                "fleet_worker_tasks_done_total": [
                    {"labels": {"worker": "w0"}, "value": 5.0},
                ],
            },
        }
        status = {"tasks": {"pending": 1, "leased": 3, "done": 5,
                            "failed": 0}}
        frame = _render_fleet_top("http://x", snapshot, status)
        assert "workers 2" in frame
        assert "queue depth 1" in frame
        assert "w0" in frame and "w1" in frame
        assert "lease p50=0.010s" in frame
        assert "submitted 3" in frame and "shed 1" in frame

    def test_render_frame_with_no_workers(self):
        from repro.cli import _render_fleet_top

        frame = _render_fleet_top(
            "http://x", {"counters": {}, "gauges": {}, "labeled": {},
                         "latency": {}}, {"tasks": {}},
        )
        assert "no federated worker series yet" in frame


class TestCliSmt:
    """The redesigned ``--contexts``/``--scheduler`` axis on ``run``."""

    def test_run_multi_context_mix(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, *SMALL, "--cache-dir", str(tmp_path), "run",
            "--workload", "oltp_java", "--contexts", "2",
            "--scheduler", "mlp",
        )
        assert code == 0
        assert "scheduler=mlp" in out
        assert "STP=" in out and "ANTT=" in out
        assert "ctx0" in out and "ctx1" in out

    def test_scheduler_requires_multiple_contexts(self, capsys):
        code, _, err = run_cli(
            capsys, *SMALL, "run", "--workload", "tpcw",
            "--scheduler", "mlp",
        )
        assert code == 2
        assert "--contexts > 1" in err

    def test_contexts_reject_sharding(self, capsys):
        code, _, err = run_cli(
            capsys, *SMALL, "run", "--workload", "tpcw",
            "--contexts", "2", "--shards", "2",
        )
        assert code == 2
        assert "--shards" in err

    def test_unknown_scheduler_lists_policies(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(
                capsys, *SMALL, "run", "--workload", "tpcw",
                "--contexts", "2", "--scheduler", "fifo",
            )
        assert "valid schedulers" in str(excinfo.value)

    def test_mix_requires_contexts(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(
                capsys, *SMALL, "run", "--workload", "oltp_java",
            )
        assert "mixes need --contexts > 1" in str(excinfo.value)


class TestCliEstimate:
    def test_estimate_summary(self, capsys):
        code, out, _ = run_cli(
            capsys, "estimate", "--workload", "database",
            "--knob", "scout=hws2",
        )
        assert code == 0
        assert "estimate database" in out
        assert "scout=hws2" in out

    def test_estimate_json(self, capsys):
        import json as _json

        code, out, _ = run_cli(
            capsys, "estimate", "--workload", "database", "--json",
        )
        assert code == 0
        payload = _json.loads(out)
        fields = payload["fields"]
        assert payload["$dc"] == "EpiEstimate"
        assert fields["workload"] == "database"
        assert fields["predicted_epi_per_1000"] > 0

    def test_estimate_rejects_duplicate_knobs(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(
                capsys, "estimate", "--workload", "database",
                "--knob", "scout=hws2", "--knob", "scout=none",
            )
        assert "duplicate --knob name 'scout'" in str(excinfo.value)

    def test_estimate_rejects_bad_knob_values(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(
                capsys, "estimate", "--workload", "database",
                "--knob", "scout=warp",
            )
        assert "scout" in str(excinfo.value)


class TestCliDuplicateAxes:
    def test_sweep_rejects_duplicate_axes(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(
                capsys, *SMALL, "sweep", "--workload", "database",
                "--axis", "store_queue=16", "--axis", "store_queue=32",
            )
        assert "duplicate --axis name 'store_queue'" in str(excinfo.value)
        assert "store_queue=V1,V2" in str(excinfo.value)

    def test_tune_rejects_duplicate_params(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(
                capsys, *SMALL, "tune", "--workload", "database",
                "--param", "scout=none", "--param", "scout=hws2",
            )
        assert "duplicate --param name 'scout'" in str(excinfo.value)
