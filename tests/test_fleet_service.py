"""End-to-end fleet tests: coordinator + in-process workers over real HTTP.

The acceptance contract of repro.fleet: results produced by a fleet (any
number of workers, with or without a mid-run worker death) are
**bit-identical** to single-node execution; saturation answers are
structured 429/503 with ``Retry-After``; cluster-wide dedup serves
repeated requests from the shared artifact store without touching a
worker.

Workers run as threads here (the real thing is a process; the wire
protocol is identical either way) so a "killed" worker is simply one that
stops heartbeating while holding a lease.
"""

from __future__ import annotations

import dataclasses
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine import serialize
from repro.engine.runner import (
    EngineRunner, JobResult, JobSpec, RunReport, ShardedReport,
)
from repro.fleet import FleetCoordinator, FleetWorker
from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench
from repro.service.client import ServiceClient, ServiceError

SMALL = ExperimentSettings(warmup=1500, measure=4000, seed=11,
                           calibrate=False)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    # One shared artifact store for the whole module: traces, annotations,
    # checkpoints and finished service results — exactly how a real fleet
    # shares state.
    return tmp_path_factory.mktemp("fleet-cache")


@pytest.fixture(scope="module")
def golden(cache_dir):
    return Workbench(SMALL, cache_dir=cache_dir).run("database")


def _post(url, path, body):
    request = urllib.request.Request(
        f"{url}{path}", data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    with urllib.request.urlopen(request, timeout=30.0) as response:
        return json.loads(response.read())


class _Fleet:
    """A coordinator plus N thread workers, torn down deterministically."""

    def __init__(self, cache_dir, workers=1, **coord_kwargs):
        coord_kwargs.setdefault("lease_ttl", 1.0)
        self.coord = FleetCoordinator(
            port=0, settings=SMALL, cache_dir=str(cache_dir), **coord_kwargs,
        ).start()
        self.workers = []
        self.threads = []
        for index in range(workers):
            self.add_worker(f"w{index}")

    def add_worker(self, name, obs=None):
        worker = FleetWorker(
            self.coord.url, name=name, lease_wait=1.0, obs=obs,
        ).join()
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        self.workers.append(worker)
        self.threads.append(thread)
        return worker

    def client(self, **kwargs):
        return ServiceClient(self.coord.url, **kwargs)

    def stop(self):
        self.coord.begin_drain()
        for worker in self.workers:
            worker.request_stop()
        for thread in self.threads:
            thread.join(timeout=15.0)
        self.coord.stop()


@pytest.fixture
def fleet_factory(cache_dir):
    fleets = []

    def make(workers=1, **kwargs):
        fleet = _Fleet(cache_dir, workers=workers, **kwargs)
        fleets.append(fleet)
        return fleet

    yield make
    for fleet in fleets:
        fleet.stop()


class TestFleetExecution:
    def test_simulate_bit_identical_to_single_node(
        self, fleet_factory, golden,
    ):
        fleet = fleet_factory(workers=1)
        client = fleet.client()
        health = client.health()
        assert health["mode"] == "fleet"
        assert health["fleet"]["workers"] == 1
        assert "reference" in health["backends"]

        receipt = client.submit({
            "kind": "simulate",
            "job": {"workload": "database", "variant": "pc"},
            "backend": "batch",
        })
        status = client.wait(receipt["id"], timeout=120)
        assert status["state"] == "done"
        report = RunReport.from_dict(status["result"]["report"])
        assert report.jobs[0].ok
        assert report.jobs[0].result == golden

    def test_sweep_spreads_over_two_workers(self, fleet_factory, golden):
        fleet = fleet_factory(workers=2, max_inflight=1)
        client = fleet.client()
        receipt = client.submit({
            "kind": "sweep",
            "sweep": {
                "workloads": ["database"],
                "variant": "pc",
                "axes": {"store_queue": [8, 16]},
            },
            "backend": "batch",
        })
        status = client.wait(receipt["id"], timeout=180)
        assert status["state"] == "done"
        assert len(status["result"]["records"]) == 2
        report = RunReport.from_dict(status["result"]["report"])
        assert all(job.ok for job in report.jobs)
        assert sum(w.tasks_done for w in fleet.workers) == 2
        # order is the sweep's grid order, regardless of which worker ran
        # which point
        queues = [dict(job.spec.core_changes)["store_queue"]
                  for job in report.jobs]
        assert queues == [8, 16]

    def test_dead_worker_shard_resumes_from_checkpoint(
        self, fleet_factory, golden, cache_dir,
    ):
        """A worker dies mid-shard; its shard is re-routed and *resumed*.

        The zombie leases one shard over the real wire, executes it with a
        kill fault (so verified checkpoints land in the shared store),
        then goes silent.  After eviction the replacement worker must
        finish from the zombie's checkpoint — and the merged result must
        equal the straight-through golden bit for bit.
        """
        fleet = fleet_factory(workers=0, lease_ttl=0.3)
        url = fleet.coord.url
        zombie = _post(url, "/v1/fleet/register", {"name": "zombie"})

        client = fleet.client()
        receipt = client.submit({
            "kind": "simulate",
            "job": {"workload": "database", "variant": "pc"},
            "shards": 2,
            "checkpoint_every": 500,
        })
        job_id = receipt["id"]

        # Long-poll until the expansion lands and the zombie holds a lease.
        lease = _post(
            url, "/v1/fleet/lease",
            {"worker": zombie["worker"], "max": 1, "wait": 20},
        )
        assert len(lease["tasks"]) == 1
        spec = serialize.from_jsonable(lease["tasks"][0]["spec"])
        assert spec.sharded and spec.checkpoint_every == 500

        # Execute the leased shard with a kill fault: checkpoints are
        # written to the shared cache, then the attempt dies.
        runner = EngineRunner(
            settings=SMALL, cache_dir=str(cache_dir), workers=1, retries=0,
        )
        doomed = dataclasses.replace(spec, fault="kill@600")
        outcome = runner.run([doomed]).jobs[0]
        assert not outcome.ok
        # The kill fired at checkpoint-save time, so the failed attempt
        # reports nothing — but its snapshot is in the shared store (the
        # token excludes the fault field, so any worker can resume it).
        from repro.engine.cache import ArtifactCache, resolve_cache_dir
        from repro.shard.checkpoint import CheckpointStore

        store = CheckpointStore(ArtifactCache(resolve_cache_dir(cache_dir)))
        assert store.load(spec, SMALL) is not None
        # ... and the zombie never reports back, never heartbeats again.

        fleet.add_worker("replacement")
        status = client.wait(job_id, timeout=180)
        assert status["state"] == "done"

        sharded = status["result"]["sharded"]
        assert sharded["rounds"] == 2          # the shard was re-leased
        assert sharded["resumed_shards"] >= 1  # ... and resumed, not redone
        report = ShardedReport.from_dict(status["result"]["report"])
        assert report.merged == golden
        resumed = [job for job in report.jobs if job.resumed_pos >= 0]
        assert resumed and all(job.ok for job in report.jobs)
        assert fleet.coord.registry.evicted_total == 1

    def test_cluster_wide_dedup_serves_from_result_store(
        self, fleet_factory, cache_dir,
    ):
        body = {
            "kind": "simulate",
            "job": {
                "workload": "database", "variant": "pc",
                "core_changes": {"store_queue": 24},
            },
            "backend": "batch",
        }
        fleet = fleet_factory(workers=1)
        client = fleet.client()
        first = client.wait(client.submit(body)["id"], timeout=120)
        assert first["state"] == "done"
        before = fleet.coord.metrics.to_dict()["counters"].get(
            "fleet_result_cache_hits_total", 0,
        )
        assert before == 0

        again = client.wait(client.submit(body)["id"], timeout=30)
        assert again["state"] == "done"
        assert again["result"] == first["result"]
        counters = fleet.coord.metrics.to_dict()["counters"]
        assert counters["fleet_result_cache_hits_total"] == 1

        # A *different* coordinator sharing the store — and owning ZERO
        # workers — still answers instantly: dedup-by-request-hash extends
        # across nodes and restarts.
        other = fleet_factory(workers=0)
        answer = other.client().wait(
            other.client().submit(body)["id"], timeout=30,
        )
        assert answer["state"] == "done"
        assert answer["result"] == first["result"]


class TestFleetObservability:
    """Cross-process trace propagation and metrics federation, end to end."""

    def test_sigkill_resume_yields_one_connected_trace_tree(
        self, fleet_factory, cache_dir, tmp_path,
    ):
        """One job, two workers, one SIGKILL: still a single span tree.

        The zombie worker leases a shard over the real wire, restores the
        propagated trace context, executes with a kill fault (emitting its
        engine spans parented under the coordinator's job span), then goes
        silent.  The replacement resumes from the zombie's checkpoint.
        The merged trace must form ONE connected tree rooted at the
        coordinator's ``fleet_job`` span, with engine spans from both
        workers — and the result must stay bit-identical to a single-node
        run without any tracing (observer neutrality).
        """
        from repro.obs import (
            ObsOptions,
            connected_roots,
            job_timeline,
            load_events,
            span_tree,
            trace_context,
        )

        golden = Workbench(SMALL, cache_dir=cache_dir).run("tpcw")
        trace_dir = tmp_path / "traces"
        obs = ObsOptions.for_trace(trace_dir, trace_epochs=False)
        fleet = fleet_factory(workers=0, lease_ttl=0.3, obs=obs)
        url = fleet.coord.url
        zombie = _post(url, "/v1/fleet/register", {"name": "obs-zombie"})

        client = fleet.client()
        receipt = client.submit({
            "kind": "simulate",
            "job": {"workload": "tpcw", "variant": "pc"},
            "shards": 2,
            "checkpoint_every": 500,
        })
        job_id = receipt["id"]

        lease = _post(
            url, "/v1/fleet/lease",
            {"worker": zombie["worker"], "max": 1, "wait": 20},
        )
        assert len(lease["tasks"]) == 1
        entry = lease["tasks"][0]
        # The lease carries the job's trace context on the wire.
        assert entry["traceparent"].startswith(f"00-{job_id}-")

        runner = EngineRunner(
            settings=SMALL, cache_dir=str(cache_dir), workers=1, retries=0,
            obs=obs,
        )
        doomed = dataclasses.replace(
            serialize.from_jsonable(entry["spec"]), fault="kill@600",
        )
        with trace_context(entry["traceparent"]):
            outcome = runner.run([doomed]).jobs[0]
        assert not outcome.ok
        # ... and the zombie never reports back, never heartbeats again.

        fleet.add_worker("obs-replacement", obs=obs)
        status = client.wait(job_id, timeout=180)
        assert status["state"] == "done"

        # Neutrality: tracing + federation changed nothing in the result.
        report = ShardedReport.from_dict(status["result"]["report"])
        assert report.merged == golden

        events = load_events(trace_dir)
        roots = connected_roots(events, job_id)
        assert len(roots) == 1, f"split trace tree: {len(roots)} roots"
        (root,) = roots
        nodes = span_tree(events, job_id)
        assert nodes[root]["name"] == "fleet_job"
        batches = [
            node for node in nodes.values()
            if node["name"] == "engine_batch" and node["parent"] == root
        ]
        assert len(batches) >= 2  # spans from both the zombie and the
        #                           replacement hang under the job root

        timeline = job_timeline(events, job_id)
        assert timeline is not None and timeline.state == "done"
        assert len(timeline.workers) == 2
        assert timeline.resumes >= 1
        assert timeline.phases["recovery"] > 0.0
        # The five phases tile the wall: reconcile within the 5% bound.
        assert timeline.phase_sum == pytest.approx(
            timeline.wall, rel=0.05,
        )

    def test_workers_federate_labeled_series_onto_metrics(
        self, fleet_factory,
    ):
        from test_obs_metrics import parse_exposition

        fleet = fleet_factory(workers=2, max_inflight=1)
        client = fleet.client()
        receipt = client.submit({
            "kind": "sweep",
            "sweep": {
                "workloads": ["database"],
                "variant": "pc",
                "axes": {"store_queue": [40, 48]},
            },
            "backend": "batch",
        })
        assert client.wait(receipt["id"], timeout=180)["state"] == "done"

        def scrape():
            with urllib.request.urlopen(
                fleet.coord.url + "/metrics", timeout=10.0,
            ) as response:
                return response.read().decode("utf-8")

        # Totals ride on heartbeats; wait for both workers to phone home.
        family = "repro_fleet_worker_tasks_done_total"
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            families = parse_exposition(scrape())
            samples = families.get(family, {"samples": []})["samples"]
            if (
                len(samples) == 2
                and sum(value for _, _, value in samples) == 2
            ):
                break
            time.sleep(0.2)
        families = parse_exposition(scrape())
        assert families[family]["type"] == "counter"
        labels = sorted(labels for _, labels, _ in families[family]["samples"])
        assert labels == ['{worker="w0"}', '{worker="w1"}']
        assert sum(v for _, _, v in families[family]["samples"]) == 2

        # Fleet-wide total gauge, derived from the same reports.
        total_family = families["repro_fleet_tasks_done_total"]
        assert total_family["samples"][0][2] == 2

        # Point-in-time health gauges carry per-worker labels too, and
        # are rebuilt per scrape for live workers only.
        inflight = families["repro_fleet_worker_inflight"]
        assert sorted(
            labels for _, labels, _ in inflight["samples"]
        ) == ['{worker="w0"}', '{worker="w1"}']

        # The JSON rendering exposes the same labeled section.
        with urllib.request.urlopen(
            fleet.coord.url + "/metrics?format=json", timeout=10.0,
        ) as response:
            snapshot = json.loads(response.read())
        series = {
            entry["labels"]["worker"]: entry["value"]
            for entry in snapshot["labeled"]["fleet_worker_tasks_done_total"]
        }
        assert set(series) == {"w0", "w1"}
        assert sum(series.values()) == 2

    def test_eviction_retains_federated_totals_end_to_end(
        self, fleet_factory,
    ):
        """Evicting a worker must not erase what it already reported."""
        fleet = fleet_factory(workers=0, lease_ttl=0.3)
        coord = fleet.coord
        ghost = _post(
            fleet.coord.url, "/v1/fleet/register", {"name": "ghost"},
        )
        _post(
            fleet.coord.url, "/v1/fleet/heartbeat",
            {"worker": ghost["worker"],
             "metrics": {"tasks_done_total": 5.0}},
        )
        assert coord.federation.fleet_total("tasks_done_total") == 5.0
        # Go silent; the eviction loop reaps the lease.
        deadline = time.monotonic() + 10.0
        while (
            coord.registry.evicted_total == 0
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        assert coord.registry.evicted_total == 1
        assert coord.federation.fleet_total("tasks_done_total") == 5.0
        assert coord.metrics.labeled_value(
            "fleet_worker_tasks_done_total", {"worker": "ghost"},
        ) == 5.0


class TestFleetBackpressure:
    def test_no_workers_means_structured_503(self, fleet_factory):
        fleet = fleet_factory(workers=0)
        with pytest.raises(ServiceError) as excinfo:
            fleet.client().submit({
                "kind": "simulate",
                "job": {"workload": "tpcw", "variant": "pc"},
            })
        assert excinfo.value.status == 503
        assert excinfo.value.payload["code"] == "saturated"
        assert excinfo.value.retry_after >= 1  # from the Retry-After header

    def test_full_queue_answers_429_with_retry_after(self, fleet_factory):
        fleet = fleet_factory(workers=0, queue_capacity=1, max_inflight=1)
        # A registered-but-idle worker keeps admission open while ensuring
        # nothing dequeues: one claimed job saturates its single slot, so
        # the dispatcher stops claiming and the queue fills.
        _post(fleet.coord.url, "/v1/fleet/register", {"name": "idler"})
        client = fleet.client()

        def submit(queue):
            return client.submit({
                "kind": "simulate",
                "job": {
                    "workload": "specjbb", "variant": "pc",
                    "core_changes": {"store_queue": queue},
                },
            })

        submit(4)
        deadline = time.monotonic() + 5.0
        while (
            fleet.coord.queue.counts_by_state()["running"] < 1
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)  # dispatcher claims #1; capacity frees up
        submit(8)  # fills the single queued slot
        with pytest.raises(ServiceError) as excinfo:
            submit(12)
        assert excinfo.value.status == 429
        assert excinfo.value.payload["code"] == "saturated"
        assert excinfo.value.retry_after >= 1

        # Higher-priority work sheds the queued job instead of bouncing.
        queued = [
            job for job in fleet.coord.queue.list_jobs()
            if job.state.value == "queued"
        ]
        assert len(queued) == 1
        urgent = client.submit({
            "kind": "simulate", "priority": 5,
            "job": {
                "workload": "specjbb", "variant": "pc",
                "core_changes": {"store_queue": 16},
            },
        })
        assert urgent["state"] == "queued"
        shed = client.status(queued[0].id)
        assert shed["state"] == "cancelled"
        victim = fleet.coord.queue.get(queued[0].id)
        assert victim is not None and victim.error.startswith("shed:")

    def test_draining_coordinator_answers_503(self, fleet_factory):
        fleet = fleet_factory(workers=1)
        fleet.coord.begin_drain()
        with pytest.raises(ServiceError) as excinfo:
            fleet.client().submit({
                "kind": "simulate",
                "job": {"workload": "tpcw", "variant": "pc"},
            })
        assert excinfo.value.status == 503
        assert fleet.client().health()["status"] == "draining"

    def test_figure_jobs_are_rejected_structurally(self, fleet_factory):
        fleet = fleet_factory(workers=1)
        with pytest.raises(ServiceError) as excinfo:
            fleet.client().submit({"kind": "figure", "figure": "figure2"})
        assert excinfo.value.status == 400


def _jsonable_result(status="ok", error=""):
    return serialize.to_jsonable(JobResult(
        spec=JobSpec(workload="database"), status=status,
        result=None, error=error,
    ))


class TestCompletionProtocol:
    """The /v1/fleet/complete contract: stale answers are acknowledged,
    malformed batches are rejected atomically — a healthy worker must
    never get an error answer for work the coordinator half-accepted.
    """

    def test_stale_completion_answers_200_not_error(self, fleet_factory):
        # The task's job settled (failed/forgotten) while this worker was
        # still executing; its late answer is a shrug, not a 500 that
        # would crash the worker and cascade through the fleet.
        fleet = fleet_factory(workers=0)
        worker = _post(
            fleet.coord.url, "/v1/fleet/register", {"name": "straggler"},
        )
        answer = _post(
            fleet.coord.url, "/v1/fleet/complete",
            {
                "worker": worker["worker"],
                "results": [{"task": "gone.0", "result": _jsonable_result()}],
            },
        )
        assert answer["ok"] is True
        assert answer["accepted"] == 0
        assert answer["stale"] == 1

    def test_malformed_batch_rejected_before_any_result_applies(
        self, fleet_factory,
    ):
        fleet = fleet_factory(workers=0)
        url = fleet.coord.url
        worker = _post(url, "/v1/fleet/register", {"name": "w"})
        client = fleet.client()
        client.submit({
            "kind": "sweep",
            "sweep": {
                "workloads": ["database"],
                "variant": "pc",
                "axes": {"store_queue": [8, 16]},
            },
        })
        lease = _post(
            url, "/v1/fleet/lease",
            {"worker": worker["worker"], "max": 2, "wait": 20},
        )
        assert len(lease["tasks"]) == 2
        good, other = (entry["task"] for entry in lease["tasks"])

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, "/v1/fleet/complete", {
                "worker": worker["worker"],
                "results": [
                    {"task": good, "result": _jsonable_result()},
                    {"task": other, "result": {"garbage": True}},
                ],
            })
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert "results[1]" in body["error"]
        # atomic rejection: the valid first entry was NOT applied
        assert fleet.coord.router.counts()["leased"] == 2

        answer = _post(url, "/v1/fleet/complete", {
            "worker": worker["worker"],
            "results": [
                {"task": good, "result": _jsonable_result()},
                {"task": other, "result": _jsonable_result()},
            ],
        })
        assert answer["accepted"] == 2

    def test_malformed_content_length_answers_400(self, fleet_factory):
        fleet = fleet_factory(workers=0)
        with socket.create_connection(
            (fleet.coord.host, fleet.coord.port), timeout=5.0,
        ) as sock:
            sock.sendall(
                b"GET /healthz HTTP/1.1\r\n"
                b"Host: test\r\n"
                b"Content-Length: banana\r\n\r\n"
            )
            data = sock.recv(65536)
        assert data.split(b"\r\n", 1)[0] == b"HTTP/1.1 400 Bad Request"


class TestWorkerResilience:
    def _worker(self):
        worker = FleetWorker("http://127.0.0.1:1")
        worker.worker_id = "w-test"
        return worker

    def test_rejected_completion_is_dropped_not_fatal(self, monkeypatch):
        worker = self._worker()

        def reject(path, payload):
            raise urllib.error.HTTPError(path, 500, "boom", None, None)

        monkeypatch.setattr(worker, "_post", reject)
        assert worker._post_complete([{"task": "t", "result": None}]) is True

    def test_eviction_410_stops_the_worker(self, monkeypatch):
        worker = self._worker()

        def gone(path, payload):
            raise urllib.error.HTTPError(path, 410, "gone", None, None)

        monkeypatch.setattr(worker, "_post", gone)
        assert worker._post_complete([{"task": "t", "result": None}]) is False

    def test_unreachable_coordinator_retries_then_gives_up(
        self, monkeypatch,
    ):
        worker = self._worker()
        worker.max_connect_failures = 3
        calls = []

        def unreachable(path, payload):
            calls.append(path)
            raise ConnectionRefusedError("nope")

        monkeypatch.setattr(worker, "_post", unreachable)
        assert worker._post_complete([{"task": "t", "result": None}]) is False
        assert len(calls) == 3


class TestFleetDrain:
    def test_drain_finishes_backlog_and_releases_workers(
        self, fleet_factory,
    ):
        fleet = fleet_factory(workers=1)
        client = fleet.client()
        receipt = client.submit({
            "kind": "simulate",
            "job": {
                "workload": "database", "variant": "pc",
                "core_changes": {"store_queue": 32},
            },
            "backend": "batch",
        })
        abandoned = fleet.coord.drain(timeout=120.0)
        assert abandoned == 0
        assert client.status(receipt["id"])["state"] == "done"
        # the drained worker observes the flag and leaves by itself
        deadline = time.monotonic() + 10.0
        while (
            fleet.coord.registry.count() and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        assert fleet.coord.registry.count() == 0

    def test_fleet_status_payload(self, fleet_factory):
        fleet = fleet_factory(workers=2)
        status = fleet.client().fleet_status()
        assert len(status["workers"]) == 2
        assert status["tasks"] == {
            "pending": 0, "leased": 0, "done": 0, "failed": 0,
        }
        assert status["draining"] is False
