"""Federation edge cases: eviction, rejoin, and idempotent heartbeats.

The protocol under test (see repro/fleet/federation.py): workers report
absolute totals *within one registration epoch*, the coordinator sets —
never adds — labeled series, and evict/rejoin folds the live half into a
per-name retained bucket.  The two hazards these tests pin down are the
ones the design exists to prevent: losing counts a dead worker already
reported, and double-counting when the same worker name rejoins.
"""

from __future__ import annotations

import pytest

from repro.fleet.federation import MetricsFederation
from repro.obs.metrics import MetricsRegistry
from test_obs_metrics import parse_exposition


@pytest.fixture()
def metrics():
    return MetricsRegistry()


@pytest.fixture()
def federation(metrics):
    return MetricsFederation(metrics)


def series(metrics, metric, name):
    return metrics.labeled_value(
        f"fleet_worker_{metric}", {"worker": name},
    )


class TestReporting:
    def test_report_publishes_labeled_and_fleet_series(
        self, federation, metrics,
    ):
        federation.report("id-1", "alpha", {"tasks_done_total": 3.0})
        federation.report("id-2", "beta", {"tasks_done_total": 5.0})
        assert series(metrics, "tasks_done_total", "alpha") == 3.0
        assert series(metrics, "tasks_done_total", "beta") == 5.0
        assert federation.fleet_total("tasks_done_total") == 8.0
        # The fleet-total gauge is live on the registry itself.
        assert metrics.to_dict()["gauges"]["fleet_tasks_done_total"] == 8.0

    def test_fleet_total_skipped_when_name_already_owned(
        self, federation, metrics,
    ):
        # The coordinator's own fleet_tasks_done_total counter (described
        # at startup, incremented on completion) must stay the ONLY
        # exposition family under that name — the federation gauge would
        # otherwise render a duplicate with a conflicting TYPE.
        metrics.describe("fleet_tasks_done_total", "tasks completed")
        metrics.inc("fleet_tasks_done_total", 2)
        federation.report("id-1", "alpha", {"tasks_done_total": 3.0})
        assert "fleet_tasks_done_total" not in metrics.to_dict()["gauges"]
        assert series(metrics, "tasks_done_total", "alpha") == 3.0
        declarations = [
            line
            for line in metrics.render_prometheus().splitlines()
            if line.startswith("# TYPE repro_fleet_tasks_done_total ")
        ]
        assert declarations == ["# TYPE repro_fleet_tasks_done_total counter"]
        # Strict parse of the whole exposition: one family per name.
        parse_exposition(metrics.render_prometheus())

    def test_repeated_heartbeat_is_idempotent(self, federation, metrics):
        for _ in range(3):  # retried heartbeat, same totals
            federation.report("id-1", "alpha", {"sim_epochs_total": 40.0})
        assert series(metrics, "sim_epochs_total", "alpha") == 40.0
        assert federation.fleet_total("sim_epochs_total") == 40.0

    def test_non_numeric_values_are_dropped(self, federation, metrics):
        federation.report(
            "id-1", "alpha",
            {"tasks_done_total": 2.0, "hostname": "box", "flag": True},
        )
        assert series(metrics, "tasks_done_total", "alpha") == 2.0
        assert federation.fleet_total("hostname") == 0.0
        assert federation.fleet_total("flag") == 0.0


class TestEvictionAndRejoin:
    def test_evicted_worker_keeps_reported_totals(self, federation, metrics):
        federation.report("id-1", "alpha", {"tasks_done_total": 7.0})
        federation.forget("id-1")  # evicted between heartbeats
        # Nothing already reported is lost: series and total hold.
        assert series(metrics, "tasks_done_total", "alpha") == 7.0
        assert federation.fleet_total("tasks_done_total") == 7.0

    def test_rejoin_resumes_monotonically_without_double_count(
        self, federation, metrics,
    ):
        federation.report("id-1", "alpha", {"tasks_done_total": 7.0})
        federation.forget("id-1")
        # Same name rejoins under a fresh registration.  Its baseline
        # resets at join, so the first heartbeats report small values —
        # which must *extend* the retained 7, not replace or re-add it.
        federation.report("id-9", "alpha", {"tasks_done_total": 0.0})
        assert series(metrics, "tasks_done_total", "alpha") == 7.0
        federation.report("id-9", "alpha", {"tasks_done_total": 2.0})
        assert series(metrics, "tasks_done_total", "alpha") == 9.0
        assert federation.fleet_total("tasks_done_total") == 9.0

    def test_multiple_evictions_accumulate_retained(
        self, federation, metrics,
    ):
        for epoch, (worker_id, done) in enumerate(
            [("id-1", 3.0), ("id-2", 4.0), ("id-3", 5.0)],
        ):
            federation.report(worker_id, "alpha", {"tasks_done_total": done})
            federation.forget(worker_id)
        assert series(metrics, "tasks_done_total", "alpha") == 12.0
        assert federation.fleet_total("tasks_done_total") == 12.0

    def test_forget_unknown_worker_is_a_noop(self, federation, metrics):
        federation.forget("never-seen")
        assert federation.fleet_total("tasks_done_total") == 0.0

    def test_worker_names_spans_live_and_retained(self, federation):
        federation.report("id-1", "alpha", {"tasks_done_total": 1.0})
        federation.report("id-2", "beta", {"tasks_done_total": 1.0})
        federation.forget("id-1")
        assert federation.worker_names() == {"alpha", "beta"}


class TestMonotonicity:
    def test_series_never_steps_backward_across_epochs(
        self, federation, metrics,
    ):
        observed = []

        def sample():
            observed.append(series(metrics, "sim_epochs_total", "alpha"))

        federation.report("id-1", "alpha", {"sim_epochs_total": 10.0})
        sample()
        federation.report("id-1", "alpha", {"sim_epochs_total": 25.0})
        sample()
        federation.forget("id-1")
        sample()
        federation.report("id-2", "alpha", {"sim_epochs_total": 1.0})
        sample()
        federation.report("id-2", "alpha", {"sim_epochs_total": 6.0})
        sample()
        assert observed == sorted(observed)
        assert observed[-1] == 31.0
