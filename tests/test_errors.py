"""The unified error surface (repro.errors) and its service mirroring.

Three properties matter: every package error descends from ReproError
with a stable machine-readable code; the two compatibility classes are
still the builtins old call sites catch; and the service daemon mirrors
the code of whatever failed into its 4xx/5xx JSON bodies.
"""

from __future__ import annotations

import pytest

from repro import errors
from repro.errors import (
    BatchFailedError,
    CheckpointCorruptError,
    EngineConfigError,
    EngineError,
    FaultInjectedError,
    ProtocolError,
    ReproError,
    ShardBoundaryError,
)

ALL_ERRORS = [
    value
    for value in vars(errors).values()
    if isinstance(value, type) and issubclass(value, ReproError)
]


class TestHierarchy:
    def test_every_error_is_a_repro_error(self):
        assert len(ALL_ERRORS) >= 10
        for cls in ALL_ERRORS:
            assert issubclass(cls, ReproError)

    def test_codes_are_stable_unique_slugs(self):
        codes = [cls.code for cls in ALL_ERRORS]
        assert len(set(codes)) == len(codes), "codes must not collide"
        for code in codes:
            assert code == code.lower()
            assert " " not in code

    def test_new_shard_codes(self):
        assert ShardBoundaryError.code == "shard-boundary"
        assert CheckpointCorruptError.code == "checkpoint-corrupt"
        assert FaultInjectedError.code == "fault-injected"
        assert ProtocolError.code == "protocol-invalid"

    def test_one_except_clause_catches_everything(self):
        for cls in ALL_ERRORS:
            with pytest.raises(ReproError):
                raise cls("boom")


class TestCompatibility:
    def test_engine_config_error_is_still_a_value_error(self):
        with pytest.raises(ValueError):
            raise EngineConfigError("bad knob")
        assert issubclass(EngineConfigError, EngineError)

    def test_batch_failed_error_is_still_a_runtime_error(self):
        with pytest.raises(RuntimeError):
            raise BatchFailedError("3/4 jobs failed")

    def test_protocol_error_carries_http_status(self):
        assert ProtocolError("nope").status == 400
        assert ProtocolError("gone", status=409).status == 409

    def test_old_import_path_still_works(self):
        from repro.service.protocol import ProtocolError as OldPath

        assert OldPath is ProtocolError


class TestEngineRaisesTyped:
    def test_bad_runner_params_raise_engine_config_error(self):
        from repro.engine.runner import EngineRunner

        with pytest.raises(EngineConfigError):
            EngineRunner(job_timeout=0)
        with pytest.raises(EngineConfigError):
            EngineRunner(retries=-1)

    def test_sharded_rejects_non_simulate_spec(self, tmp_path):
        from repro.engine.runner import EngineRunner, JobSpec
        from repro.harness import ExperimentSettings

        runner = EngineRunner(
            settings=ExperimentSettings(
                warmup=1500, measure=4000, seed=11, calibrate=False,
            ),
            cache_dir=tmp_path, workers=1,
        )
        with pytest.raises(EngineConfigError):
            runner.run_sharded(
                JobSpec(workload="database", action="annotate"), 2,
            )
        with pytest.raises(EngineConfigError):
            runner.run_sharded(JobSpec(workload="database"), 0)


class TestServiceMirrorsCodes:
    @pytest.fixture()
    def service(self, tmp_path):
        from repro.harness import ExperimentSettings
        from repro.service import ReproService

        svc = ReproService(
            settings=ExperimentSettings(
                warmup=1500, measure=4000, seed=11, calibrate=False,
            ),
            cache_dir=tmp_path / "cache",
            workers=1,
            start_dispatcher=False,
        ).start()
        yield svc
        svc.stop()

    def test_protocol_error_code_in_400_body(self, service):
        from repro.service import ServiceClient, ServiceError

        client = ServiceClient(service.url, timeout=10.0)
        with pytest.raises(ServiceError) as info:
            client.submit({"kind": "definitely-not-a-kind"})
        assert info.value.status == 400
        assert info.value.payload.get("code") == "protocol-invalid"

    def test_unknown_job_404_has_no_stray_code(self, service):
        from repro.service import ServiceClient, ServiceError

        client = ServiceClient(service.url, timeout=10.0)
        with pytest.raises(ServiceError) as info:
            client.status("no-such-job")
        assert info.value.status == 404
