"""Observer neutrality: attaching a recorder never perturbs simulation.

Each parametrized case exercises a different mechanism path through the
window scan — PC and WC consistency, SMAC, hardware scout, SLE, and a
small store buffer/queue that saturates — and asserts the *entire*
:class:`~repro.core.results.SimulationResult` (every counter, every
per-epoch record) is equal with an :class:`EpochTimelineRecorder`
attached versus ``observer=None``.  This is the guarantee that lets
``--trace`` default on in sweeps without a results disclaimer.
"""

from __future__ import annotations

import pytest

from repro.config import (
    MemoryConfig,
    ScoutMode,
    SmacConfig,
    StorePrefetchMode,
)
from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench
from repro.obs import EpochTimelineRecorder, Tracer

SMALL = ExperimentSettings(warmup=2000, measure=6000, seed=13,
                           calibrate=False)

#: case -> Workbench.run(...) keyword arguments.
CASES = {
    "pc_default": dict(workload="database"),
    "wc": dict(workload="database", variant="wc"),
    "pc_small_store_path": dict(
        workload="database",
        store_prefetch=StorePrefetchMode.NONE,
        store_buffer=8,
        store_queue=16,
    ),
    "smac": dict(
        workload="tpcw",
        memory_config=MemoryConfig(
            smac=SmacConfig(entries=256, associativity=8),
        ),
        tag="smac",
    ),
    "scout_hws2": dict(
        workload="tpcw",
        scout=ScoutMode.HWS2,
        store_prefetch=StorePrefetchMode.NONE,
    ),
    "sle": dict(
        workload="specjbb",
        variant="pc_sle",
        prefetch_past_serializing=True,
    ),
}


@pytest.fixture(scope="module")
def bench() -> Workbench:
    return Workbench(SMALL)


@pytest.mark.parametrize("case", sorted(CASES))
def test_recorder_is_bit_neutral(bench, case):
    kwargs = dict(CASES[case])
    workload = kwargs.pop("workload")
    baseline = bench.run(workload, **kwargs)
    recorder = EpochTimelineRecorder(Tracer(), label=case)
    observed = bench.run(workload, observer=recorder, **kwargs)

    # Full dataclass equality: every counter and every EpochRecord.
    assert observed == baseline
    # And the recorder really saw the run it did not perturb.
    assert recorder.epochs_closed == baseline.epoch_count
    epoch_events = [
        e for e in recorder.tracer.events if e["kind"] == "epoch"
    ]
    assert len(epoch_events) == baseline.epoch_count
