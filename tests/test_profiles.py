"""Workload profiles: derived probabilities and paper-derived values."""

from __future__ import annotations

import pytest

from repro.workloads import DATABASE, SPECJBB, SPECWEB, TPCW, WORKLOADS


class TestPresets:
    def test_all_four_paper_workloads_present(self):
        assert set(WORKLOADS) == {"database", "tpcw", "specjbb", "specweb"}

    def test_table1_store_frequencies(self):
        assert DATABASE.store_fraction == pytest.approx(0.1009)
        assert TPCW.store_fraction == pytest.approx(0.0728)
        assert SPECJBB.store_fraction == pytest.approx(0.0752)
        assert SPECWEB.store_fraction == pytest.approx(0.0720)

    def test_table1_miss_targets(self):
        assert DATABASE.store_miss_per_100 == 0.36
        assert DATABASE.load_miss_per_100 == 0.57
        assert SPECJBB.load_miss_per_100 == 0.25
        assert SPECWEB.store_miss_per_100 == 0.13

    def test_database_has_largest_store_footprint(self):
        """Figure 5's saturation ordering: database > tpcw/jbb > web."""
        assert DATABASE.store_regions > TPCW.store_regions
        assert DATABASE.store_regions > SPECJBB.store_regions
        assert SPECJBB.store_regions > SPECWEB.store_regions

    def test_database_has_largest_store_bursts(self):
        """Figure 4: the database workload achieves the highest store MLP."""
        for other in (TPCW, SPECJBB, SPECWEB):
            assert DATABASE.store_burst_mean > other.store_burst_mean

    def test_serialization_pressure_ordering(self):
        """SPECjbb/SPECweb/TPC-W are serialize-dominated (Figure 3)."""
        for profile in (TPCW, SPECJBB, SPECWEB):
            assert profile.lock_after_store_miss > DATABASE.lock_after_store_miss


class TestDerivedProbabilities:
    def test_store_miss_prob_accounts_for_bursts(self):
        base = DATABASE.with_(store_burst_mean=1.0)
        bursty = DATABASE.with_(store_burst_mean=4.0)
        assert bursty.store_miss_prob == pytest.approx(base.store_miss_prob / 4)

    def test_store_miss_prob_tracks_target(self):
        doubled = DATABASE.with_(store_miss_per_100=0.72)
        assert doubled.store_miss_prob == pytest.approx(
            2 * DATABASE.store_miss_prob
        )

    def test_scales_multiply(self):
        scaled = DATABASE.with_(load_miss_scale=0.5)
        assert scaled.load_miss_prob == pytest.approx(
            DATABASE.load_miss_prob * 0.5
        )

    def test_footprint_bytes(self):
        assert DATABASE.store_footprint_bytes == (
            DATABASE.store_regions * DATABASE.store_region_bytes
        )

    def test_busy_scale_preserves_aggregate(self):
        profile = DATABASE
        quiet = profile.quiet_fraction
        scale = 0.2
        aggregate = (
            quiet * scale + (1 - quiet) * profile.busy_scale(scale)
        )
        assert aggregate == pytest.approx(1.0)

    def test_busy_scale_identity_without_phases(self):
        profile = DATABASE.with_(quiet_fraction=0.0)
        assert profile.busy_scale(0.2) == 1.0


class TestValidation:
    def test_mix_must_leave_alu_room(self):
        with pytest.raises(ValueError):
            DATABASE.with_(load_fraction=0.9)

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            DATABASE.with_(store_miss_per_100=-1)

    def test_burst_mean_at_least_one(self):
        with pytest.raises(ValueError):
            DATABASE.with_(store_burst_mean=0.5)

    def test_quiet_fraction_range(self):
        with pytest.raises(ValueError):
            DATABASE.with_(quiet_fraction=1.0)

    def test_with_returns_new_value(self):
        changed = DATABASE.with_(locks_per_1000=9.0)
        assert changed.locks_per_1000 == 9.0
        assert DATABASE.locks_per_1000 != 9.0
