"""CLI figure commands at miniature sizes (smoke coverage of every path)."""

from __future__ import annotations

import pytest

from repro.cli import main


TINY = ["--measure", "8000", "--warmup", "4000", "--no-calibrate",
        "--workloads", "specweb"]


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestFigureCommands:
    def test_figure2(self, capsys):
        code, out = run_cli(capsys, *TINY, "figure2")
        assert code == 0
        assert "Sp1" in out and "perfect" in out

    def test_figure3_sle(self, capsys):
        code, out = run_cli(capsys, *TINY, "figure3", "--sle")
        assert code == 0
        assert "specweb" in out

    def test_figure4(self, capsys):
        code, out = run_cli(capsys, *TINY, "figure4")
        assert code == 0
        assert "storeMLP=" in out

    def test_figure7(self, capsys):
        code, out = run_cli(capsys, *TINY, "figure7")
        assert code == 0
        assert "PC1" in out and "WC3" in out

    def test_figure8(self, capsys):
        code, out = run_cli(capsys, *TINY, "figure8")
        assert code == 0
        assert "HWS2" in out

    def test_table3(self, capsys):
        code, out = run_cli(capsys, *TINY, "table3")
        assert code == 0
        assert "CPI on-chip" in out


@pytest.mark.slow
class TestSmacCommands:
    """Figure 5/6 re-annotate per SMAC size; kept separate and marked slow."""

    def test_figure5(self, capsys):
        code, out = run_cli(capsys, *TINY, "figure5")
        assert code == 0
        assert "smac" in out

    def test_figure6(self, capsys):
        code, out = run_cli(capsys, *TINY, "figure6")
        assert code == 0
        assert "invalidates_per_1000" in out
