"""Worker lifecycle (repro.fleet.registry) and task routing
(repro.fleet.router) — pure in-process unit tests, no sockets.
"""

from __future__ import annotations

import time

import pytest

from repro.engine.runner import JobResult, JobSpec
from repro.errors import UnknownWorkerError
from repro.fleet import Router, TaskRecord, WorkerRegistry
from repro.fleet.cost import CostEstimate


def _task(task_id, job_id="j1", index=0, priority=0, units=1.0):
    return TaskRecord(
        id=task_id,
        job_id=job_id,
        index=index,
        spec=JobSpec(workload="database"),
        priority=priority,
        cost=CostEstimate(
            units=units, instructions=100,
            predicted_epochs=1.0, predicted_misses=1.0,
        ),
    )


def _ok(spec=None):
    return JobResult(
        spec=spec or JobSpec(workload="database"), status="ok", result=None,
    )


def _failed(spec=None):
    return JobResult(
        spec=spec or JobSpec(workload="database"), status="error",
        error="boom",
    )


class TestRegistry:
    def test_register_heartbeat_deregister(self):
        registry = WorkerRegistry(lease_ttl=5.0)
        worker = registry.register(name="alpha", pid=123)
        assert registry.get(worker.id) is worker
        assert registry.heartbeat(worker.id) is worker
        assert [w.id for w in registry.live_workers()] == [worker.id]
        registry.deregister(worker.id)
        assert registry.get(worker.id) is None
        with pytest.raises(UnknownWorkerError):
            registry.heartbeat(worker.id)

    def test_eviction_after_missed_heartbeats(self):
        registry = WorkerRegistry(lease_ttl=0.02, grace=1.0)
        worker = registry.register(name="mortal")
        time.sleep(0.06)
        evicted = registry.evict_expired()
        assert [w.id for w in evicted] == [worker.id]
        assert registry.count() == 0
        assert registry.evicted_total == 1

    def test_heartbeat_keeps_worker_alive(self):
        registry = WorkerRegistry(lease_ttl=0.05, grace=1.0)
        worker = registry.register(name="alive")
        for _ in range(4):
            time.sleep(0.02)
            registry.heartbeat(worker.id)
        assert registry.evict_expired() == []
        assert registry.live_workers()

    def test_drain_one_and_all(self):
        registry = WorkerRegistry()
        a = registry.register(name="a")
        b = registry.register(name="b")
        registry.drain(a.id)
        assert a.draining and not b.draining
        assert {w.id for w in registry.accepting_workers()} == {b.id}
        registry.drain(None)
        assert b.draining
        assert registry.accepting_workers() == []
        # a worker joining a draining fleet inherits the flag
        late = registry.register(name="late")
        assert late.draining

    def test_drain_unknown_worker_raises(self):
        with pytest.raises(UnknownWorkerError):
            WorkerRegistry().drain("nope")


class TestRouterLeasing:
    def _router(self, **kwargs):
        registry = WorkerRegistry()
        worker = registry.register(name="w")
        return Router(registry, **kwargs), worker

    def test_lease_orders_by_priority_then_cost(self):
        router, worker = self._router(max_inflight=10)
        router.add_tasks([
            _task("small", priority=0, units=1.0),
            _task("urgent", priority=5, units=0.5),
            _task("big", priority=0, units=9.0),
        ])
        granted = router.lease(worker.id, max_tasks=3)
        assert [t.id for t in granted] == ["urgent", "big", "small"]

    def test_fifo_breaks_cost_ties(self):
        router, worker = self._router(max_inflight=10)
        router.add_tasks([_task("first"), _task("second")])
        granted = router.lease(worker.id, max_tasks=2)
        assert [t.id for t in granted] == ["first", "second"]

    def test_max_inflight_bounds_leases(self):
        router, worker = self._router(max_inflight=2)
        router.add_tasks([_task(f"t{i}") for i in range(5)])
        assert len(router.lease(worker.id, max_tasks=10)) == 2
        # at the bound: nothing more until something completes
        assert router.lease(worker.id, max_tasks=10) == []
        router.complete(worker.id, "t0", _ok())
        assert len(router.lease(worker.id, max_tasks=10)) == 1

    def test_unknown_worker_rejected(self):
        router, _ = self._router()
        router.add_tasks([_task("t")])
        with pytest.raises(UnknownWorkerError):
            router.lease("ghost")

    def test_draining_worker_gets_nothing(self):
        router, worker = self._router()
        router.registry.drain(worker.id)
        router.add_tasks([_task("t")])
        assert router.lease(worker.id) == []


class TestRouterCompletion:
    def _leased(self, retries=1):
        registry = WorkerRegistry()
        worker = registry.register(name="w")
        router = Router(registry, max_inflight=10, retries=retries)
        router.add_tasks([_task("t1"), _task("t2", index=1)])
        router.lease(worker.id, max_tasks=2)
        return router, worker

    def test_success_accounts_to_worker(self):
        router, worker = self._leased()
        task = router.complete(worker.id, "t1", _ok())
        assert task.state == "done"
        assert worker.tasks_done == 1
        assert router.counts()["done"] == 1

    def test_failure_requeues_until_retries_exhausted(self):
        router, worker = self._leased(retries=1)
        task = router.complete(worker.id, "t1", _failed())
        assert task.state == "pending"  # attempt 1 failed, retry allowed
        assert router.requeued_total == 1
        router.lease(worker.id, max_tasks=1)  # attempt 2
        task = router.complete(worker.id, "t1", _failed())
        assert task.state == "failed"
        assert worker.tasks_failed == 2

    def test_release_worker_requeues_leased_only(self):
        router, worker = self._leased()
        router.complete(worker.id, "t1", _ok())
        released = router.release_worker(worker.id)
        # the done task is NOT requeued — completed work survives a death
        assert [t.id for t in released] == ["t2"]
        assert router.counts() == {
            "pending": 1, "leased": 0, "done": 1, "failed": 0,
        }

    def test_stale_completion_ignored_after_requeue(self):
        registry = WorkerRegistry()
        dead = registry.register(name="dead")
        live = registry.register(name="live")
        router = Router(registry, max_inflight=10, retries=2)
        router.add_tasks([_task("t")])
        router.lease(dead.id)
        router.release_worker(dead.id)      # eviction path
        router.lease(live.id)               # re-leased by the survivor
        # the dead worker's late answer must not complete the fresh lease
        task = router.complete(dead.id, "t", _ok())
        assert task.state == "leased"
        assert task.worker_id == live.id
        task = router.complete(live.id, "t", _ok())
        assert task.state == "done"

    def test_unknown_task_is_stale_not_an_error(self):
        # A healthy worker finishing a task whose job was already failed
        # and forgotten must get a shrug, not an error that crashes it.
        router, worker = self._leased()
        assert router.complete(worker.id, "nope", _ok()) is None
        router.forget_job("j1")
        assert router.complete(worker.id, "t1", _ok()) is None

    def test_outstanding_cost_and_forget(self):
        router, worker = self._leased()
        assert router.outstanding_cost() == pytest.approx(2.0)
        router.complete(worker.id, "t1", _ok())
        assert router.outstanding_cost() == pytest.approx(1.0)
        router.forget_job("j1")
        assert router.counts() == {
            "pending": 0, "leased": 0, "done": 0, "failed": 0,
        }

    def test_drop_job_fails_pending_tasks(self):
        registry = WorkerRegistry()
        registry.register(name="w")
        router = Router(registry)
        router.add_tasks([_task("a"), _task("b", index=1)])
        assert router.drop_job("j1") == 2
        assert router.counts()["failed"] == 2
