"""EpochTimelineRecorder, trace invariants, and report rendering.

The load-bearing invariant throughout: with tracing enabled, the trace
contains exactly one ``epoch`` event per epoch the simulator committed —
``result.epoch_count`` of them per run — whether the run went through the
serial API, the engine's worker pool, or a raw Workbench.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench
from repro.obs import (
    ObsOptions,
    EpochTimelineRecorder,
    PhaseProfiler,
    Tracer,
    load_events,
    render_report,
    render_timeline,
    summarize,
)

SMALL = ExperimentSettings(warmup=2000, measure=6000, seed=13,
                           calibrate=False)


@pytest.fixture(scope="module")
def bench() -> Workbench:
    return Workbench(SMALL)


class TestRecorder:
    def test_one_epoch_event_per_committed_epoch(self, bench):
        tracer = Tracer()
        recorder = EpochTimelineRecorder(tracer, label="db/pc")
        result = bench.run("database", observer=recorder)

        epoch_events = [
            e for e in tracer.events if e["kind"] == "epoch"
        ]
        assert len(epoch_events) == result.epoch_count
        assert recorder.epochs_closed == result.epoch_count
        assert len(recorder.rows) == result.epoch_count
        assert all(e["name"] == "db/pc" for e in epoch_events)

    def test_rows_mirror_epoch_records(self, bench):
        recorder = EpochTimelineRecorder()
        result = bench.run("database", observer=recorder)
        for row, record in zip(recorder.rows, result.epochs):
            assert row["index"] == record.index
            assert row["instructions"] == record.instructions
            assert row["trigger"] == record.trigger.value

    def test_termination_histogram_matches_result(self, bench):
        recorder = EpochTimelineRecorder()
        result = bench.run("database", observer=recorder)
        expected = {
            cond.value: count
            for cond, count in result.termination_histogram().items()
        }
        assert recorder.termination_histogram() == expected

    def test_summary_epochs_per_1k(self, bench):
        recorder = EpochTimelineRecorder()
        result = bench.run("database", observer=recorder)
        summary = recorder.summary()
        assert summary["epochs"] == result.epoch_count
        measured = sum(record.instructions for record in result.epochs)
        assert summary["instructions"] == measured
        assert summary["epochs_per_1k_insts"] == pytest.approx(
            1000.0 * result.epoch_count / measured
        )

    def test_occupancy_hwms_surface_in_result(self, bench):
        recorder = EpochTimelineRecorder()
        result = bench.run(
            "database", store_buffer=8, store_queue=16,
            observer=recorder,
        )
        # The always-on slow-path HWMs land in the result; the recorder
        # samples at epoch begin so its view can only be tighter.
        assert result.sq_occupancy_hwm >= recorder.sq_occupancy_hwm
        assert result.sq_occupancy_hwm > 0


class TestApiTracing:
    def test_run_trace_writes_epoch_per_epoch(self, tmp_path):
        result = api.run(
            "database", settings=SMALL, cache_dir=None,
            trace=tmp_path / "trace",
        )
        events = load_events(tmp_path / "trace")
        epochs = [e for e in events if e["kind"] == "epoch"]
        assert len(epochs) == result.epoch_count

    def test_run_rejects_trace_and_obs_together(self):
        with pytest.raises(ValueError, match="not both"):
            api.run(
                "database", settings=SMALL, cache_dir=None,
                trace="/tmp/x", obs=ObsOptions.for_trace("/tmp/x"),
            )

    def test_sweep_trace_counts_epochs_across_workers(self, tmp_path):
        runner = api.EngineRunner(
            settings=SMALL, cache_dir=tmp_path / "cache", workers=2,
            obs=ObsOptions.for_trace(tmp_path / "trace"),
        )
        spec = api.SweepSpec.build(
            "database", store_prefetch=["sp0", "sp2"],
        )
        report = runner.run(spec.to_jobs())
        report.raise_on_failure()
        events = load_events(tmp_path / "trace")
        epochs = [e for e in events if e["kind"] == "epoch"]
        assert len(epochs) == sum(
            r.epoch_count for r in report.results() if r is not None
        )
        assert len(epochs) > 0
        assert report.ok_count == 2

    def test_sweep_rejects_obs_with_explicit_runner(self, tmp_path):
        runner = api.EngineRunner(settings=SMALL, cache_dir=None)
        spec = api.SweepSpec.build("database", store_prefetch=["sp0"])
        with pytest.raises(ValueError, match="explicit runner"):
            api.sweep(spec, runner=runner, trace=tmp_path / "trace")


class TestReporting:
    @pytest.fixture(scope="class")
    def events(self):
        tracer = Tracer()
        recorder = EpochTimelineRecorder(tracer, label="db/pc")
        bench = Workbench(SMALL)
        with tracer.span("job", job="db/pc"):
            bench.run("database", observer=recorder)
        return tracer.events

    def test_summarize_digest(self, events):
        digest = summarize(events)
        assert digest["epochs"] == digest["kinds"]["epoch"]
        assert 0 < digest["instructions"] <= SMALL.measure
        assert digest["epochs_per_1k_insts"] > 0
        assert digest["spans"]["job"]["count"] == 1

    def test_timeline_elides_long_traces(self, events):
        text = render_timeline(events, limit=10)
        assert "epochs elided" in text
        assert text.endswith("epochs\n")
        full = render_timeline(events, limit=0)
        assert "epochs elided" not in full

    def test_timeline_empty_trace(self):
        assert "no epoch events" in render_timeline([])

    def test_report_sections(self, events):
        text = render_report(events)
        assert "trace summary" in text
        assert "termination conditions" in text
        assert "instruction_miss" in text
        assert "span" in text


class TestPhaseProfiler:
    def test_samples_every_entry_at_full_rate(self):
        profiler = PhaseProfiler()
        for _ in range(5):
            with profiler.phase("annotate"):
                pass
        summary = profiler.summary()
        assert summary["annotate"]["entries"] == 5
        assert summary["annotate"]["sampled"] == 5

    def test_strided_sampling(self):
        profiler = PhaseProfiler(sample_rate=0.25)
        for _ in range(8):
            with profiler.phase("simulate"):
                pass
        summary = profiler.summary()
        assert summary["simulate"]["entries"] == 8
        assert summary["simulate"]["sampled"] == 2

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PhaseProfiler(sample_rate=0.0)
        with pytest.raises(ValueError):
            PhaseProfiler(sample_rate=1.5)
