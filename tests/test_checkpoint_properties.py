"""Property-style checkpoint/resume identity across random configurations.

A seeded sample of the configuration space -- consistency variant (PC/WC),
SMAC geometry, store prefetch mode, Hardware Scout mode, SLE, and queue
sizing -- each checked for the subsystem's core invariant: interrupting at
a checkpoint and resuming reproduces the straight-through run bit-for-bit.
"""

from __future__ import annotations

import random

import pytest

from repro.core import MlpSimulator
from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench
from repro.harness.figures import smac_memory_config

TINY = ExperimentSettings(warmup=1000, measure=3000, seed=7,
                          calibrate=False)

#: Seeded so the sampled points are stable run to run; widen the sample by
#: bumping COUNT, not by unseeding.
SEED = 20250806
COUNT = 6


def _sample_space(rng: random.Random):
    return {
        "variant": rng.choice(["pc", "wc"]),
        "smac_entries": rng.choice([None, 512]),
        "core_changes": {
            "store_prefetch": rng.choice(["sp0", "sp1", "sp2"]),
            "scout": rng.choice(["none", "hws0", "hws1", "hws2"]),
            "sle": rng.choice([True, False]),
            "store_queue": rng.choice([16, 32, 64]),
        },
    }


def _samples():
    rng = random.Random(SEED)
    return [_sample_space(rng) for _ in range(COUNT)]


@pytest.fixture(scope="module")
def bench():
    return Workbench(TINY)


@pytest.mark.parametrize(
    "sample", _samples(),
    ids=lambda s: "-".join(
        [s["variant"], f"smac{s['smac_entries'] or 0}"]
        + [str(v) for v in s["core_changes"].values()]
    ),
)
def test_checkpoint_resume_is_bit_identical(bench, sample):
    from repro.harness.sweeps import coerce_axis_value

    memory = (
        smac_memory_config(sample["smac_entries"])
        if sample["smac_entries"] is not None else None
    )
    trace = bench.annotated("database", sample["variant"], memory)
    core_changes = {
        name: coerce_axis_value(name, value)
        for name, value in sample["core_changes"].items()
    }
    config = bench.resolved_config(
        "database", sample["variant"], **core_changes,
    )

    golden = MlpSimulator(config).run(trace)

    snapshots = []
    checkpointed = MlpSimulator(config).run(
        trace, checkpoint_every=700, checkpoint_sink=snapshots.append,
    )
    assert checkpointed == golden, "the sink must not perturb the run"
    assert snapshots, "a 4000-instruction run crosses several 700-marks"

    for snapshot in (snapshots[0], snapshots[len(snapshots) // 2],
                     snapshots[-1]):
        resumed = MlpSimulator(config).run(trace, resume=snapshot)
        assert resumed == golden
