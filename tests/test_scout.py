"""The speculative look-ahead pass shared by Hardware Scout and
prefetch-past-serializing."""

from __future__ import annotations

from repro.core import RegisterScoreboard
from repro.core.scout import run_scout
from repro.isa import InstructionClass as IC

from conftest import annotated


def scout(trace, start=0, budget=100, board=None, epoch=0, resolved=None,
          **kwargs):
    return run_scout(
        trace,
        start,
        budget,
        board or RegisterScoreboard(),
        epoch,
        resolved if resolved is not None else set(),
        **kwargs,
    )


class TestPrefetching:
    def test_prefetches_independent_load_misses(self):
        trace = [
            annotated(IC.LOAD, miss=True, dest=5, address=0x1000),
            annotated(IC.LOAD, miss=True, dest=6, address=0x2000),
        ]
        outcome = scout(trace)
        assert outcome.loads == 2
        assert outcome.resolved == {0, 1}

    def test_prefetches_instruction_misses(self):
        trace = [annotated(IC.ALU, imiss=True, dest=5)]
        assert scout(trace).insts == 1

    def test_stores_only_when_enabled(self):
        trace = [annotated(IC.STORE, miss=True, address=0x1000)]
        assert scout(trace).stores == 0
        assert scout(trace, prefetch_stores=True).stores == 1

    def test_smac_hit_stores_not_prefetched(self):
        trace = [annotated(IC.STORE, smac=True, address=0x1000)]
        assert scout(trace, prefetch_stores=True).stores == 0

    def test_already_resolved_indices_skipped(self):
        trace = [annotated(IC.LOAD, miss=True, dest=5, address=0x1000)]
        assert scout(trace, resolved={0}).loads == 0

    def test_budget_limits_scan(self):
        trace = [
            annotated(IC.LOAD, miss=True, dest=5, address=0x1000 + i * 64)
            for i in range(10)
        ]
        outcome = scout(trace, budget=3)
        assert outcome.loads == 3
        assert outcome.scanned == 3

    def test_zero_budget_is_empty(self):
        trace = [annotated(IC.LOAD, miss=True, dest=5)]
        assert scout(trace, budget=0).total == 0


class TestPoisoning:
    def test_dependent_load_cannot_prefetch(self):
        trace = [
            annotated(IC.LOAD, miss=True, dest=5, address=0x1000),
            annotated(IC.LOAD, miss=True, dest=6, srcs=(5,), address=0x2000),
        ]
        outcome = scout(trace)
        assert outcome.loads == 1  # the pointer-chase target is unknown

    def test_poison_propagates_through_alu(self):
        trace = [
            annotated(IC.LOAD, miss=True, dest=5, address=0x1000),
            annotated(IC.ALU, dest=6, srcs=(5,)),
            annotated(IC.LOAD, miss=True, dest=7, srcs=(6,), address=0x2000),
        ]
        assert scout(trace).loads == 1

    def test_clean_alu_clears_poison(self):
        trace = [
            annotated(IC.LOAD, miss=True, dest=5, address=0x1000),
            annotated(IC.ALU, dest=5, srcs=(1,)),  # rewrites r5 from clean r1
            annotated(IC.LOAD, miss=True, dest=7, srcs=(5,), address=0x2000),
        ]
        assert scout(trace).loads == 2

    def test_architecturally_inflight_values_poison(self):
        board = RegisterScoreboard()
        board.produce_off_chip(5, 0)  # outstanding in epoch 0
        trace = [
            annotated(IC.LOAD, miss=True, dest=6, srcs=(5,), address=0x2000),
        ]
        assert scout(trace, board=board, epoch=0).loads == 0


class TestControl:
    def test_serializers_are_ignored(self):
        trace = [
            annotated(IC.MEMBAR),
            annotated(IC.CAS, address=0x40, dest=5),
            annotated(IC.LOAD, miss=True, dest=6, address=0x2000),
        ]
        assert scout(trace).loads >= 1

    def test_mispredicted_poisoned_branch_stops_scout(self):
        trace = [
            annotated(IC.LOAD, miss=True, dest=5, address=0x1000),
            annotated(IC.BRANCH, mispred=True, srcs=(5,)),
            annotated(IC.LOAD, miss=True, dest=6, address=0x2000),
        ]
        outcome = scout(trace)
        assert outcome.loads == 1  # nothing beyond the unresolvable branch

    def test_mispredicted_clean_branch_continues(self):
        trace = [
            annotated(IC.BRANCH, mispred=True, srcs=(1,)),
            annotated(IC.LOAD, miss=True, dest=6, address=0x2000),
        ]
        assert scout(trace).loads == 1
