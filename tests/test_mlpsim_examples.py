"""MLPsim against the paper's worked examples (Section 3).

These are the ground truth for the epoch model: the paper states the exact
epoch sets and MLP for four code sequences under a 2-entry store buffer,
2-entry store queue configuration.
"""

from __future__ import annotations

import pytest

from repro.config import (
    ConsistencyModel,
    CoreConfig,
    SimulationConfig,
    StorePrefetchMode,
)
from repro.core import MlpSimulator, TerminationCondition, TriggerKind
from repro.isa import InstructionClass as IC

from conftest import annotated


def run(trace, **core_kwargs):
    defaults = dict(
        store_buffer=2,
        store_queue=2,
        store_prefetch=StorePrefetchMode.NONE,
        coalesce_bytes=0,
    )
    defaults.update(core_kwargs)
    config = SimulationConfig(core=CoreConfig(**defaults))
    return MlpSimulator(config).run(trace)


@pytest.fixture
def example1():
    """Missing store, four hit stores, missing load."""
    return [
        annotated(IC.STORE, miss=True, address=0x1000),
        annotated(IC.STORE, address=0x2000),
        annotated(IC.STORE, address=0x3000),
        annotated(IC.STORE, address=0x4000),
        annotated(IC.STORE, address=0x5000),
        annotated(IC.LOAD, miss=True, dest=5, address=0x6000),
    ]


class TestExample1:
    def test_pc_two_epochs(self, example1):
        result = run(example1)
        assert result.epoch_count == 2
        assert result.mlp == pytest.approx(1.0)

    def test_pc_first_epoch_is_store_buffer_full(self, example1):
        result = run(example1)
        first = result.epochs[0]
        assert first.trigger is TriggerKind.STORE
        assert first.termination is (
            TerminationCondition.STORE_QUEUE_STORE_BUFFER_FULL
        )
        assert first.store_misses == 1
        assert first.load_misses == 0

    def test_wc_single_epoch_with_both_misses(self, example1):
        result = run(example1, consistency=ConsistencyModel.WC)
        assert result.epoch_count == 1
        assert result.epochs[0].store_misses == 1
        assert result.epochs[0].load_misses == 1
        assert result.mlp == pytest.approx(2.0)


class TestExample2:
    """Missing store, serializing instruction, missing load."""

    @pytest.fixture
    def trace(self):
        return [
            annotated(IC.STORE, miss=True, address=0x1000),
            annotated(IC.MEMBAR),
            annotated(IC.LOAD, miss=True, dest=5, address=0x6000),
        ]

    def test_two_epochs(self, trace):
        result = run(trace)
        assert result.epoch_count == 2
        assert result.mlp == pytest.approx(1.0)

    def test_first_epoch_store_serialize(self, trace):
        result = run(trace)
        assert result.epochs[0].termination is (
            TerminationCondition.STORE_SERIALIZE
        )
        assert result.epochs[0].store_misses == 1

    def test_load_issues_only_after_serializer_drains(self, trace):
        result = run(trace)
        assert result.epochs[1].load_misses == 1
        assert result.epochs[1].store_misses == 0


class TestExample3:
    """Missing load, missing store, missing instruction, missing store."""

    @pytest.fixture
    def trace(self):
        return [
            annotated(IC.LOAD, miss=True, dest=5, address=0x6000),
            annotated(IC.STORE, miss=True, address=0x1000),
            annotated(IC.ALU, imiss=True, dest=6),
            annotated(IC.STORE, miss=True, address=0x2000),
        ]

    def test_three_epochs_mlp(self, trace):
        result = run(trace)
        assert result.epoch_count == 3
        assert result.mlp == pytest.approx(4 / 3)

    def test_first_epoch_overlaps_load_and_inst_miss(self, trace):
        result = run(trace)
        first = result.epochs[0]
        assert first.load_misses == 1
        assert first.inst_misses == 1
        assert first.termination is TerminationCondition.INSTRUCTION_MISS

    def test_stores_commit_serially_without_prefetch(self, trace):
        result = run(trace)
        assert [e.store_misses for e in result.epochs] == [0, 1, 1]

    def test_prefetch_at_execute_overlaps_both_stores(self, trace):
        result = run(trace, store_prefetch=StorePrefetchMode.AT_EXECUTE)
        # I2's request issues at dispatch, overlapping the first epoch;
        # I4 executes after the I-miss resolves.
        assert result.epoch_count == 2
        assert result.epochs[0].store_misses == 1
        assert result.epochs[0].load_misses == 1


class TestExample4:
    """Three missing stores before a serializing instruction; SQ = 2."""

    @pytest.fixture
    def trace(self):
        return [
            annotated(IC.STORE, miss=True, address=0x1000),
            annotated(IC.STORE, miss=True, address=0x2000),
            annotated(IC.STORE, miss=True, address=0x3000),
            annotated(IC.MEMBAR),
        ]

    @pytest.mark.parametrize(
        "mode,expected_epochs,expected_profile",
        [
            (StorePrefetchMode.NONE, 3, [1, 1, 1]),
            (StorePrefetchMode.AT_RETIRE, 2, [2, 1]),
            (StorePrefetchMode.AT_EXECUTE, 1, [3]),
        ],
    )
    def test_prefetch_modes(self, trace, mode, expected_epochs, expected_profile):
        result = run(trace, store_prefetch=mode)
        assert result.epoch_count == expected_epochs
        assert [e.store_misses for e in result.epochs] == expected_profile

    def test_all_terminations_are_store_serialize(self, trace):
        result = run(trace)
        assert all(
            e.termination is TerminationCondition.STORE_SERIALIZE
            for e in result.epochs
        )


class TestExample5:
    """PC critical section: missing store, casa, missing load, missing
    store, ..., release store, missing load (paper Example 5)."""

    @pytest.fixture
    def trace(self):
        lock = 0x9000
        return [
            annotated(IC.STORE, miss=True, address=0x1000),
            annotated(IC.CAS, address=lock, dest=7, lock_acquire=True),
            annotated(IC.LOAD, miss=True, dest=8, address=0x6000),
            annotated(IC.STORE, miss=True, address=0x2000),
            annotated(IC.ALU, dest=9),
            annotated(IC.STORE, address=lock, lock_release=True),
            annotated(IC.LOAD, miss=True, dest=10, address=0x7000),
        ]

    def test_casa_blocks_on_missing_store(self, trace):
        result = run(trace, store_queue=8, store_buffer=8)
        assert result.epochs[0].termination is (
            TerminationCondition.STORE_SERIALIZE
        )
        assert result.epochs[0].store_misses == 1

    def test_critical_section_loads_overlap_after_acquire(self, trace):
        result = run(trace, store_queue=8, store_buffer=8)
        # Epoch 2 contains the casa plus both missing loads of the section,
        # including the post-section load that speculates above the release.
        second = result.epochs[1]
        assert second.load_misses == 2

    def test_section_store_joins_epoch_with_prefetch_at_execute(self, trace):
        # Under Sp0 the section's missing store commits in its own later
        # epoch; prefetch at execute overlaps it with the section's loads.
        sp0 = run(trace, store_queue=8, store_buffer=8)
        sp2 = run(
            trace,
            store_queue=8,
            store_buffer=8,
            store_prefetch=StorePrefetchMode.AT_EXECUTE,
        )
        assert sp2.epoch_count < sp0.epoch_count
        assert sp2.epochs[1].store_misses == 1
        assert sp2.epochs[1].load_misses == 2


class TestExample6:
    """WC critical section: isync does not wait for the store queue."""

    @pytest.fixture
    def trace(self):
        lock = 0x9000
        return [
            annotated(IC.STORE, miss=True, address=0x1000),
            annotated(IC.LOAD_LOCKED, address=lock, dest=7),
            annotated(IC.STORE_COND, address=lock, lock_acquire=True),
            annotated(IC.ISYNC),
            annotated(IC.LOAD, miss=True, dest=8, address=0x6000),
            annotated(IC.STORE, miss=True, address=0x2000),
            annotated(IC.LWSYNC),
            annotated(IC.STORE, address=lock, lock_release=True),
            annotated(IC.LOAD, miss=True, dest=10, address=0x7000),
        ]

    def test_single_epoch_under_wc(self, trace):
        result = run(
            trace,
            consistency=ConsistencyModel.WC,
            store_queue=8,
            store_buffer=8,
        )
        # Everything overlaps: the missing store before the lock, the
        # critical-section misses, and the post-section load.
        assert result.epoch_count == 1
        first = result.epochs[0]
        assert first.store_misses == 2
        assert first.load_misses == 2

    def test_pc_needs_more_epochs_than_wc(self, trace):
        wc = run(
            trace, consistency=ConsistencyModel.WC,
            store_queue=8, store_buffer=8,
        )
        pc_trace = [
            annotated(IC.STORE, miss=True, address=0x1000),
            annotated(IC.CAS, address=0x9000, dest=7, lock_acquire=True),
            annotated(IC.LOAD, miss=True, dest=8, address=0x6000),
            annotated(IC.STORE, miss=True, address=0x2000),
            annotated(IC.STORE, address=0x9000, lock_release=True),
            annotated(IC.LOAD, miss=True, dest=10, address=0x7000),
        ]
        pc = run(pc_trace, store_queue=8, store_buffer=8)
        assert pc.epoch_count > wc.epoch_count
