"""Axis-name/value validation for sweeps (repro.harness.sweeps)."""

from __future__ import annotations

import pytest

from repro.config import ConsistencyModel, ScoutMode, StorePrefetchMode
from repro.harness.sweeps import (
    AXIS_BOOLS,
    AXIS_ENUMS,
    AXIS_INTS,
    SweepSpec,
    coerce_axis_value,
    valid_axes,
)


class TestValidAxes:
    def test_covers_every_declared_axis(self):
        axes = valid_axes()
        for name in (*AXIS_INTS, *AXIS_BOOLS, *AXIS_ENUMS):
            assert name in axes

    def test_descriptions_name_the_enum_spellings(self):
        axes = valid_axes()
        assert "sp1" in axes["store_prefetch"]
        assert "hws2" in axes["scout"]
        assert "wc" in axes["consistency"]


class TestCoercion:
    def test_enum_spellings(self):
        assert coerce_axis_value("store_prefetch", "sp2") is \
            StorePrefetchMode.AT_EXECUTE
        assert coerce_axis_value("scout", "hws1") is ScoutMode.HWS1
        assert coerce_axis_value("consistency", "WC") is ConsistencyModel.WC

    def test_enum_members_pass_through(self):
        assert coerce_axis_value("scout", ScoutMode.NONE) is ScoutMode.NONE

    def test_bool_and_int_spellings(self):
        assert coerce_axis_value("sle", "true") is True
        assert coerce_axis_value("perfect_stores", False) is False
        assert coerce_axis_value("store_queue", "64") == 64
        assert coerce_axis_value("rob", 128) == 128


class TestActionableErrors:
    def test_unknown_axis_lists_every_valid_axis(self):
        with pytest.raises(ValueError) as excinfo:
            coerce_axis_value("store_que", 16)
        message = str(excinfo.value)
        assert "unknown sweep axis 'store_que'" in message
        for name in valid_axes():
            assert name in message

    def test_bad_enum_value_lists_the_spellings(self):
        with pytest.raises(ValueError) as excinfo:
            coerce_axis_value("store_prefetch", "sp9")
        message = str(excinfo.value)
        assert "'sp9'" in message
        assert "sp0" in message and "sp1" in message and "sp2" in message

    def test_wrong_typed_enum_value_rejected(self):
        with pytest.raises(ValueError):
            coerce_axis_value("store_prefetch", ScoutMode.HWS2)

    @pytest.mark.parametrize("value", ["maybe", 3, None])
    def test_untypeable_bool_rejected(self, value):
        with pytest.raises(ValueError) as excinfo:
            coerce_axis_value("sle", value)
        assert "'true'/'false'" in str(excinfo.value)

    @pytest.mark.parametrize("value", ["sixteen", True, 2.5, None])
    def test_untypeable_int_rejected(self, value):
        with pytest.raises(ValueError) as excinfo:
            coerce_axis_value("store_queue", value)
        assert "integer" in str(excinfo.value)

    def test_sweep_spec_build_surfaces_the_same_message(self):
        with pytest.raises(ValueError) as excinfo:
            SweepSpec.build("database", store_que=[16, 32])
        assert "unknown sweep axis" in str(excinfo.value)


class TestSmtAxes:
    """The job-level ``contexts``/``scheduler`` sweep axes."""

    def test_listed_in_valid_axes(self):
        axes = valid_axes()
        assert "SMT" in axes["contexts"]
        assert "mlp" in axes["scheduler"]

    def test_contexts_coercion(self):
        assert coerce_axis_value("contexts", "2") == 2
        assert coerce_axis_value("contexts", 4) == 4

    @pytest.mark.parametrize("value", ["two", 0, -1, True, 2.5, None])
    def test_bad_contexts_rejected(self, value):
        with pytest.raises(ValueError) as excinfo:
            coerce_axis_value("contexts", value)
        assert "integer >= 1" in str(excinfo.value)

    def test_scheduler_coercion_normalizes_case(self):
        assert coerce_axis_value("scheduler", "MLP") == "mlp"
        assert coerce_axis_value("scheduler", "round_robin") == "round_robin"

    def test_unknown_scheduler_lists_policies(self):
        with pytest.raises(ValueError) as excinfo:
            coerce_axis_value("scheduler", "fifo")
        assert "valid schedulers" in str(excinfo.value)

    @pytest.mark.parametrize("value", [3, None, True])
    def test_non_string_scheduler_rejected(self, value):
        with pytest.raises(ValueError) as excinfo:
            coerce_axis_value("scheduler", value)
        assert "scheduler" in str(excinfo.value)

    def test_to_jobs_lifts_smt_axes_onto_the_spec(self):
        spec = SweepSpec.build(
            "database",
            contexts=[1, 2],
            scheduler=["round_robin", "mlp"],
            store_queue=[16],
        )
        jobs = spec.to_jobs()
        assert len(jobs) == 4
        for job in jobs:
            # Job-level axes never leak into the core knobs.
            assert dict(job.core_changes) == {"store_queue": 16}
        assert {(job.contexts, job.scheduler) for job in jobs} == {
            (1, "round_robin"), (1, "mlp"), (2, "round_robin"), (2, "mlp"),
        }

    def test_points_keep_the_full_tuple_for_labels(self):
        spec = SweepSpec.build("database", contexts=[2])
        (point,) = spec.points()
        assert point == (("contexts", 2),)
