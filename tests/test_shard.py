"""Deterministic trace sharding (repro.shard) and sharded execution.

The acceptance contract of the subsystem: for N in {2, 4, 8}, on both
consistency variants, running the shards independently and merging yields
the *same object* a straight-through simulation produces — not statistics
that agree, the identical epoch list and counters.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import api
from repro.core.epoch import (
    EpochRecord,
    TerminationCondition,
    TriggerKind,
)
from repro.core.results import SimulationResult
from repro.engine.runner import EngineRunner, JobSpec
from repro.errors import ShardBoundaryError
from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench
from repro.shard import merge_results, run_shard_job, shard_plan_for

SMALL = ExperimentSettings(warmup=1500, measure=4000, seed=11,
                           calibrate=False)


@pytest.fixture(scope="module")
def bench():
    return Workbench(SMALL)


@pytest.fixture(scope="module")
def goldens(bench):
    return {
        variant: bench.run("database", variant=variant)
        for variant in ("pc", "wc")
    }


def _runner(tmp_path, **kwargs):
    kwargs.setdefault("settings", SMALL)
    kwargs.setdefault("cache_dir", tmp_path / "cache")
    kwargs.setdefault("workers", 1)
    return EngineRunner(**kwargs)


class TestShardPlan:
    def test_plan_is_deterministic(self, bench):
        spec = JobSpec(workload="database")
        first = shard_plan_for(bench, spec, 4)
        second = shard_plan_for(bench, spec, 4)
        assert first == second

    def test_plan_shape(self, bench):
        spec = JobSpec(workload="database")
        plan = shard_plan_for(bench, spec, 4)
        plan.validate()
        assert 1 <= plan.shard_count <= 4
        bounds = plan.bounds
        assert bounds[0] == 0 and bounds[-1] == plan.instructions
        assert list(bounds) == sorted(set(bounds))

    def test_boundary_starved_plan_degrades(self, bench):
        spec = JobSpec(workload="database")
        generous = shard_plan_for(bench, spec, 64)
        assert generous.requested == 64
        assert generous.shard_count <= 64
        generous.validate()
        # never an unsafe cut: every interior bound is a probed point
        small = shard_plan_for(bench, spec, 2)
        assert set(small.bounds) <= set(generous.bounds)

    def test_api_shard_plan_facade(self, bench):
        plan = api.shard_plan("database", 4, bench=bench)
        assert plan == shard_plan_for(bench, JobSpec(workload="database"), 4)


class TestShardedBitIdentity:
    @pytest.mark.parametrize("variant", ["pc", "wc"])
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_merged_equals_straight_through(
        self, tmp_path, goldens, variant, shards,
    ):
        runner = _runner(tmp_path)
        spec = JobSpec(workload="database", variant=variant)
        report = runner.run_sharded(spec, shards)
        report.raise_on_failure()
        assert report.merged == goldens[variant]

    def test_single_shard_with_checkpoints(self, tmp_path, goldens):
        runner = _runner(tmp_path)
        spec = JobSpec(workload="database")
        report = runner.run_sharded(spec, 1, checkpoint_every=1000)
        report.raise_on_failure()
        assert report.merged == goldens["pc"]
        assert report.checkpoints_written > 0

    def test_run_shard_job_rejects_bad_bounds(self, bench):
        trace_len = len(bench.annotated("database", "pc"))
        bad = JobSpec(
            workload="database", shard_start=10, shard_stop=trace_len + 10,
        )
        with pytest.raises(ShardBoundaryError):
            run_shard_job(bench, bad)


class TestApiRunSharded:
    def test_api_run_routes_through_sharded_path(
        self, tmp_path, goldens,
    ):
        result = api.run(
            "database", settings=SMALL, cache_dir=tmp_path / "cache",
            shards=4, checkpoint_every=2000, workers=1,
        )
        assert result == goldens["pc"]

    def test_api_run_rejects_bench_with_shards(self, bench):
        with pytest.raises(ValueError):
            api.run("database", bench=bench, shards=2)


def _result(*terminations):
    epochs = [
        EpochRecord(
            index=i, trigger=TriggerKind.LOAD, termination=termination,
            instructions=10,
        )
        for i, termination in enumerate(terminations)
    ]
    return SimulationResult(instructions=10 * len(epochs), epochs=epochs)


class TestMerge:
    def test_merge_renumbers_and_sums(self):
        first = _result(TerminationCondition.WINDOW_FULL,
                        TerminationCondition.WINDOW_FULL)
        second = _result(TerminationCondition.END_OF_TRACE)
        merged = merge_results([first, second])
        assert merged.instructions == 30
        assert [e.index for e in merged.epochs] == [0, 1, 2]
        assert merged.epochs[2].termination == \
            TerminationCondition.END_OF_TRACE

    def test_merge_of_one_is_identity_modulo_copy(self):
        only = _result(TerminationCondition.END_OF_TRACE)
        merged = merge_results([only])
        assert merged == only
        assert merged is not only

    def test_empty_parts_rejected(self):
        with pytest.raises(ShardBoundaryError):
            merge_results([])

    def test_end_of_trace_in_interior_part_rejected(self):
        first = _result(TerminationCondition.END_OF_TRACE)
        second = _result(TerminationCondition.WINDOW_FULL)
        with pytest.raises(ShardBoundaryError):
            merge_results([first, second])

    def test_hwms_take_the_max(self):
        first = dataclasses.replace(
            _result(TerminationCondition.WINDOW_FULL),
            sb_occupancy_hwm=3, sq_occupancy_hwm=1,
        )
        second = dataclasses.replace(
            _result(TerminationCondition.END_OF_TRACE),
            sb_occupancy_hwm=2, sq_occupancy_hwm=5,
        )
        merged = merge_results([first, second])
        assert merged.sb_occupancy_hwm == 3
        assert merged.sq_occupancy_hwm == 5
