"""Trace annotation: one-pass miss classification."""

from __future__ import annotations

import pytest

from repro.config import MemoryConfig, SimulationConfig, SystemConfig
from repro.frontend import BranchPredictor
from repro.isa import InstructionClass as IC
from repro.memory import MemorySystem, annotate_trace
from repro.multiproc import MultiChipSystem, SharingModel

from conftest import make_inst


@pytest.fixture
def memory():
    return MemorySystem(MemoryConfig())


class TestClassification:
    def test_cold_load_annotated_as_miss(self, memory):
        trace = [make_inst(IC.LOAD, address=0x40000, dest=5)]
        [(inst, info)] = annotate_trace(trace, memory)
        assert info.data_miss

    def test_warm_load_annotated_as_hit(self, memory):
        trace = [
            make_inst(IC.LOAD, address=0x40000, dest=5),
            make_inst(IC.LOAD, pc=0x1004, address=0x40000, dest=6),
        ]
        annotated = annotate_trace(trace, memory)
        assert annotated[0][1].data_miss
        assert not annotated[1][1].data_miss

    def test_instruction_miss_flag(self, memory):
        trace = [make_inst(IC.ALU, pc=0x5000, dest=5)]
        [(inst, info)] = annotate_trace(trace, memory)
        assert info.inst_miss

    def test_cas_classified_as_data_access(self, memory):
        trace = [make_inst(IC.CAS, address=0x40000, dest=5)]
        [(inst, info)] = annotate_trace(trace, memory)
        assert info.data_miss

    def test_store_smac_flag_propagates(self):
        from repro.config import SmacConfig
        memory = MemorySystem(MemoryConfig(smac=SmacConfig(entries=64,
                                                           associativity=2)))
        memory.store(0x100000)
        stride = memory.config.l2.num_sets * 64
        evict = [
            make_inst(IC.LOAD, pc=0x1000 + 4 * i,
                      address=0x100000 + (i + 1) * stride, dest=5)
            for i in range(6)
        ]
        trace = evict + [make_inst(IC.STORE, pc=0x2000, address=0x100000)]
        annotated = annotate_trace(trace, memory)
        store_info = annotated[-1][1]
        assert store_info.data_miss and store_info.smac_hit


class TestWarmup:
    def test_warmup_discarded_and_stats_reset(self, memory):
        trace = [
            make_inst(IC.LOAD, pc=0x1000 + 4 * i, address=0x40000 + 64 * i,
                      dest=5)
            for i in range(100)
        ]
        annotated = annotate_trace(trace, memory, warmup=60)
        assert len(annotated) == 40
        assert memory.stats.loads == 40

    def test_zero_warmup_keeps_everything(self, memory):
        trace = [make_inst(IC.ALU, dest=5)] * 10
        assert len(annotate_trace(trace, memory)) == 10

    def test_negative_warmup_rejected(self, memory):
        with pytest.raises(ValueError):
            annotate_trace([], memory, warmup=-1)


class TestPredictorIntegration:
    def test_mispredict_flags_settle_after_training(self, memory):
        predictor = BranchPredictor(SimulationConfig().core.branch)
        branch = make_inst(IC.BRANCH, taken=True, target=0x2000)
        trace = [branch] * 50
        annotated = annotate_trace(trace, memory, predictor=predictor)
        assert not annotated[-1][1].mispredicted


class TestSharingIntegration:
    def test_remote_writes_invalidate_between_instructions(self):
        memory_config = MemoryConfig()
        sharing = SharingModel(
            0x100000, 4096, write_rate_per_1000=1000, remote_nodes=1, seed=1
        )
        system = MultiChipSystem(memory_config, SystemConfig(nodes=2), sharing)
        trace = [
            make_inst(IC.LOAD, pc=0x1000 + 4 * i, address=0x100000, dest=5)
            for i in range(2000)
        ]
        annotated = annotate_trace(trace, system.memory, system=system)
        # The line is repeatedly stolen by remote writers, so some re-loads
        # miss even though the address never changes.
        remisses = sum(1 for _, info in annotated[1:] if info.data_miss)
        assert remisses > 0

    def test_system_must_wrap_same_memory(self, memory):
        other = MultiChipSystem(MemoryConfig(), SystemConfig(nodes=1))
        with pytest.raises(ValueError):
            annotate_trace([], memory, system=other)
