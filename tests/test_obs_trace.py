"""Tracer and JSONL round-trip tests for :mod:`repro.obs.trace`."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import (
    Tracer,
    correlation,
    correlation_id,
    default_trace_file,
    load_events,
    new_correlation_id,
    read_events,
    set_correlation_id,
    trace_files,
)


class TestTracerInMemory:
    def test_event_records_schema_fields(self):
        tracer = Tracer()
        record = tracer.event("epoch", "db/pc", index=3, instructions=42)
        assert record["kind"] == "epoch"
        assert record["name"] == "db/pc"
        assert record["index"] == 3
        assert record["instructions"] == 42
        assert record["span"] == ""
        assert record["ts"] > 0
        assert tracer.events == [record]

    def test_events_carry_correlation_id(self):
        tracer = Tracer(trace_id="t0")
        with correlation("job-42"):
            inside = tracer.event("epoch")
        outside = tracer.event("epoch")
        assert inside["corr"] == "job-42"
        # Outside any correlation scope the trace id is the fallback.
        assert outside["corr"] == "t0"

    def test_span_nesting_and_duration(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("epoch")
        kinds = [e["kind"] for e in tracer.events]
        assert kinds == [
            "span_start", "span_start", "epoch", "span_end", "span_end",
        ]
        outer_start, inner_start, epoch, inner_end, outer_end = tracer.events
        assert inner_start["parent"] == outer_start["id"]
        assert epoch["span"] == inner_start["id"]
        assert inner_end["dur"] >= 0.0
        assert outer_end["dur"] >= inner_end["dur"]
        # After both spans closed, new events are unparented again.
        assert tracer.event("epoch")["span"] == ""


class TestTracerFileSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "deep" / "trace.jsonl"
        with Tracer(path) as tracer:
            tracer.event("epoch", index=0)
            with tracer.span("job"):
                pass
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        for line in lines:
            assert isinstance(json.loads(line), dict)

    def test_append_mode_concatenates_runs(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for index in range(2):
            with Tracer(path) as tracer:
                tracer.event("epoch", index=index)
        events = load_events(path)
        assert [e["index"] for e in events] == [0, 1]

    def test_round_trip_through_read_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path) as tracer:
            written = tracer.event("epoch", index=7, sb_occ=2)
        [read] = load_events(path)
        assert read == written


class TestReaders:
    def test_directory_reads_all_jsonl_sorted(self, tmp_path):
        for name, index in [("b.jsonl", 1), ("a.jsonl", 0)]:
            with Tracer(tmp_path / name) as tracer:
                tracer.event("epoch", index=index)
        (tmp_path / "notes.txt").write_text("not a trace\n")
        assert [p.name for p in trace_files(tmp_path)] == [
            "a.jsonl", "b.jsonl",
        ]
        assert [e["index"] for e in load_events(tmp_path)] == [0, 1]

    def test_strict_raises_on_truncated_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "epoch"}\n{"kind": "trunc\n')
        with pytest.raises(ValueError, match=r"trace\.jsonl:2"):
            load_events(path)

    def test_non_strict_skips_garbage(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"kind": "epoch"}\n'
            "\n"
            "not json\n"
            "[1, 2]\n"
            '{"kind": "termination"}\n'
        )
        events = load_events(path, strict=False)
        assert [e["kind"] for e in events] == ["epoch", "termination"]

    def test_strict_rejects_non_object_events(self):
        with pytest.raises(ValueError, match="not an object"):
            load_events(["[1, 2]"])

    def test_reads_from_line_iterable(self):
        events = list(read_events(['{"kind": "epoch"}']))
        assert events == [{"kind": "epoch"}]


class TestContext:
    def test_default_trace_file_is_per_pid(self, tmp_path):
        path = default_trace_file(tmp_path)
        assert path == tmp_path / f"trace-{os.getpid()}.jsonl"

    def test_correlation_scope_restores_previous(self):
        set_correlation_id("outer")
        with correlation("inner"):
            assert correlation_id() == "inner"
        assert correlation_id() == "outer"
        set_correlation_id("")

    def test_new_correlation_id_is_unique(self):
        assert new_correlation_id() != new_correlation_id()
