"""Tracer and JSONL round-trip tests for :mod:`repro.obs.trace`."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import (
    Tracer,
    correlation,
    correlation_id,
    default_trace_file,
    load_events,
    new_correlation_id,
    read_events,
    set_correlation_id,
    trace_files,
)


class TestTracerInMemory:
    def test_event_records_schema_fields(self):
        tracer = Tracer()
        record = tracer.event("epoch", "db/pc", index=3, instructions=42)
        assert record["kind"] == "epoch"
        assert record["name"] == "db/pc"
        assert record["index"] == 3
        assert record["instructions"] == 42
        assert record["span"] == ""
        assert record["ts"] > 0
        assert tracer.events == [record]

    def test_events_carry_correlation_id(self):
        tracer = Tracer(trace_id="t0")
        with correlation("job-42"):
            inside = tracer.event("epoch")
        outside = tracer.event("epoch")
        assert inside["corr"] == "job-42"
        # Outside any correlation scope the trace id is the fallback.
        assert outside["corr"] == "t0"

    def test_span_nesting_and_duration(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("epoch")
        kinds = [e["kind"] for e in tracer.events]
        assert kinds == [
            "span_start", "span_start", "epoch", "span_end", "span_end",
        ]
        outer_start, inner_start, epoch, inner_end, outer_end = tracer.events
        assert inner_start["parent"] == outer_start["id"]
        assert epoch["span"] == inner_start["id"]
        assert inner_end["dur"] >= 0.0
        assert outer_end["dur"] >= inner_end["dur"]
        # After both spans closed, new events are unparented again.
        assert tracer.event("epoch")["span"] == ""


class TestTracerFileSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "deep" / "trace.jsonl"
        with Tracer(path) as tracer:
            tracer.event("epoch", index=0)
            with tracer.span("job"):
                pass
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        for line in lines:
            assert isinstance(json.loads(line), dict)

    def test_append_mode_concatenates_runs(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for index in range(2):
            with Tracer(path) as tracer:
                tracer.event("epoch", index=index)
        events = load_events(path)
        assert [e["index"] for e in events] == [0, 1]

    def test_round_trip_through_read_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path) as tracer:
            written = tracer.event("epoch", index=7, sb_occ=2)
        [read] = load_events(path)
        assert read == written


class TestReaders:
    def test_directory_reads_all_jsonl_sorted(self, tmp_path):
        for name, index in [("b.jsonl", 1), ("a.jsonl", 0)]:
            with Tracer(tmp_path / name) as tracer:
                tracer.event("epoch", index=index)
        (tmp_path / "notes.txt").write_text("not a trace\n")
        assert [p.name for p in trace_files(tmp_path)] == [
            "a.jsonl", "b.jsonl",
        ]
        assert [e["index"] for e in load_events(tmp_path)] == [0, 1]

    def test_strict_raises_on_interior_corruption(self, tmp_path):
        # A corrupt line *followed by more events* is real corruption, not
        # a crash artifact — strict mode must refuse the file.
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"kind": "epoch"}\n'
            '{"kind": "trunc\n'
            '{"kind": "termination"}\n'
        )
        with pytest.raises(ValueError, match=r"trace\.jsonl:2"):
            load_events(path)

    def test_strict_tolerates_truncated_tail(self, tmp_path, caplog):
        # A half-written *final* line is what a SIGKILL mid-write leaves
        # behind; strict mode keeps every complete event and warns.
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "epoch"}\n{"kind": "trunc')
        with caplog.at_level("WARNING", logger="repro.obs.trace"):
            events = load_events(path)
        assert [e["kind"] for e in events] == ["epoch"]
        assert any("truncated trace tail" in r.message for r in caplog.records)

    def test_strict_tolerates_tail_before_blank_lines(self, tmp_path):
        # Trailing blank lines after the torn write don't turn the tail
        # into interior corruption.
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "epoch"}\n{"kind": "trunc\n\n\n')
        events = load_events(path)
        assert [e["kind"] for e in events] == ["epoch"]

    def test_non_strict_skips_garbage(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"kind": "epoch"}\n'
            "\n"
            "not json\n"
            "[1, 2]\n"
            '{"kind": "termination"}\n'
        )
        events = load_events(path, strict=False)
        assert [e["kind"] for e in events] == ["epoch", "termination"]

    def test_strict_rejects_interior_non_object_events(self):
        with pytest.raises(ValueError, match="not an object"):
            load_events(["[1, 2]", '{"kind": "epoch"}'])

    def test_reads_from_line_iterable(self):
        events = list(read_events(['{"kind": "epoch"}']))
        assert events == [{"kind": "epoch"}]


class TestRotation:
    def _fill(self, tracer: Tracer, count: int) -> None:
        for index in range(count):
            tracer.event("epoch", index=index)

    def test_rotates_when_segment_would_exceed_cap(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path, max_bytes=300) as tracer:
            self._fill(tracer, 12)
        segments = sorted(p.name for p in tmp_path.iterdir())
        assert "trace.jsonl" in segments
        assert "trace.jsonl.1" in segments
        # Every rotated segment respects the cap; only the base is open.
        for segment in tmp_path.iterdir():
            if segment.name != "trace.jsonl":
                assert segment.stat().st_size <= 300

    def test_readers_span_rotated_segments_in_order(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path, max_bytes=300) as tracer:
            self._fill(tracer, 12)
        assert len(trace_files(path)) > 1
        # Both the explicit file path and the directory view must
        # reassemble the stream in write order, rotation invisible.
        assert [e["index"] for e in load_events(path)] == list(range(12))
        assert [e["index"] for e in load_events(tmp_path)] == list(range(12))

    def test_segment_order_is_numeric_not_lexicographic(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        # 12 segments so .10 exists: lexicographic order would read
        # .10 before .2 and scramble the stream.
        for index in range(12):
            (tmp_path / f"trace.jsonl.{12 - index}").write_text(
                json.dumps({"kind": "epoch", "index": index}) + "\n"
            )
        path.write_text(json.dumps({"kind": "epoch", "index": 12}) + "\n")
        assert [e["index"] for e in load_events(path)] == list(range(13))

    def test_max_segments_prunes_oldest(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path, max_bytes=200, max_segments=2) as tracer:
            self._fill(tracer, 40)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["trace.jsonl", "trace.jsonl.1", "trace.jsonl.2"]

    def test_append_run_resumes_byte_accounting(self, tmp_path):
        # A tracer reopening an existing file counts its size, so the
        # cap holds across restarts rather than resetting to zero.
        path = tmp_path / "trace.jsonl"
        with Tracer(path, max_bytes=300) as tracer:
            self._fill(tracer, 3)
        size_before = path.stat().st_size
        with Tracer(path, max_bytes=size_before + 10) as tracer:
            self._fill(tracer, 3)
        assert (tmp_path / "trace.jsonl.1").exists()

    def test_no_rotation_without_cap(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path) as tracer:
            self._fill(tracer, 50)
        assert [p.name for p in tmp_path.iterdir()] == ["trace.jsonl"]


class TestContext:
    def test_default_trace_file_is_per_pid(self, tmp_path):
        path = default_trace_file(tmp_path)
        assert path == tmp_path / f"trace-{os.getpid()}.jsonl"

    def test_correlation_scope_restores_previous(self):
        set_correlation_id("outer")
        with correlation("inner"):
            assert correlation_id() == "inner"
        assert correlation_id() == "outer"
        set_correlation_id("")

    def test_new_correlation_id_is_unique(self):
        assert new_correlation_id() != new_correlation_id()
