"""Analysis helpers: termination stacks, MLP profiles, overlap breakdowns."""

from __future__ import annotations

import pytest

from repro.analysis import (
    TERMINATION_ORDER,
    dominant_condition,
    expensive_store_stats,
    mlp_profile,
    overlap_breakdown,
    store_caused_fraction,
    store_mlp_histogram,
    termination_stack,
)
from repro.core import SimulationResult
from repro.core.epoch import EpochRecord, TerminationCondition, TriggerKind


def epoch(index, stores=0, loads=0, insts=0,
          term=TerminationCondition.WINDOW_FULL):
    return EpochRecord(
        index=index, trigger=TriggerKind.LOAD, termination=term,
        store_misses=stores, load_misses=loads, inst_misses=insts,
        instructions=50,
    )


@pytest.fixture
def result():
    return SimulationResult(
        instructions=5000,
        epochs=[
            epoch(0, stores=1, term=TerminationCondition.STORE_SERIALIZE),
            epoch(1, stores=2, loads=1),
            epoch(2, loads=3),
            epoch(3, stores=1,
                  term=TerminationCondition.STORE_QUEUE_STORE_BUFFER_FULL),
        ],
        fully_overlapped_stores=4,
        accelerated_stores=2,
    )


class TestTermination:
    def test_order_matches_figure3_legend(self):
        assert TERMINATION_ORDER[0] is TerminationCondition.STORE_BUFFER_FULL
        assert TERMINATION_ORDER[-1] is TerminationCondition.WINDOW_FULL
        assert len(TERMINATION_ORDER) == 8

    def test_stack_covers_all_conditions(self, result):
        stack = termination_stack(result)
        assert len(stack) == len(TERMINATION_ORDER)
        total = sum(fraction for _, fraction in stack)
        # 3 of 4 epochs have store MLP >= 1; fractions are of all epochs.
        assert total == pytest.approx(0.75)

    def test_store_caused_fraction(self, result):
        assert store_caused_fraction(result) == pytest.approx(0.5)

    def test_dominant_condition(self, result):
        # Among store-MLP>=1 epochs: serialize, window-full, sq+sb-full.
        assert dominant_condition(result) in {
            TerminationCondition.STORE_SERIALIZE,
            TerminationCondition.WINDOW_FULL,
            TerminationCondition.STORE_QUEUE_STORE_BUFFER_FULL,
        }

    def test_empty_result(self):
        empty = SimulationResult(instructions=0)
        assert dominant_condition(empty) is None
        assert store_caused_fraction(empty) == 0.0


class TestMlpStats:
    def test_histogram_includes_zero_bucket(self, result):
        histogram = store_mlp_histogram(result)
        assert histogram[0] == pytest.approx(0.25)
        assert histogram[1] == pytest.approx(0.5)
        assert histogram[2] == pytest.approx(0.25)

    def test_histogram_caps(self):
        result = SimulationResult(instructions=100, epochs=[epoch(0, stores=99)])
        histogram = store_mlp_histogram(result, cap=10)
        assert histogram == {10: 1.0}

    def test_profile_excludes_zero_store_bars(self, result):
        bars = mlp_profile(result)
        assert all(store_mlp >= 1 for store_mlp, _ in bars)

    def test_expensive_stores(self, result):
        stats = expensive_store_stats(result)
        # Epochs 0 and 3: one missing store, nothing else.
        assert stats.expensive_epochs == 2
        assert stats.fraction == pytest.approx(0.5)


class TestOverlap:
    def test_breakdown_totals(self, result):
        breakdown = overlap_breakdown(result)
        assert breakdown.fully_overlapped == 4
        assert breakdown.accelerated == 2
        assert breakdown.epoch_overlapped == 4
        assert breakdown.total == 10
        assert breakdown.overlap_fraction == pytest.approx(0.4)
        assert breakdown.exposed_fraction == pytest.approx(0.4)

    def test_empty_breakdown(self):
        breakdown = overlap_breakdown(SimulationResult(instructions=0))
        assert breakdown.overlap_fraction == 0.0
