"""SimulationResult metrics and distributions."""

from __future__ import annotations

import pytest

from repro.core import MlpDistribution, SimulationResult
from repro.core.epoch import EpochRecord, TerminationCondition, TriggerKind


def epoch(index, stores=0, loads=0, insts=0,
          term=TerminationCondition.WINDOW_FULL,
          trigger=TriggerKind.LOAD):
    return EpochRecord(
        index=index, trigger=trigger, termination=term,
        store_misses=stores, load_misses=loads, inst_misses=insts,
        instructions=100,
    )


@pytest.fixture
def result():
    return SimulationResult(
        instructions=10_000,
        epochs=[
            epoch(0, loads=2),
            epoch(1, stores=3, term=TerminationCondition.STORE_SERIALIZE,
                  trigger=TriggerKind.STORE),
            epoch(2, stores=1, loads=1,
                  term=TerminationCondition.STORE_QUEUE_WINDOW_FULL),
            epoch(3, insts=1, term=TerminationCondition.INSTRUCTION_MISS,
                  trigger=TriggerKind.INSTRUCTION),
        ],
        fully_overlapped_stores=2,
        accelerated_stores=1,
    )


class TestHeadlineMetrics:
    def test_epi(self, result):
        assert result.epi == pytest.approx(4 / 10_000)
        assert result.epi_per_1000 == pytest.approx(0.4)

    def test_mlp(self, result):
        assert result.total_misses == 8
        assert result.mlp == pytest.approx(2.0)

    def test_store_mlp_over_store_epochs_only(self, result):
        assert result.store_mlp == pytest.approx(2.0)  # (3 + 1) / 2

    def test_store_overlap_fraction(self, result):
        # 4 epoch stores + 2 fully overlapped + 1 accelerated = 7 total.
        assert result.store_overlap_fraction == pytest.approx(2 / 7)

    def test_off_chip_cpi(self, result):
        assert result.off_chip_cpi(500) == pytest.approx(0.2)

    def test_empty_result(self):
        empty = SimulationResult(instructions=0)
        assert empty.epi == 0.0
        assert empty.mlp == 0.0
        assert empty.store_mlp == 0.0
        assert empty.store_overlap_fraction == 0.0


class TestDistributions:
    def test_termination_histogram(self, result):
        histogram = result.termination_histogram()
        assert histogram[TerminationCondition.STORE_SERIALIZE] == 1
        assert histogram[TerminationCondition.WINDOW_FULL] == 1

    def test_termination_fractions_filtered_by_store_mlp(self, result):
        fractions = result.termination_fractions(store_mlp_at_least=1)
        # Two epochs qualify; fractions are over ALL epochs (figure style).
        assert fractions[TerminationCondition.STORE_SERIALIZE] == pytest.approx(0.25)
        assert fractions[TerminationCondition.STORE_QUEUE_WINDOW_FULL] == (
            pytest.approx(0.25)
        )

    def test_trigger_histogram(self, result):
        triggers = result.trigger_histogram()
        assert triggers[TriggerKind.LOAD] == 2
        assert triggers[TriggerKind.STORE] == 1
        assert triggers[TriggerKind.INSTRUCTION] == 1

    def test_mlp_distribution_cells(self, result):
        dist = result.mlp_distribution()
        assert dist.fraction(3, 0) == pytest.approx(0.25)
        assert dist.fraction(1, 1) == pytest.approx(0.25)
        assert dist.store_mlp_fraction(0) == pytest.approx(0.5)

    def test_bucketing_caps(self):
        result = SimulationResult(
            instructions=100,
            epochs=[epoch(0, stores=50, loads=20)],
        )
        cells = result.mlp_distribution().bucketed(store_cap=10, load_cap=5)
        assert cells[(10, 5)] == pytest.approx(1.0)

    def test_summary_mentions_key_numbers(self, result):
        text = result.summary()
        assert "epochs=4" in text
        assert "MLP=2.00" in text


class TestMlpDistribution:
    def test_empty_distribution(self):
        dist = MlpDistribution(total_epochs=0, cells={})
        assert dist.fraction(1, 0) == 0.0
        assert dist.store_mlp_fraction(1) == 0.0
        assert dist.bucketed() == {}
