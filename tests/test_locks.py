"""Lock detection, PC->WC rewriting and Speculative Lock Elision."""

from __future__ import annotations

from repro.isa import Instruction, InstructionClass as IC
from repro.locks import LockDetector, apply_sle, detect_locks, rewrite_pc_to_wc
from repro.workloads import SPECJBB, WorkloadGenerator


LOCK = 0x9000


def pc_section(body=()):
    """casa-acquire ... store-release around *body*, unannotated."""
    return [
        Instruction(IC.CAS, pc=0x100, address=LOCK, size=8, dest=5),
        *body,
        Instruction(IC.STORE, pc=0x200, address=LOCK, size=8),
    ]


class TestDetector:
    def test_detects_simple_section(self):
        body = [Instruction(IC.ALU, pc=0x104, dest=6)]
        locks = LockDetector().find(pc_section(body))
        assert len(locks) == 1
        assert locks[0].acquire_index == 0
        assert locks[0].release_index == 2
        assert locks[0].lock_address == LOCK
        assert locks[0].length == 1

    def test_ignores_unpaired_casa(self):
        trace = [Instruction(IC.CAS, pc=0x100, address=LOCK, size=8)]
        assert LockDetector().find(trace) == []

    def test_release_must_match_lock_address(self):
        trace = [
            Instruction(IC.CAS, pc=0x100, address=LOCK, size=8),
            Instruction(IC.STORE, pc=0x104, address=0x5000, size=8),
        ]
        assert LockDetector().find(trace) == []

    def test_window_limit(self):
        body = [Instruction(IC.ALU, pc=0x104 + 4 * i) for i in range(50)]
        assert LockDetector(max_critical_section=10).find(pc_section(body)) == []
        assert len(LockDetector(max_critical_section=64).find(pc_section(body))) == 1

    def test_reacquire_before_release_aborts_match(self):
        trace = [
            Instruction(IC.CAS, pc=0x100, address=LOCK, size=8),
            Instruction(IC.CAS, pc=0x104, address=LOCK, size=8),
            Instruction(IC.STORE, pc=0x108, address=LOCK, size=8),
        ]
        locks = LockDetector().find(trace)
        # The first casa cannot pair; the second one can.
        assert len(locks) == 1
        assert locks[0].acquire_index == 1

    def test_detect_locks_sets_flags(self):
        marked = detect_locks(pc_section([Instruction(IC.ALU, pc=0x104)]))
        assert marked[0].lock_acquire
        assert marked[2].lock_release

    def test_detector_agrees_with_generator_ground_truth(self):
        """The generator annotates its critical sections; stripping the
        flags and re-detecting must find the same acquire sites."""
        trace = WorkloadGenerator(SPECJBB, seed=11).generate(30_000)
        truth = [
            i for i, inst in enumerate(trace)
            if inst.lock_acquire and inst.kind is IC.CAS
        ]
        from dataclasses import replace
        stripped = [
            replace(inst, lock_acquire=False, lock_release=False)
            for inst in trace
        ]
        detected = {
            lock.acquire_index for lock in LockDetector().find(stripped)
        }
        found = sum(1 for i in truth if i in detected)
        assert found >= 0.9 * len(truth)


class TestRewriter:
    def test_acquire_becomes_lwarx_stwcx_isync(self):
        trace = detect_locks(pc_section())
        rewritten = rewrite_pc_to_wc(trace)
        kinds = [inst.kind for inst in rewritten]
        assert kinds[:3] == [IC.LOAD_LOCKED, IC.STORE_COND, IC.ISYNC]
        assert rewritten[1].lock_acquire

    def test_release_gains_lwsync(self):
        trace = detect_locks(pc_section())
        rewritten = rewrite_pc_to_wc(trace)
        kinds = [inst.kind for inst in rewritten]
        assert kinds[-2:] == [IC.LWSYNC, IC.STORE]
        assert rewritten[-1].lock_release

    def test_membar_becomes_lwsync(self):
        rewritten = rewrite_pc_to_wc([Instruction(IC.MEMBAR, pc=0)])
        assert rewritten[0].kind is IC.LWSYNC

    def test_non_lock_atomic_gets_no_isync(self):
        trace = [Instruction(IC.CAS, pc=0, address=0x40, size=8)]
        rewritten = rewrite_pc_to_wc(trace)
        kinds = [inst.kind for inst in rewritten]
        assert kinds == [IC.LOAD_LOCKED, IC.STORE_COND]
        assert not rewritten[1].lock_acquire

    def test_other_instructions_pass_through(self):
        alu = Instruction(IC.ALU, pc=0, dest=3)
        assert rewrite_pc_to_wc([alu]) == [alu]

    def test_addresses_preserved(self):
        trace = detect_locks(pc_section())
        rewritten = rewrite_pc_to_wc(trace)
        assert rewritten[0].address == LOCK
        assert rewritten[1].address == LOCK
        assert rewritten[-1].address == LOCK


class TestSle:
    def test_pc_acquire_becomes_plain_load(self):
        trace = detect_locks(pc_section())
        elided = apply_sle(trace)
        assert elided[0].kind is IC.LOAD
        assert elided[0].address == LOCK
        assert not elided[0].lock_acquire

    def test_pc_release_becomes_nop(self):
        trace = detect_locks(pc_section())
        elided = apply_sle(trace)
        assert elided[-1].kind is IC.NOP

    def test_wc_sequence_fully_elided(self):
        wc = rewrite_pc_to_wc(detect_locks(pc_section()))
        elided = apply_sle(wc)
        kinds = [inst.kind for inst in elided]
        # lwarx survives as the required plain load; everything else that
        # serialized is gone.
        assert IC.STORE_COND not in kinds
        assert IC.ISYNC not in kinds
        assert IC.LWSYNC not in kinds
        assert kinds[0] is IC.LOAD_LOCKED

    def test_non_lock_barriers_survive_sle(self):
        trace = [Instruction(IC.MEMBAR, pc=0)]
        assert apply_sle(trace)[0].kind is IC.MEMBAR

    def test_non_lock_atomics_survive_sle(self):
        trace = [Instruction(IC.CAS, pc=0, address=0x40, size=8)]
        assert apply_sle(trace)[0].kind is IC.CAS

    def test_length_preserved(self):
        trace = detect_locks(pc_section([Instruction(IC.ALU, pc=0x104)]))
        assert len(apply_sle(trace)) == len(trace)
