"""Workload generator: determinism, mix, structure."""

from __future__ import annotations

import pytest

from repro.isa import InstructionClass as IC
from repro.trace import collect_statistics
from repro.workloads import DATABASE, SPECJBB, WorkloadGenerator, generate_trace


@pytest.fixture(scope="module")
def db_trace():
    return generate_trace(DATABASE, 60_000, seed=3)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_trace(DATABASE, 5000, seed=42)
        b = generate_trace(DATABASE, 5000, seed=42)
        assert a == b

    def test_different_seed_different_trace(self):
        a = generate_trace(DATABASE, 5000, seed=1)
        b = generate_trace(DATABASE, 5000, seed=2)
        assert a != b

    def test_exact_length(self):
        assert len(generate_trace(DATABASE, 12_345)) == 12_345

    def test_stream_matches_generate(self):
        gen_a = WorkloadGenerator(DATABASE, seed=5)
        gen_b = WorkloadGenerator(DATABASE, seed=5)
        assert list(gen_b.stream(1000)) == gen_a.generate(1000)

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            generate_trace(DATABASE, 0)


class TestInstructionMix:
    def test_store_frequency_near_target(self, db_trace):
        stats = collect_statistics(db_trace[5000:])  # skip priming sweep
        target = 100 * DATABASE.store_fraction
        assert stats.mix.store_frequency == pytest.approx(target, rel=0.1)

    def test_load_frequency_near_target(self, db_trace):
        stats = collect_statistics(db_trace[5000:])  # skip priming sweep
        target = 100 * DATABASE.load_fraction
        assert stats.mix.load_frequency == pytest.approx(target, rel=0.1)

    def test_lock_rate_near_target(self, db_trace):
        stats = collect_statistics(db_trace)
        acquires_per_1000 = 1000 * stats.mix.lock_acquires / stats.total
        # Independent locks plus burst-attracted ones: at least the base
        # rate, and not wildly more.
        assert acquires_per_1000 >= 0.7 * DATABASE.locks_per_1000
        assert acquires_per_1000 <= 3.0 * DATABASE.locks_per_1000

    def test_acquires_balance_releases(self, db_trace):
        stats = collect_statistics(db_trace)
        assert abs(stats.mix.lock_acquires - stats.mix.lock_releases) <= 1


class TestStructure:
    def test_lock_addresses_come_from_lock_region(self, db_trace):
        generator = WorkloadGenerator(DATABASE, seed=3)
        lock_region = generator.space["locks"]
        for inst in db_trace:
            if inst.lock_acquire:
                assert lock_region.contains(inst.address)

    def test_release_follows_acquire_on_same_address(self, db_trace):
        pending = None
        violations = 0
        for inst in db_trace:
            if inst.lock_acquire:
                pending = inst.address
            elif inst.lock_release:
                if pending != inst.address:
                    violations += 1
                pending = None
        assert violations == 0

    def test_cold_store_addresses_in_pool_or_shared(self):
        generator = WorkloadGenerator(DATABASE, seed=3)
        trace = generator.generate(60_000)
        pool = generator.space["store_pool"]
        shared = generator.space["shared"]
        hot = generator.space["hot_data"]
        locks = generator.space["locks"]
        for inst in trace:
            if inst.kind is IC.STORE:
                assert (
                    pool.contains(inst.address)
                    or shared.contains(inst.address)
                    or hot.contains(inst.address)
                    or locks.contains(inst.address)
                )

    def test_store_pool_revisits_lines(self):
        """SMAC food: cold stores rotate over a bounded set of lines."""
        profile = DATABASE.with_(store_regions=8, store_region_lines_used=1,
                                 shared_store_fraction=0.0)
        generator = WorkloadGenerator(profile, seed=3)
        trace = generator.generate(60_000)
        pool = generator.space["store_pool"]
        lines = {
            inst.address & ~63
            for inst in trace
            if inst.kind is IC.STORE and pool.contains(inst.address)
        }
        assert len(lines) <= 8  # one line per region

    def test_pc_stays_in_code_regions(self, db_trace):
        generator = WorkloadGenerator(DATABASE, seed=3)
        hot = generator.space["hot_code"]
        cold = generator.space["cold_code"]
        for inst in db_trace[:10_000]:
            assert hot.contains(inst.pc) or cold.contains(inst.pc)

    def test_critical_section_bodies_bounded(self):
        trace = generate_trace(SPECJBB, 60_000, seed=9)
        open_at = None
        for index, inst in enumerate(trace):
            if inst.lock_acquire:
                open_at = index
            elif inst.lock_release and open_at is not None:
                assert index - open_at <= 130
                open_at = None

    def test_branches_have_targets(self, db_trace):
        for inst in db_trace:
            if inst.kind in (IC.BRANCH, IC.CALL, IC.RETURN) and inst.taken:
                assert inst.target != 0
