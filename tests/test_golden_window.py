"""Golden-result tests pinning the window scan's exact behaviour.

The numbers below were recorded from the monolithic ``MlpSimulator.run``
before it was decomposed into ``WindowState`` + handler methods +
``EpochAccountant`` (PR 1).  The decomposition must be bit-identical: EPI,
the termination and trigger histograms, and every store-accounting counter
are asserted exactly, not approximately.

If a future PR intentionally changes simulation semantics, these constants
must be re-recorded in the same commit and the change called out in its
description.
"""

from __future__ import annotations

import pytest

from repro.config import ScoutMode, StorePrefetchMode
from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench

GOLDEN = {
    "database_pc_default": {
        "epochs": 205,
        "epi_per_1000": 22.777777778,
        "total_misses": 255,
        "terminations": {
            "end_of_trace": 1,
            "instruction_miss": 182,
            "mispred_branch": 4,
            "other_serialize": 4,
            "store_serialize": 2,
            "window_full": 12,
        },
        "triggers": {"instruction": 153, "load": 40, "store": 12},
        "fully_overlapped_stores": 0,
        "accelerated_stores": 0,
        "scout_episodes": 0,
        "stores_committed": 906,
        "store_prefetch_requests": 19,
        "stores_coalesced": 30,
    },
    "database_pc_sp0_small": {
        "epochs": 207,
        "epi_per_1000": 23.0,
        "total_misses": 255,
        "terminations": {
            "end_of_trace": 1,
            "instruction_miss": 182,
            "mispred_branch": 4,
            "other_serialize": 4,
            "store_buffer_full": 4,
            "store_queue_window_full": 1,
            "store_serialize": 2,
            "window_full": 9,
        },
        "triggers": {"instruction": 150, "load": 38, "store": 19},
        "fully_overlapped_stores": 0,
        "accelerated_stores": 0,
        "scout_episodes": 0,
        "stores_committed": 901,
        "store_prefetch_requests": 0,
        "stores_coalesced": 35,
    },
    "database_wc": {
        "epochs": 203,
        "epi_per_1000": 22.480620155,
        "total_misses": 255,
        "terminations": {
            "end_of_trace": 1,
            "instruction_miss": 182,
            "mispred_branch": 4,
            "other_serialize": 4,
            "window_full": 12,
        },
        "triggers": {"instruction": 153, "load": 40, "store": 10},
        "fully_overlapped_stores": 0,
        "accelerated_stores": 0,
        "scout_episodes": 0,
        "stores_committed": 908,
        "store_prefetch_requests": 19,
        "stores_coalesced": 28,
    },
    "tpcw_pc_scout_hws2": {
        "epochs": 147,
        "epi_per_1000": 16.333333333,
        "total_misses": 159,
        "terminations": {
            "instruction_miss": 145,
            "mispred_branch": 1,
            "other_serialize": 1,
        },
        "triggers": {"instruction": 141, "load": 6},
        "fully_overlapped_stores": 0,
        "accelerated_stores": 0,
        "scout_episodes": 1,
        "stores_committed": 725,
        "store_prefetch_requests": 0,
        "stores_coalesced": 1,
    },
    "specjbb_pc_sle_pps": {
        "epochs": 155,
        "epi_per_1000": 17.222222222,
        "total_misses": 173,
        "terminations": {
            "instruction_miss": 146,
            "mispred_branch": 2,
            "window_full": 7,
        },
        "triggers": {"instruction": 131, "load": 20, "store": 4},
        "fully_overlapped_stores": 0,
        "accelerated_stores": 0,
        "scout_episodes": 0,
        "stores_committed": 674,
        "store_prefetch_requests": 4,
        "stores_coalesced": 13,
    },
    "specweb_wc_sp2": {
        "epochs": 149,
        "epi_per_1000": 16.391639164,
        "total_misses": 167,
        "terminations": {
            "instruction_miss": 143,
            "mispred_branch": 2,
            "other_serialize": 1,
            "window_full": 3,
        },
        "triggers": {"instruction": 127, "load": 19, "store": 3},
        "fully_overlapped_stores": 0,
        "accelerated_stores": 0,
        "scout_episodes": 0,
        "stores_committed": 711,
        "store_prefetch_requests": 3,
        "stores_coalesced": 8,
    },
}


@pytest.fixture(scope="module")
def bench() -> Workbench:
    return Workbench(ExperimentSettings(
        warmup=3000, measure=9000, seed=13, calibrate=False,
    ))


def _run(bench: Workbench, case: str):
    if case == "database_pc_default":
        return bench.run("database")
    if case == "database_pc_sp0_small":
        return bench.run(
            "database",
            store_prefetch=StorePrefetchMode.NONE,
            store_buffer=8,
            store_queue=16,
        )
    if case == "database_wc":
        return bench.run("database", variant="wc")
    if case == "tpcw_pc_scout_hws2":
        return bench.run(
            "tpcw", scout=ScoutMode.HWS2,
            store_prefetch=StorePrefetchMode.NONE,
        )
    if case == "specjbb_pc_sle_pps":
        return bench.run(
            "specjbb", variant="pc_sle", prefetch_past_serializing=True,
        )
    if case == "specweb_wc_sp2":
        return bench.run(
            "specweb", variant="wc",
            store_prefetch=StorePrefetchMode.AT_EXECUTE,
        )
    raise AssertionError(f"unknown golden case {case!r}")


@pytest.mark.parametrize("case", sorted(GOLDEN))
def test_golden_window_scan(bench, case):
    result = _run(bench, case)
    expected = GOLDEN[case]
    assert result.epoch_count == expected["epochs"]
    assert result.epi_per_1000 == pytest.approx(
        expected["epi_per_1000"], abs=1e-9
    )
    assert result.total_misses == expected["total_misses"]
    assert {
        cond.value: count
        for cond, count in result.termination_histogram().items()
    } == expected["terminations"]
    assert {
        kind.value: count
        for kind, count in result.trigger_histogram().items()
    } == expected["triggers"]
    assert result.fully_overlapped_stores == expected["fully_overlapped_stores"]
    assert result.accelerated_stores == expected["accelerated_stores"]
    assert result.scout_episodes == expected["scout_episodes"]
    assert result.stores_committed == expected["stores_committed"]
    assert result.store_prefetch_requests == expected["store_prefetch_requests"]
    assert result.stores_coalesced == expected["stores_coalesced"]
