"""MLPsim mechanism tests beyond the paper's worked examples:
silent overlap, SMAC acceleration, scout modes, prefetch-past-serializing,
window limits, mispredicted branches, perfect stores."""

from __future__ import annotations

from repro.config import (
    ScoutMode,
    SimulationConfig,
    StorePrefetchMode,
)
from repro.core import MlpSimulator, TerminationCondition, TriggerKind
from repro.isa import InstructionClass as IC

from conftest import annotated


def run(trace, config=None, **core_kwargs):
    if config is None:
        config = SimulationConfig()
    if core_kwargs:
        config = config.with_core(**core_kwargs)
    return MlpSimulator(config).run(trace)


def alus(n):
    return [annotated(IC.ALU, dest=5) for _ in range(n)]


class TestSilentOverlap:
    def test_lone_store_miss_fully_overlaps(self):
        trace = [annotated(IC.STORE, miss=True, address=0x1000)] + alus(600)
        result = run(trace)
        assert result.epoch_count == 0
        assert result.fully_overlapped_stores == 1
        assert result.store_overlap_fraction == 1.0

    def test_store_miss_with_nearby_serializer_is_exposed(self):
        trace = (
            [annotated(IC.STORE, miss=True, address=0x1000)]
            + alus(50)
            + [annotated(IC.MEMBAR)]
            + alus(600)
        )
        result = run(trace)
        assert result.fully_overlapped_stores == 0
        assert result.epoch_count == 1
        assert result.epochs[0].termination is (
            TerminationCondition.STORE_SERIALIZE
        )

    def test_overlap_window_scales_with_latency(self):
        trace = [annotated(IC.STORE, miss=True, address=0x1000)] + alus(300)
        near = run(trace, SimulationConfig().with_memory(memory_latency=200))
        far = run(trace, SimulationConfig().with_memory(memory_latency=499))
        assert near.fully_overlapped_stores == 1
        assert far.fully_overlapped_stores == 0  # trace too short to hide it

    def test_load_miss_is_never_silently_overlapped(self):
        trace = [annotated(IC.LOAD, miss=True, dest=5, address=0x1000)] + alus(600)
        result = run(trace)
        assert result.epoch_count == 1
        assert result.epochs[0].trigger is TriggerKind.LOAD


class TestWindowLimits:
    def test_rob_full_behind_missing_load(self):
        trace = [annotated(IC.LOAD, miss=True, dest=5, address=0x1000)] + alus(200)
        result = run(trace, rob=64, issue_window=64)
        assert result.epochs[0].termination is TerminationCondition.WINDOW_FULL
        # The window covered at most the ROB.
        assert result.epochs[0].instructions <= 64 + 1

    def test_issue_window_binds_before_rob_for_dependent_code(self):
        dependent = [annotated(IC.ALU, dest=6, srcs=(5,)) for _ in range(200)]
        trace = [annotated(IC.LOAD, miss=True, dest=5, address=0x1000)] + dependent
        result = run(trace, rob=64, issue_window=16)
        assert result.epochs[0].instructions <= 17 + 1

    def test_load_buffer_limit(self):
        loads = [
            annotated(IC.LOAD, address=0x40000 + 64 * i, dest=6)
            for i in range(100)
        ]
        trace = [annotated(IC.LOAD, miss=True, dest=5, address=0x1000)] + loads
        result = run(trace, load_buffer=8, rob=256, issue_window=128)
        assert result.epochs[0].termination is TerminationCondition.WINDOW_FULL

    def test_independent_loads_overlap_up_to_window(self):
        trace = [
            annotated(IC.LOAD, miss=True, dest=5, address=0x1000 + 64 * i)
            for i in range(8)
        ] + alus(100)
        result = run(trace)
        assert result.epochs[0].load_misses == 8

    def test_dependent_load_chain_serializes(self):
        trace = [
            annotated(IC.LOAD, miss=True, dest=5, address=0x1000),
            annotated(IC.LOAD, miss=True, dest=6, srcs=(5,), address=0x2000),
            annotated(IC.LOAD, miss=True, dest=7, srcs=(6,), address=0x3000),
        ] + alus(100)
        result = run(trace)
        assert result.epoch_count == 3
        assert all(e.load_misses == 1 for e in result.epochs)


class TestMispredictedBranches:
    def test_mispredict_dependent_on_missing_load_terminates(self):
        trace = [
            annotated(IC.LOAD, miss=True, dest=5, address=0x1000),
            annotated(IC.BRANCH, mispred=True, srcs=(5,)),
        ] + alus(100)
        result = run(trace)
        assert result.epochs[0].termination is (
            TerminationCondition.MISPRED_BRANCH
        )

    def test_mispredict_with_ready_operands_is_free(self):
        trace = [
            annotated(IC.LOAD, miss=True, dest=5, address=0x1000),
            annotated(IC.BRANCH, mispred=True, srcs=(1,)),  # r1 is clean
        ] + alus(100)
        result = run(trace)
        assert result.epochs[0].termination is TerminationCondition.WINDOW_FULL

    def test_correct_prediction_never_terminates(self):
        trace = [
            annotated(IC.LOAD, miss=True, dest=5, address=0x1000),
            annotated(IC.BRANCH, srcs=(5,)),
        ] + alus(100)
        result = run(trace)
        assert result.epochs[0].termination is TerminationCondition.WINDOW_FULL


class TestSmacAcceleration:
    def test_smac_hit_store_does_not_stall(self):
        trace = (
            [annotated(IC.STORE, smac=True, address=0x1000)]
            + [annotated(IC.MEMBAR)]
            + alus(50)
        )
        result = run(trace)
        assert result.epoch_count == 0
        assert result.accelerated_stores == 1

    def test_smac_hit_conserves_issue_bandwidth(self):
        trace = [annotated(IC.STORE, smac=True, address=0x1000)] + alus(10)
        result = run(trace, store_prefetch=StorePrefetchMode.AT_EXECUTE)
        assert result.epoch_count == 0
        assert result.store_miss_count == 0

    def test_perfect_stores_suppress_all_store_stalls(self):
        trace = (
            [annotated(IC.STORE, miss=True, address=0x1000 + 64 * i)
             for i in range(40)]
            + [annotated(IC.MEMBAR)]
            + alus(50)
        )
        result = run(trace, perfect_stores=True)
        assert result.epoch_count == 0
        assert result.accelerated_stores == 40


class TestPrefetchPastSerializing:
    def _trace(self):
        return (
            [annotated(IC.STORE, miss=True, address=0x1000)]
            + [annotated(IC.MEMBAR)]
            + [annotated(IC.LOAD, miss=True, dest=5, address=0x2000)]
            + [annotated(IC.STORE, miss=True, address=0x3000)]
            + alus(100)
        )

    def test_disabled_baseline_serial(self):
        result = run(self._trace())
        assert result.epoch_count >= 2
        assert result.epochs[0].load_misses == 0

    def test_enabled_overlaps_misses_beyond_serializer(self):
        result = run(self._trace(), prefetch_past_serializing=True)
        first = result.epochs[0]
        assert first.load_misses == 1   # prefetched past the membar
        assert first.store_misses == 2  # the blocked store + the one beyond
        assert result.epoch_count < run(self._trace()).epoch_count

    def test_improves_epi(self):
        base = run(self._trace())
        optimized = run(self._trace(), prefetch_past_serializing=True)
        assert optimized.epi < base.epi


class TestHardwareScout:
    def _load_trigger_trace(self):
        """Missing load, a full ROB of filler, then more misses only scout
        can reach."""
        return (
            [annotated(IC.LOAD, miss=True, dest=5, address=0x1000)]
            + alus(100)
            + [annotated(IC.LOAD, miss=True, dest=6, address=0x2000)]
            + [annotated(IC.STORE, miss=True, address=0x3000)]
            + alus(300)
        )

    def test_hws0_prefetches_distant_loads(self):
        base = run(self._load_trigger_trace())
        scouted = run(self._load_trigger_trace(), scout=ScoutMode.HWS0)
        assert scouted.scout_episodes >= 1
        assert scouted.epochs[0].load_misses == 2
        assert scouted.epi < base.epi

    def test_hws0_does_not_prefetch_stores(self):
        scouted = run(self._load_trigger_trace(), scout=ScoutMode.HWS0)
        assert scouted.epochs[0].store_misses == 0

    def test_hws1_adds_store_prefetch(self):
        scouted = run(self._load_trigger_trace(), scout=ScoutMode.HWS1)
        assert scouted.epochs[0].store_misses == 1

    def _store_stall_trace(self):
        """A store-queue-full stall with misses beyond the architectural
        window: only HWS2 scouts them."""
        stores = [
            annotated(IC.STORE, miss=True, address=0x1000 + 64 * i)
            for i in range(40)
        ]
        return (
            stores
            + alus(100)
            + [annotated(IC.LOAD, miss=True, dest=5, address=0x9000)]
            + [annotated(IC.STORE, miss=True, address=0xA000)]
            + alus(400)
        )

    def test_hws1_ignores_store_stalls(self):
        base = run(self._store_stall_trace())
        scouted = run(self._store_stall_trace(), scout=ScoutMode.HWS1)
        assert scouted.scout_episodes == 0
        assert scouted.epoch_count == base.epoch_count

    def test_hws2_scouts_store_stalls(self):
        base = run(self._store_stall_trace())
        scouted = run(self._store_stall_trace(), scout=ScoutMode.HWS2)
        assert scouted.scout_episodes >= 1
        assert scouted.epi < base.epi

    def test_hws2_store_serialize_scouting(self):
        trace = (
            [annotated(IC.STORE, miss=True, address=0x1000)]
            + [annotated(IC.MEMBAR)]
            + [annotated(IC.STORE, miss=True, address=0x2000)]
            + [annotated(IC.LOAD, miss=True, dest=5, address=0x3000)]
            + alus(200)
        )
        base = run(trace)
        scouted = run(trace, scout=ScoutMode.HWS2)
        assert scouted.epi < base.epi
        assert scouted.epochs[0].scouted


class TestEndOfTrace:
    def test_pending_stores_drain_at_end(self):
        trace = [annotated(IC.STORE, miss=True, address=0x1000)]
        result = run(trace)
        assert result.epoch_count == 1
        assert result.epochs[0].termination is TerminationCondition.END_OF_TRACE

    def test_empty_tail_alus_ok(self):
        result = run(alus(50))
        assert result.epoch_count == 0
        assert result.instructions == 50

    def test_epi_metrics_of_empty_trace_section(self):
        result = run(alus(10))
        assert result.epi == 0.0
        assert result.mlp == 0.0
