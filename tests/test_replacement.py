"""Replacement policies: LRU, random, tree-PLRU."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.memory.replacement import (
    LruPolicy,
    RandomPolicy,
    TreePlruPolicy,
    make_policy,
)


class TestLru:
    def test_victim_is_oldest_untouched(self):
        policy = LruPolicy(4)
        for way in (0, 1, 2, 3):
            policy.touch(way)
        assert policy.victim() == 0

    def test_touch_moves_to_mru(self):
        policy = LruPolicy(4)
        for way in (0, 1, 2, 3):
            policy.touch(way)
        policy.touch(0)
        assert policy.victim() == 1

    def test_reset_behaves_like_touch(self):
        policy = LruPolicy(2)
        policy.touch(0)
        policy.reset(1)
        assert policy.victim() == 0

    def test_single_way(self):
        policy = LruPolicy(1)
        policy.touch(0)
        assert policy.victim() == 0


class TestRandom:
    def test_victims_in_range_and_deterministic(self):
        a = RandomPolicy(8, seed=3)
        b = RandomPolicy(8, seed=3)
        va = [a.victim() for _ in range(50)]
        vb = [b.victim() for _ in range(50)]
        assert va == vb
        assert all(0 <= v < 8 for v in va)


class TestTreePlru:
    def test_requires_power_of_two(self):
        with pytest.raises(ConfigError):
            TreePlruPolicy(6)

    def test_victim_avoids_recent_touch(self):
        policy = TreePlruPolicy(4)
        policy.touch(2)
        assert policy.victim() != 2

    def test_full_rotation_touches_every_way(self):
        policy = TreePlruPolicy(4)
        victims = []
        for _ in range(4):
            way = policy.victim()
            victims.append(way)
            policy.touch(way)
        assert sorted(victims) == [0, 1, 2, 3]


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LruPolicy), ("random", RandomPolicy), ("plru", TreePlruPolicy),
    ])
    def test_known_policies(self, name, cls):
        assert isinstance(make_policy(name, 4), cls)

    def test_unknown_policy(self):
        with pytest.raises(ConfigError, match="unknown replacement"):
            make_policy("belady", 4)

    def test_zero_ways_rejected(self):
        with pytest.raises(ConfigError):
            make_policy("lru", 0)
