"""L2 write-path bandwidth accounting (paper Sections 3.3.2-3.3.3)."""

from __future__ import annotations

import pytest

from repro.config import (
    CoreConfig,
    SimulationConfig,
    StorePrefetchMode,
)
from repro.core import MlpSimulator, StoreEntry, StoreUnit
from repro.isa import InstructionClass as IC

from conftest import annotated


def unit(**kwargs):
    defaults = dict(store_buffer=4, store_queue=4,
                    store_prefetch=StorePrefetchMode.NONE, coalesce_bytes=0)
    defaults.update(kwargs)
    return StoreUnit(CoreConfig(**defaults))


class TestStoreUnitBandwidth:
    def test_hit_store_costs_one_request(self):
        su = unit()
        su.dispatch(StoreEntry(granule=0x1000), retirable=True, epoch=0)
        assert su.stats.l2_store_requests == 1
        assert su.stats.prefetch_requests == 0

    def test_sp0_missing_store_costs_one_request(self):
        """Without prefetching the head's write request IS the commit."""
        su = unit()
        su.dispatch(StoreEntry(granule=0x1000, missing=True),
                    retirable=True, epoch=0)
        su.pump(epoch=1)
        assert su.stats.committed == 1
        assert su.stats.prefetch_requests == 0

    def test_sp1_missing_store_costs_two_requests(self):
        su = unit(store_prefetch=StorePrefetchMode.AT_RETIRE)
        su.dispatch(StoreEntry(granule=0x1000, missing=True),
                    retirable=True, epoch=0)
        su.pump(epoch=1)
        assert su.stats.committed == 1
        assert su.stats.prefetch_requests == 1
        assert su.stats.l2_store_requests == 2

    def test_accelerated_store_never_prefetches(self):
        su = unit(store_prefetch=StorePrefetchMode.AT_EXECUTE)
        su.dispatch(
            StoreEntry(granule=0x1000, missing=True, accelerated=True),
            retirable=True, epoch=0,
        )
        assert su.stats.prefetch_requests == 0

    def test_overhead_ratio(self):
        su = unit(store_prefetch=StorePrefetchMode.AT_RETIRE)
        su.dispatch(StoreEntry(granule=0x1000, missing=True),
                    retirable=True, epoch=0)
        su.dispatch(StoreEntry(granule=0x2000), retirable=True, epoch=0)
        su.pump(epoch=1)
        assert su.stats.bandwidth_overhead == pytest.approx(0.5)


class TestSimulatorBandwidth:
    def _trace(self):
        return [
            annotated(IC.STORE, miss=True, address=0x1000 + 64 * i)
            for i in range(10)
        ] + [annotated(IC.ALU, dest=5)] * 50

    def _run(self, smac=False, **core):
        trace = self._trace()
        if smac:
            trace = [
                (inst, info if not info.data_miss else type(info)(
                    inst_miss=info.inst_miss, data_miss=True, smac_hit=True,
                ))
                for inst, info in trace
            ]
        return MlpSimulator(
            SimulationConfig(core=CoreConfig(**core))
        ).run(trace)

    def test_prefetching_pays_bandwidth(self):
        sp0 = self._run(store_prefetch=StorePrefetchMode.NONE)
        sp2 = self._run(store_prefetch=StorePrefetchMode.AT_EXECUTE)
        assert sp0.store_prefetch_requests == 0
        assert sp2.store_prefetch_requests == 10
        assert sp2.l2_store_requests > sp0.l2_store_requests

    def test_smac_conserves_bandwidth(self):
        """The paper's SMAC claim: similar gains to prefetching with no
        extra write-path requests."""
        sp2 = self._run(store_prefetch=StorePrefetchMode.AT_EXECUTE)
        smac = self._run(smac=True, store_prefetch=StorePrefetchMode.AT_EXECUTE)
        assert smac.epi <= sp2.epi
        assert smac.store_prefetch_requests == 0
        assert smac.store_bandwidth_overhead == 0.0
        assert sp2.store_bandwidth_overhead > 0.0

    def test_committed_counts_match_stores(self):
        result = self._run(store_prefetch=StorePrefetchMode.NONE)
        assert result.stores_committed == 10
