"""Weak-consistency semantics in MLPsim, end to end.

These tests pin down the behaviours behind the paper's PC-vs-WC gap:
out-of-order commit, execute-time ownership requests, isync's refusal to
drain the store queue, and lwsync's commit-only ordering.
"""

from __future__ import annotations

from repro.config import (
    ConsistencyModel,
    CoreConfig,
    SimulationConfig,
    StorePrefetchMode,
)
from repro.core import MlpSimulator, TerminationCondition
from repro.isa import InstructionClass as IC

from conftest import annotated


def run(trace, **core_kwargs):
    defaults = dict(
        consistency=ConsistencyModel.WC,
        store_prefetch=StorePrefetchMode.NONE,
        coalesce_bytes=0,
    )
    defaults.update(core_kwargs)
    return MlpSimulator(SimulationConfig(core=CoreConfig(**defaults))).run(trace)


def alus(n):
    return [annotated(IC.ALU, dest=5) for _ in range(n)]


class TestOutOfOrderCommit:
    def test_missing_store_does_not_back_up_the_queue(self):
        """Under WC, dozens of hit stores drain past one blocked miss."""
        trace = (
            [annotated(IC.STORE, miss=True, address=0x1000)]
            + [annotated(IC.STORE, address=0x2000 + 64 * i) for i in range(60)]
            + [annotated(IC.MEMBAR)]  # treated as lwsync under WC
            + alus(20)
        )
        result = run(trace, store_queue=8, store_buffer=4)
        # PC would hit SQ/SB-full; WC never does.
        assert not any(
            e.termination.store_caused for e in result.epochs
        )

    def test_pc_same_trace_backs_up(self):
        trace = (
            [annotated(IC.STORE, miss=True, address=0x1000)]
            + [annotated(IC.STORE, address=0x2000 + 64 * i) for i in range(60)]
            + alus(20)
        )
        result = run(trace, consistency=ConsistencyModel.PC,
                     store_queue=8, store_buffer=4)
        assert any(e.termination.store_caused for e in result.epochs)


class TestClusteredMisses:
    def test_wc_overlaps_missing_store_cluster(self):
        """All clustered missing stores issue at execute and share one epoch."""
        trace = [
            annotated(IC.STORE, miss=True, address=0x1000 + 64 * i)
            for i in range(12)
        ] + alus(20)
        result = run(trace, store_queue=8, store_buffer=4)
        assert result.epoch_count == 1
        assert result.epochs[0].store_misses == 12

    def test_pc_sp0_serializes_the_same_cluster(self):
        trace = [
            annotated(IC.STORE, miss=True, address=0x1000 + 64 * i)
            for i in range(12)
        ] + alus(20)
        result = run(trace, consistency=ConsistencyModel.PC,
                     store_queue=8, store_buffer=4)
        assert result.epoch_count > 1


class TestIsync:
    def test_isync_ignores_pending_store_misses(self):
        trace = (
            [annotated(IC.STORE, miss=True, address=0x1000)]
            + [annotated(IC.ISYNC)]
            + [annotated(IC.LOAD, miss=True, dest=6, address=0x2000)]
            + alus(20)
        )
        result = run(trace)
        # One epoch: the store miss and the load miss overlap across the
        # isync because it does not drain the store queue.
        assert result.epoch_count == 1
        assert result.epochs[0].store_misses == 1
        assert result.epochs[0].load_misses == 1

    def test_isync_waits_for_missing_loads(self):
        trace = (
            [annotated(IC.LOAD, miss=True, dest=6, address=0x2000)]
            + [annotated(IC.ISYNC)]
            + [annotated(IC.LOAD, miss=True, dest=7, address=0x3000)]
            + alus(20)
        )
        result = run(trace)
        assert result.epochs[0].termination is (
            TerminationCondition.OTHER_SERIALIZE
        )
        assert result.epoch_count == 2


class TestLwsync:
    def test_lwsync_orders_commits_without_stalling(self):
        trace = (
            [annotated(IC.STORE, miss=True, address=0x1000)]
            + [annotated(IC.LWSYNC)]
            + [annotated(IC.STORE, address=0x2000)]
            + [annotated(IC.LOAD, miss=True, dest=6, address=0x3000)]
            + alus(20)
        )
        result = run(trace)
        # Execution flows: one epoch holds both misses.  The post-barrier
        # store merely commits late.
        assert result.epoch_count == 1
        assert result.epochs[0].load_misses == 1


class TestWcCasStoreBufferFull:
    def test_rejected_cas_store_half_is_retried_not_dropped(self):
        """A CAS hitting a full store buffer re-dispatches next epoch.

        Regression test: the store half of the atomic used to vanish from
        the commit accounting when the dispatch was rejected.
        """
        trace = (
            # Missing load blocks retirement, so the store parks in the
            # (single-entry) store buffer and the CAS finds it full.
            [annotated(IC.LOAD, miss=True, dest=6, address=0x3000)]
            + [annotated(IC.STORE, address=0x1000)]
            + [annotated(IC.CAS, dest=7, address=0x2000)]
            + alus(20)
        )
        result = run(trace, store_buffer=1, store_queue=1)
        # Both the plain store and the CAS's store half must commit.
        assert result.stores_committed == 2
        assert result.epochs[0].termination is (
            TerminationCondition.STORE_BUFFER_FULL
        )

    def test_accepted_cas_store_half_still_commits(self):
        trace = (
            [annotated(IC.CAS, dest=7, address=0x2000)]
            + [annotated(IC.LOAD, miss=True, dest=6, address=0x3000)]
            + alus(20)
        )
        result = run(trace, store_buffer=1, store_queue=1)
        assert result.stores_committed == 1


class TestWcCoalescing:
    def test_wc_coalescing_with_any_entry_saves_capacity(self):
        # Alternating addresses: PC (adjacent-only) cannot merge them,
        # WC folds every repeat into the resident entries.
        trace = []
        for i in range(20):
            trace.append(annotated(
                IC.STORE, miss=(i < 2),
                address=0x1000 if i % 2 == 0 else 0x2000,
            ))
        trace += alus(20)
        wc = run(trace, store_queue=4, store_buffer=2, coalesce_bytes=8)
        pc = run(trace, consistency=ConsistencyModel.PC,
                 store_queue=4, store_buffer=2, coalesce_bytes=8)
        assert wc.stores_coalesced > pc.stores_coalesced
