"""The analytical routing cost model (repro.fleet.cost).

The estimator never runs a simulation, so these tests pin its *shape*:
ordering tracks the published workload statistics, backends scale the
estimate by their measured speedups, and shard spans prorate linearly.
"""

from __future__ import annotations

import pytest

import json

from repro.engine.runner import JobSpec
from repro.fleet import estimate_job_cost
from repro.fleet.cost import (
    _BACKEND_SPEEDUP,
    _reset_speedups,
    backend_speedup,
    backend_speedups,
)
from repro.harness import ExperimentSettings
from repro.workloads import WORKLOADS

SMALL = ExperimentSettings(warmup=1500, measure=4000, seed=11,
                           calibrate=False)


def _cost(**kwargs):
    return estimate_job_cost(JobSpec(**kwargs), SMALL)


class TestEstimate:
    def test_positive_for_every_workload(self):
        for name in WORKLOADS:
            estimate = _cost(workload=name)
            assert estimate.units > 0
            assert estimate.instructions == SMALL.total
            assert estimate.predicted_epochs > 0

    def test_scales_with_trace_length(self):
        small = estimate_job_cost(JobSpec(workload="database"), SMALL)
        double = estimate_job_cost(
            JobSpec(workload="database"),
            ExperimentSettings(warmup=3000, measure=8000, seed=11,
                               calibrate=False),
        )
        assert double.units == pytest.approx(2.0 * small.units)

    def test_backend_speedup_divides_cost(self):
        # Whatever speedups are in effect (measured from the committed
        # BENCH_backends.json, or the documented defaults when it is
        # absent), the cost divides by exactly that factor.
        speedups = backend_speedups()
        reference = _cost(workload="database")
        batch = _cost(workload="database", backend="batch")
        event = _cost(workload="database", backend="event")
        assert reference.units == pytest.approx(
            batch.units * speedups["batch"],
        )
        assert reference.units == pytest.approx(
            event.units * speedups["event"],
        )
        assert batch.units < reference.units
        assert event.units < reference.units

    def test_unknown_backend_charged_as_reference(self):
        assert _cost(workload="database", backend="").units == pytest.approx(
            _cost(workload="database").units
        )

    def test_shard_span_prorates(self):
        whole = _cost(workload="database")
        half = _cost(
            workload="database",
            shard_start=0, shard_stop=SMALL.total // 2,
        )
        assert half.units == pytest.approx(whole.units / 2, rel=1e-3)
        assert half.instructions == pytest.approx(
            whole.instructions / 2, abs=1,
        )

    def test_annotate_cheaper_than_simulate(self):
        warm = _cost(workload="database", action="annotate")
        simulate = _cost(workload="database")
        assert warm.units < simulate.units
        assert warm.predicted_epochs == 0.0

    def test_unknown_workload_gets_neutral_charge(self):
        # Custom profiles registered only on the submitting side must not
        # crash routing; they get the average charge.
        estimate = estimate_job_cost(
            JobSpec(workload="nonesuch"), SMALL, profile=None,
        )
        assert estimate.units > 0

    def test_epoch_heavy_profile_costs_more(self):
        # More serializing locks and store misses => more predicted epochs
        # => higher cost, everything else equal.
        import dataclasses

        base = WORKLOADS["database"]
        heavy = dataclasses.replace(
            base,
            locks_per_1000=base.locks_per_1000 * 3,
            store_miss_per_100=base.store_miss_per_100 * 2,
        )
        spec = JobSpec(workload="database")
        calm = estimate_job_cost(spec, SMALL, profile=base)
        stressed = estimate_job_cost(spec, SMALL, profile=heavy)
        assert stressed.predicted_epochs > calm.predicted_epochs
        assert stressed.units > calm.units

    def test_scaled_is_linear(self):
        estimate = _cost(workload="tpcw")
        half = estimate.scaled(0.5)
        assert half.units == pytest.approx(estimate.units / 2)
        assert half.backend == estimate.backend


class TestBackendSpeedups:
    """backend_speedups degrades gracefully when the report is unusable."""

    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        _reset_speedups()
        yield
        _reset_speedups()

    def _report(self, tmp_path, rates):
        path = tmp_path / "BENCH_backends.json"
        path.write_text(json.dumps({
            "backends": {
                name: {"aggregate": {"instructions_per_sec_geomean": rate}}
                for name, rate in rates.items()
            },
        }), encoding="utf-8")
        return path

    def test_missing_report_falls_back_to_defaults(self, tmp_path):
        speedups = backend_speedups(tmp_path / "does-not-exist.json")
        assert speedups == _BACKEND_SPEEDUP

    def test_malformed_json_falls_back_to_defaults(self, tmp_path):
        path = tmp_path / "BENCH_backends.json"
        path.write_text("{not json", encoding="utf-8")
        assert backend_speedups(path) == _BACKEND_SPEEDUP

    def test_missing_aggregates_fall_back_to_defaults(self, tmp_path):
        path = tmp_path / "BENCH_backends.json"
        path.write_text(json.dumps({"backends": {"reference": {}}}),
                        encoding="utf-8")
        assert backend_speedups(path) == _BACKEND_SPEEDUP

    def test_zero_reference_throughput_falls_back(self, tmp_path):
        path = self._report(tmp_path, {"reference": 0.0, "batch": 5e6})
        assert backend_speedups(path) == _BACKEND_SPEEDUP

    def test_measured_ratios_override_defaults(self, tmp_path):
        path = self._report(tmp_path, {"reference": 1e6, "batch": 5e6})
        speedups = backend_speedups(path)
        assert speedups["batch"] == pytest.approx(5.0)
        # A backend the report does not cover keeps its documented default.
        assert speedups["event"] == _BACKEND_SPEEDUP["event"]

    def test_env_var_selects_report(self, tmp_path, monkeypatch):
        path = self._report(tmp_path, {"reference": 1e6, "event": 2e6})
        monkeypatch.setenv("REPRO_BENCH_BACKENDS", str(path))
        assert backend_speedup("event") == pytest.approx(2.0)

    def test_unknown_backend_charged_as_reference(self, tmp_path):
        assert backend_speedup("quantum", tmp_path / "nope.json") == 1.0
