"""Trace stream utilities and statistics."""

from __future__ import annotations

import pytest

from repro.isa import Instruction, InstructionClass
from repro.trace import collect_statistics, materialize, split_warmup, take
from repro.trace.stream import concatenate, interleave


def nops(n, pc_base=0):
    return [Instruction(InstructionClass.NOP, pc=pc_base + 4 * i) for i in range(n)]


class TestStream:
    def test_take_limits(self):
        assert len(list(take(nops(10), 3))) == 3

    def test_take_short_input(self):
        assert len(list(take(nops(2), 10))) == 2

    def test_materialize_is_identity_for_lists(self):
        trace = nops(5)
        assert materialize(trace) is trace

    def test_materialize_realizes_iterators(self):
        assert len(materialize(iter(nops(5)))) == 5

    def test_split_warmup(self):
        warm, measure = split_warmup(nops(100), warmup=30, measure=50)
        assert len(warm) == 30
        assert len(measure) == 50

    def test_split_warmup_short_stream(self):
        warm, measure = split_warmup(nops(40), warmup=30, measure=50)
        assert len(warm) == 30
        assert len(measure) == 10

    def test_split_warmup_validates(self):
        with pytest.raises(ValueError):
            split_warmup(nops(10), warmup=-1, measure=5)

    def test_concatenate(self):
        combined = list(concatenate(nops(3), nops(2, pc_base=100)))
        assert len(combined) == 5
        assert combined[3].pc == 100

    def test_interleave_round_robin(self):
        a = nops(4, pc_base=0)
        b = nops(4, pc_base=1000)
        merged = list(interleave([a, b], quantum=2))
        assert len(merged) == 8
        assert [inst.pc for inst in merged[:4]] == [0, 4, 1000, 1004]

    def test_interleave_uneven_lengths(self):
        merged = list(interleave([nops(5), nops(2, pc_base=1000)], quantum=2))
        assert len(merged) == 7

    def test_interleave_validates_quantum(self):
        with pytest.raises(ValueError):
            list(interleave([nops(2)], quantum=0))


class TestStatistics:
    def test_mix_counts(self):
        trace = [
            Instruction(InstructionClass.LOAD, pc=0, address=8, dest=1),
            Instruction(InstructionClass.STORE, pc=4, address=16),
            Instruction(InstructionClass.BRANCH, pc=8, taken=True),
            Instruction(InstructionClass.CAS, pc=12, address=0,
                        lock_acquire=True),
            Instruction(InstructionClass.MEMBAR, pc=16),
            Instruction(InstructionClass.ALU, pc=20, dest=2),
        ]
        stats = collect_statistics(trace)
        assert stats.total == 6
        assert stats.mix.loads == 2      # LOAD + CAS
        assert stats.mix.stores == 2     # STORE + CAS
        assert stats.mix.branches == 1
        assert stats.mix.atomics == 1
        assert stats.mix.barriers == 1
        assert stats.mix.lock_acquires == 1

    def test_store_frequency_per_100(self):
        trace = nops(90) + [
            Instruction(InstructionClass.STORE, pc=0, address=8)
        ] * 10
        stats = collect_statistics(trace)
        assert stats.mix.store_frequency == pytest.approx(10.0)

    def test_empty_trace(self):
        stats = collect_statistics([])
        assert stats.total == 0
        assert stats.mix.store_frequency == 0.0
