"""Store buffer / store queue: coalescing, prefetch and commit rules."""

from __future__ import annotations

from repro.config import ConsistencyModel, CoreConfig, StorePrefetchMode
from repro.core import StoreEntry, StoreUnit


def unit(**kwargs):
    defaults = dict(
        store_buffer=4,
        store_queue=4,
        store_prefetch=StorePrefetchMode.NONE,
        coalesce_bytes=8,
    )
    defaults.update(kwargs)
    return StoreUnit(CoreConfig(**defaults))


def entry(granule=0x1000, missing=False, **kwargs):
    return StoreEntry(granule=granule, missing=missing, **kwargs)


class TestDispatchRetire:
    def test_hit_store_flows_through(self):
        su = unit()
        result = su.dispatch(entry(), retirable=True, epoch=0)
        assert result.accepted
        assert su.drained  # committed immediately by the pump

    def test_unretirable_store_parks_in_buffer(self):
        su = unit()
        su.dispatch(entry(), retirable=False, epoch=0)
        assert len(su.sb) == 1 and not su.sq

    def test_store_buffer_full_rejects(self):
        su = unit(store_buffer=2)
        su.dispatch(entry(0x1000), retirable=False, epoch=0)
        su.dispatch(entry(0x2000), retirable=False, epoch=0)
        result = su.dispatch(entry(0x3000), retirable=False, epoch=0)
        assert not result.accepted
        assert len(su.sb) == 2

    def test_sq_full_of_pending_misses_stalls_retire(self):
        su = unit(store_queue=2)
        issued = []
        for granule in (0x1000, 0x2000):
            result = su.dispatch(
                entry(granule, missing=True), retirable=True, epoch=0
            )
            issued.extend(result.issued)
        result = su.dispatch(entry(0x3000), retirable=True, epoch=0)
        assert result.retire_stalled_sq_full
        assert su.sq_full


class TestPrefetchModes:
    def test_sp0_issues_only_at_head(self):
        su = unit()
        r1 = su.dispatch(entry(0x1000, missing=True), retirable=True, epoch=0)
        r2 = su.dispatch(entry(0x2000, missing=True), retirable=True, epoch=0)
        assert len(r1.issued) == 1   # head store's request
        assert len(r2.issued) == 0   # second waits behind the head

    def test_sp1_issues_at_retire(self):
        su = unit(store_prefetch=StorePrefetchMode.AT_RETIRE)
        r1 = su.dispatch(entry(0x1000, missing=True), retirable=True, epoch=0)
        r2 = su.dispatch(entry(0x2000, missing=True), retirable=True, epoch=0)
        assert len(r1.issued) == 1
        assert len(r2.issued) == 1

    def test_sp1_does_not_issue_for_parked_stores(self):
        su = unit(store_prefetch=StorePrefetchMode.AT_RETIRE)
        result = su.dispatch(
            entry(0x1000, missing=True), retirable=False, epoch=0
        )
        assert result.issued == []

    def test_sp2_issues_at_dispatch_even_when_parked(self):
        su = unit(store_prefetch=StorePrefetchMode.AT_EXECUTE)
        result = su.dispatch(
            entry(0x1000, missing=True), retirable=False, epoch=0
        )
        assert len(result.issued) == 1

    def test_wc_issues_at_dispatch(self):
        su = unit(consistency=ConsistencyModel.WC)
        result = su.dispatch(
            entry(0x1000, missing=True), retirable=False, epoch=0
        )
        assert len(result.issued) == 1

    def test_accelerated_stores_never_issue(self):
        su = unit(store_prefetch=StorePrefetchMode.AT_EXECUTE)
        result = su.dispatch(
            entry(0x1000, missing=True, accelerated=True),
            retirable=True, epoch=0,
        )
        assert result.issued == []
        assert su.drained  # committed instantly


class TestCommitPc:
    def test_missing_head_blocks_younger_hits(self):
        su = unit()
        su.dispatch(entry(0x1000, missing=True), retirable=True, epoch=0)
        su.dispatch(entry(0x2000), retirable=True, epoch=0)
        assert len(su.sq) == 2  # the hit store cannot pass the miss

    def test_completed_miss_commits_next_epoch(self):
        su = unit()
        su.dispatch(entry(0x1000, missing=True), retirable=True, epoch=0)
        su.dispatch(entry(0x2000), retirable=True, epoch=0)
        su.pump(epoch=1)  # the miss issued in epoch 0 has now returned
        assert su.drained

    def test_all_completed_predicate(self):
        su = unit()
        su.dispatch(entry(0x1000, missing=True), retirable=True, epoch=0)
        assert not su.all_completed(0)
        assert su.all_completed(1)


class TestCommitWc:
    def test_hits_commit_past_blocked_miss(self):
        su = unit(consistency=ConsistencyModel.WC)
        su.dispatch(entry(0x1000, missing=True), retirable=True, epoch=0)
        su.dispatch(entry(0x2000), retirable=True, epoch=0)
        assert len(su.sq) == 1  # only the miss remains

    def test_barrier_orders_commits(self):
        su = unit(consistency=ConsistencyModel.WC)
        su.dispatch(entry(0x1000, missing=True), retirable=True, epoch=0)
        su.add_barrier()
        su.dispatch(entry(0x2000), retirable=True, epoch=0)
        # The hit store after the lwsync may not commit before the miss.
        assert len(su.sq) == 2
        su.pump(epoch=1)
        assert su.drained

    def test_barrier_blocks_coalescing_across_it(self):
        su = unit(consistency=ConsistencyModel.WC, store_queue=8)
        su.dispatch(entry(0x1000, missing=True), retirable=True, epoch=0)
        su.dispatch(entry(0x2000, missing=True), retirable=True, epoch=0)
        su.add_barrier()
        su.dispatch(entry(0x2000, missing=True), retirable=True, epoch=0)
        # Without the barrier this would coalesce into the second entry.
        assert len(su.sq) == 3


class TestCoalescing:
    def test_pc_coalesces_consecutive_same_granule(self):
        su = unit()
        su.dispatch(entry(0x1000, missing=True), retirable=True, epoch=0)
        su.dispatch(entry(0x2000), retirable=True, epoch=0)
        su.dispatch(entry(0x2000), retirable=True, epoch=0)
        assert su.stats.coalesced == 1
        assert len(su.sq) == 2

    def test_pc_does_not_coalesce_non_adjacent(self):
        su = unit()
        su.dispatch(entry(0x1000, missing=True), retirable=True, epoch=0)
        su.dispatch(entry(0x2000), retirable=True, epoch=0)
        su.dispatch(entry(0x1000), retirable=True, epoch=0)  # not youngest
        assert su.stats.coalesced == 0
        assert len(su.sq) == 3

    def test_wc_coalesces_with_any_eligible_entry(self):
        su = unit(consistency=ConsistencyModel.WC)
        su.dispatch(entry(0x1000, missing=True), retirable=True, epoch=0)
        su.dispatch(entry(0x2000, missing=True), retirable=True, epoch=0)
        su.dispatch(entry(0x1000, missing=True), retirable=True, epoch=0)
        assert su.stats.coalesced == 1

    def test_coalescing_disabled(self):
        su = unit(coalesce_bytes=0)
        su.dispatch(entry(0x1000, missing=True), retirable=True, epoch=0)
        su.dispatch(entry(0x1000), retirable=True, epoch=0)
        assert su.stats.coalesced == 0

    def test_coalescing_extends_effective_capacity(self):
        """The paper's point: coalescing reduces the SQ-full frequency."""
        su = unit(store_queue=2)
        su.dispatch(entry(0x1000, missing=True), retirable=True, epoch=0)
        for _ in range(5):
            result = su.dispatch(entry(0x2000), retirable=True, epoch=0)
            assert result.accepted
            assert not result.retire_stalled_sq_full


class TestSilentCompletion:
    def test_silent_completion_drains(self):
        su = unit()
        result = su.dispatch(
            entry(0x1000, missing=True), retirable=True, epoch=0
        )
        su.complete_silently(result.issued)
        assert su.drained
        assert su.stats.silently_completed == 1

    def test_granule_mapping_uses_coalesce_size(self):
        su = unit(coalesce_bytes=8)
        assert su.granule_of(0x1237) == 0x1230
        su64 = unit(coalesce_bytes=64)
        assert su64.granule_of(0x1237) == 0x1200
