"""Transactional-memory critical sections."""

from __future__ import annotations

from repro.isa import Instruction, InstructionClass as IC
from repro.locks import (
    apply_transactional_memory,
    detect_locks,
    rewrite_pc_to_wc,
)

LOCK = 0x9000


def pc_section():
    return detect_locks([
        Instruction(IC.CAS, pc=0x100, address=LOCK, size=8, dest=5),
        Instruction(IC.ALU, pc=0x104, dest=6),
        Instruction(IC.STORE, pc=0x108, address=LOCK, size=8),
    ])


class TestPcTransactions:
    def test_acquire_and_release_become_nops(self):
        transacted = apply_transactional_memory(pc_section())
        kinds = [inst.kind for inst in transacted]
        assert kinds == [IC.NOP, IC.ALU, IC.NOP]

    def test_body_untouched(self):
        transacted = apply_transactional_memory(pc_section())
        assert transacted[1] == pc_section()[1]

    def test_no_lock_word_access_remains(self):
        transacted = apply_transactional_memory(pc_section())
        assert not any(
            inst.is_memory and inst.address == LOCK for inst in transacted
        )

    def test_tm_removes_more_than_sle(self):
        """SLE keeps the acquire as a plain load; TM removes even that."""
        from repro.locks import apply_sle
        sle = apply_sle(pc_section())
        tm = apply_transactional_memory(pc_section())
        sle_loads = sum(1 for inst in sle if inst.is_load)
        tm_loads = sum(1 for inst in tm if inst.is_load)
        assert tm_loads < sle_loads


class TestWcTransactions:
    def test_whole_wc_idiom_elided(self):
        wc = rewrite_pc_to_wc(pc_section())
        transacted = apply_transactional_memory(wc)
        kinds = {inst.kind for inst in transacted}
        assert IC.LOAD_LOCKED not in kinds
        assert IC.STORE_COND not in kinds
        assert IC.ISYNC not in kinds
        assert IC.LWSYNC not in kinds

    def test_non_lock_lwarx_survives(self):
        trace = [Instruction(IC.LOAD_LOCKED, pc=0, address=0x40, dest=3)]
        assert apply_transactional_memory(trace)[0].kind is IC.LOAD_LOCKED

    def test_non_lock_atomics_survive(self):
        trace = [Instruction(IC.CAS, pc=0, address=0x40, size=8)]
        assert apply_transactional_memory(trace)[0].kind is IC.CAS

    def test_length_preserved(self):
        wc = rewrite_pc_to_wc(pc_section())
        assert len(apply_transactional_memory(wc)) == len(wc)


class TestEndToEnd:
    def test_tm_variant_at_least_as_good_as_sle(self):
        from repro.harness import ExperimentSettings
        from repro.harness.experiment import Workbench
        bench = Workbench(ExperimentSettings(
            warmup=10_000, measure=25_000, calibrate=False,
        ))
        sle = bench.run("specjbb", variant="pc_sle").epi
        tm = bench.run("specjbb", variant="pc_tm").epi
        assert tm <= sle * 1.05
