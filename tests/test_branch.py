"""Branch prediction: gshare, BTB, RAS and the combined predictor."""

from __future__ import annotations

import pytest

from repro.config import BranchPredictorConfig
from repro.frontend import (
    BranchPredictor,
    BranchTargetBuffer,
    GshareTable,
    ReturnAddressStack,
)
from repro.isa import Instruction, InstructionClass


def branch(pc, taken, target=0x2000, srcs=()):
    return Instruction(
        InstructionClass.BRANCH, pc=pc, taken=taken, target=target, srcs=srcs
    )


class TestGshare:
    def test_learns_always_taken(self):
        table = GshareTable(1024, history_bits=4)
        for _ in range(8):
            table.update(0x100, True)
        assert table.predict(0x100)

    def test_learns_never_taken(self):
        table = GshareTable(1024, history_bits=4)
        for _ in range(8):
            table.update(0x100, False)
        assert not table.predict(0x100)

    def test_counters_saturate(self):
        table = GshareTable(1024, history_bits=0)
        for _ in range(100):
            table.update(0x100, True)
        table.update(0x100, False)  # one not-taken shouldn't flip it
        assert table.predict(0x100)

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            GshareTable(1000, history_bits=4)


class TestBtb:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(256)
        assert btb.lookup(0x100) is None
        btb.update(0x100, 0x2000)
        assert btb.lookup(0x100) == 0x2000

    def test_conflicting_pcs_replace(self):
        btb = BranchTargetBuffer(16)
        btb.update(0x100, 0x2000)
        btb.update(0x100 + 16 * 4, 0x3000)  # same direct-mapped slot
        assert btb.lookup(0x100) is None


class TestRas:
    def test_push_pop_order(self):
        ras = ReturnAddressStack(4)
        ras.push(0x10)
        ras.push(0x20)
        assert ras.pop() == 0x20
        assert ras.pop() == 0x10
        assert ras.pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        for value in (1, 2, 3):
            ras.push(value)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None


class TestCombinedPredictor:
    @pytest.fixture
    def predictor(self):
        return BranchPredictor(BranchPredictorConfig(
            gshare_entries=4096, btb_entries=256, history_bits=2,
        ))

    def test_biased_branch_becomes_predictable(self, predictor):
        for _ in range(20):
            predictor.observe(branch(0x100, taken=True, target=0x500))
        predictor.stats.reset()
        for _ in range(20):
            predictor.observe(branch(0x100, taken=True, target=0x500))
        assert predictor.stats.mispredictions == 0

    def test_calls_and_returns_pair_through_ras(self, predictor):
        call = Instruction(
            InstructionClass.CALL, pc=0x100, taken=True, target=0x800
        )
        ret = Instruction(
            InstructionClass.RETURN, pc=0x800, taken=True, target=0x104
        )
        predictor.observe(call)
        assert predictor.observe(ret) is False  # RAS top matches

    def test_corrupted_ras_mispredicts_return(self, predictor):
        ret = Instruction(
            InstructionClass.RETURN, pc=0x800, taken=True, target=0x104
        )
        predictor.observe(Instruction(
            InstructionClass.CALL, pc=0x100, taken=True, target=0x800
        ))
        predictor.observe(Instruction(
            InstructionClass.CALL, pc=0x200, taken=True, target=0x900
        ))
        assert predictor.observe(ret) is True  # wrong return address on top
        assert predictor.stats.ras_mispredictions == 1

    def test_btb_miss_counts_as_mispredict_for_taken_branch(self, predictor):
        # Train direction as taken with one target, then change the target:
        # the stale BTB entry redirects fetch to the wrong place.
        for _ in range(10):
            predictor.observe(branch(0x100, taken=True, target=0x500))
        predictor.stats.reset()
        predictor.observe(branch(0x100, taken=True, target=0x900))
        assert predictor.stats.mispredictions == 1
        assert predictor.stats.btb_misses == 1

    def test_mispredict_ratio_accounting(self, predictor):
        predictor.observe(branch(0x100, taken=True))
        assert 0.0 <= predictor.stats.mispredict_ratio <= 1.0
