"""The parallel job runner (repro.engine.runner).

The expensive contract — a multi-worker batch returns bit-identical numbers
to a serial run and the second invocation starts from a warm persistent
cache — is exercised on a deliberately tiny trace so the whole file stays
fast enough for tier 1.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import api
from repro.config import StorePrefetchMode
from repro.engine import EngineRunner, JobSpec, RunReport
from repro.engine.runner import JobResult
from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench
from repro.harness.sweeps import SweepSpec

SMALL = ExperimentSettings(warmup=2000, measure=6000, seed=11, calibrate=False)

GRID_JOBS = [
    JobSpec(
        workload="database",
        core_changes=(("store_prefetch", prefetch), ("store_queue", queue)),
    )
    for prefetch in (StorePrefetchMode.NONE, StorePrefetchMode.AT_RETIRE)
    for queue in (16, 64)
]


def _runner(tmp_path, **kwargs):
    kwargs.setdefault("settings", SMALL)
    kwargs.setdefault("cache_dir", tmp_path / "cache")
    return EngineRunner(**kwargs)


class TestJobSpec:
    def test_describe_renders_knobs(self):
        spec = GRID_JOBS[0]
        assert spec.describe() == \
            "simulate:database/pc store_prefetch=sp0 store_queue=16"

    def test_label_overrides_describe(self):
        spec = dataclasses.replace(GRID_JOBS[0], label="baseline")
        assert spec.describe() == "baseline"

    def test_spec_is_hashable(self):
        assert len({GRID_JOBS[0], GRID_JOBS[0]}) == 1


class TestSerialExecution:
    def test_batch_runs_and_reports(self, tmp_path):
        report = _runner(tmp_path, workers=1).run(GRID_JOBS)
        assert report.ok_count == len(GRID_JOBS)
        assert report.failed == []
        assert report.workers == 1
        assert all(job.result.epi_per_1000 > 0 for job in report.jobs)

    def test_annotate_action_returns_no_result(self, tmp_path):
        job = JobSpec(workload="database", action="annotate")
        report = _runner(tmp_path, workers=1).run([job])
        assert report.ok_count == 1
        assert report.jobs[0].result is None

    def test_unknown_action_fails_the_job_not_the_batch(self, tmp_path):
        jobs = [JobSpec(workload="database", action="bogus"), GRID_JOBS[0]]
        report = _runner(tmp_path, workers=1).run(jobs)
        assert report.jobs[0].status == "failed"
        assert "bogus" in report.jobs[0].error
        assert report.jobs[1].ok

    def test_failed_job_is_retried_once(self, tmp_path):
        job = JobSpec(workload="no-such-workload")
        report = _runner(tmp_path, workers=1).run([job])
        assert report.jobs[0].status == "failed"
        assert report.jobs[0].attempts == 2

    def test_retries_zero_disables_retry(self, tmp_path):
        job = JobSpec(workload="no-such-workload")
        report = _runner(tmp_path, workers=1, retries=0).run([job])
        assert report.jobs[0].attempts == 1

    def test_raise_on_failure(self, tmp_path):
        report = _runner(tmp_path, workers=1).run(
            [JobSpec(workload="no-such-workload")]
        )
        with pytest.raises(RuntimeError, match="1/1 jobs failed"):
            report.raise_on_failure()

    def test_summary_mentions_jobs_and_cache(self, tmp_path):
        report = _runner(tmp_path, workers=1).run(GRID_JOBS[:1])
        text = report.summary()
        assert "1/1 jobs ok" in text
        assert "artifact cache" in text


class TestParallelEquivalence:
    def test_parallel_matches_serial_bit_for_bit(self, tmp_path):
        serial = _runner(tmp_path, workers=1).run(GRID_JOBS)
        parallel = _runner(tmp_path, workers=3).run(GRID_JOBS)
        assert parallel.ok_count == len(GRID_JOBS)
        assert [j.result.epi_per_1000 for j in serial.jobs] == \
            [j.result.epi_per_1000 for j in parallel.jobs]
        assert [j.result.stores_committed for j in serial.jobs] == \
            [j.result.stores_committed for j in parallel.jobs]
        assert [j.result.termination_histogram() for j in serial.jobs] == \
            [j.result.termination_histogram() for j in parallel.jobs]

    def test_second_invocation_is_warm(self, tmp_path):
        cold = _runner(tmp_path, workers=1).run(GRID_JOBS)
        warm = _runner(tmp_path, workers=1).run(GRID_JOBS)
        assert cold.cache_misses > 0
        assert warm.cache_misses == 0
        assert warm.cache_hits > 0
        assert [j.result.epi_per_1000 for j in warm.jobs] == \
            [j.result.epi_per_1000 for j in cold.jobs]

    def test_custom_profiles_reach_workers(self, tmp_path):
        bench = Workbench(SMALL, cache_dir=None)
        base = bench.profile("database")
        scaled = dataclasses.replace(
            base,
            load_miss_per_100=base.load_miss_per_100 * 3,
            store_miss_per_100=base.store_miss_per_100 * 3,
        )
        default = _runner(tmp_path, workers=2).run(GRID_JOBS[:1])
        custom = _runner(
            tmp_path, workers=2, profiles={"database": scaled},
        ).run(GRID_JOBS[:1])
        assert default.ok_count == custom.ok_count == 1
        # The scaled profile hashes to different artifact keys, so the two
        # runs must not have shared (or equal) results.
        assert custom.jobs[0].result.epi_per_1000 != \
            default.jobs[0].result.epi_per_1000


class TestSweepIntegration:
    def test_api_sweep_matches_serial_workbench(self, tmp_path):
        bench = Workbench(SMALL, cache_dir=tmp_path / "cache")
        spec = SweepSpec.build(
            "database",
            store_prefetch=[StorePrefetchMode.NONE,
                            StorePrefetchMode.AT_RETIRE],
            store_queue=[16, 64],
        )
        parallel = api.sweep(spec, runner=_runner(tmp_path, workers=2))
        serial = [
            bench.run("database", **dict(point)) for point in spec.points()
        ]
        assert [r.point for r in parallel] == spec.points()
        assert [r.epi_per_1000 for r in parallel] == \
            [r.epi_per_1000 for r in serial]

    def test_api_sweep_multi_workload_is_one_batch(self, tmp_path):
        names = ("database", "tpcw")
        spec = SweepSpec.build(names, store_queue=[16, 64])
        records = api.sweep(spec, runner=_runner(tmp_path, workers=2))
        assert [r.workload for r in records] == \
            ["database", "database", "tpcw", "tpcw"]
        bench = Workbench(SMALL, cache_dir=tmp_path / "cache")
        for record in records:
            serial = bench.run(record.workload, **record.knobs)
            assert record.epi_per_1000 == serial.epi_per_1000


class TestReportShape:
    def test_results_preserve_submission_order(self, tmp_path):
        report = _runner(tmp_path, workers=2).run(GRID_JOBS)
        assert [j.spec for j in report.jobs] == GRID_JOBS
        assert report.results() == [j.result for j in report.jobs]

    def test_empty_batch(self, tmp_path):
        report = _runner(tmp_path, workers=2).run([])
        assert isinstance(report, RunReport)
        assert report.jobs == []
        report.raise_on_failure()

    def test_job_result_ok_property(self):
        assert JobResult(spec=GRID_JOBS[0], status="ok").ok
        assert not JobResult(spec=GRID_JOBS[0], status="timeout").ok

    def test_runner_validates_arguments(self):
        with pytest.raises(ValueError):
            EngineRunner(job_timeout=0)
        with pytest.raises(ValueError):
            EngineRunner(retries=-1)


class TestSubmitBatch:
    def test_background_batch_matches_blocking_run(self, tmp_path):
        runner = _runner(tmp_path)
        handle = runner.submit_batch(GRID_JOBS[:2])
        report = handle.result(timeout=240.0)
        assert handle.done()
        blocking = _runner(tmp_path).run(GRID_JOBS[:2])
        assert report.results() == blocking.results()

    def test_callback_fires_with_resolved_handle(self, tmp_path):
        seen = []
        runner = _runner(tmp_path)
        handle = runner.submit_batch(GRID_JOBS[:1], callback=seen.append)
        report = handle.result(timeout=240.0)
        assert seen == [handle]
        assert seen[0].result(timeout=0.0) == report

    def test_result_times_out_if_not_done(self, tmp_path):
        runner = _runner(tmp_path)
        handle = runner.submit_batch(GRID_JOBS[:1])
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.0)
        handle.wait()  # then let it finish cleanly


class TestReportWire:
    def test_real_run_survives_json_round_trip(self, tmp_path):
        import json

        report = _runner(tmp_path).run(GRID_JOBS[:2])
        wire = json.loads(json.dumps(report.to_dict()))
        back = RunReport.from_dict(wire)
        assert back == report
        assert back.results() == report.results()
