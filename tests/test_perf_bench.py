"""The continuous perf harness (repro.bench.perf).

One real (single-rep, single-profile) measurement to prove the pipeline
runs end to end, plus pure-function tests of the report plumbing and the
regression gate on synthetic reports.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.perf import (
    BENCH_MEASURE,
    DEFAULT_PROFILES,
    BenchProfile,
    check_regression,
    load_report,
    run_core_bench,
    write_report,
)


def _synthetic_report(ips_by_profile, geomean):
    return {
        "schema": 1,
        "profiles": {
            name: {"instructions_per_sec": ips}
            for name, ips in ips_by_profile.items()
        },
        "aggregate": {"instructions_per_sec_geomean": geomean},
    }


class TestRunCoreBench:
    def test_single_profile_smoke(self):
        report = run_core_bench(
            reps=1, warmup_reps=0,
            profiles=(BenchProfile("database_pc", "database"),),
        )
        row = report["profiles"]["database_pc"]
        assert row["instructions"] == BENCH_MEASURE
        assert row["instructions_per_sec"] > 0
        assert row["epochs"] > 0
        assert report["aggregate"]["instructions_per_sec_geomean"] == \
            pytest.approx(row["instructions_per_sec"])

    def test_default_profile_set_covers_every_workload(self):
        assert {p.workload for p in DEFAULT_PROFILES} == \
            {"database", "tpcw", "specjbb", "specweb"}

    def test_rejects_bad_rep_counts(self):
        with pytest.raises(ValueError):
            run_core_bench(reps=0)
        with pytest.raises(ValueError):
            run_core_bench(reps=1, warmup_reps=-1)


class TestReportIO:
    def test_write_and_load_round_trip(self, tmp_path):
        report = _synthetic_report({"database_pc": 1000.0}, 1000.0)
        path = write_report(report, tmp_path / "BENCH_core.json")
        assert load_report(path) == report

    def test_load_rejects_non_reports(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError):
            load_report(path)


class TestRegressionGate:
    BASE = _synthetic_report(
        {"database_pc": 1000.0, "database_wc": 2000.0}, 1414.2,
    )

    def test_equal_reports_pass(self):
        assert check_regression(self.BASE, self.BASE) == []

    def test_small_drop_within_tolerance_passes(self):
        current = _synthetic_report(
            {"database_pc": 850.0, "database_wc": 1700.0}, 1202.0,
        )
        assert check_regression(current, self.BASE, 0.20) == []

    def test_large_drop_fails_per_profile_and_geomean(self):
        current = _synthetic_report(
            {"database_pc": 700.0, "database_wc": 1700.0}, 1090.0,
        )
        failures = check_regression(current, self.BASE, 0.20)
        assert len(failures) == 2
        assert any("database_pc" in f for f in failures)
        assert any("geomean" in f for f in failures)

    def test_speedups_never_fail(self):
        current = _synthetic_report(
            {"database_pc": 5000.0, "database_wc": 9000.0}, 6708.2,
        )
        assert check_regression(current, self.BASE, 0.20) == []

    def test_unmatched_profiles_are_ignored(self):
        current = _synthetic_report({"new_profile": 1.0}, 1414.2)
        assert check_regression(current, self.BASE, 0.20) == []

    def test_tolerance_must_be_a_fraction(self):
        with pytest.raises(ValueError):
            check_regression(self.BASE, self.BASE, max_regression=0.0)
        with pytest.raises(ValueError):
            check_regression(self.BASE, self.BASE, max_regression=1.0)


class TestCommittedReport:
    """The BENCH_core.json at the repo root is a valid report recording the
    required speedup over the pre-optimization baseline."""

    def test_committed_report_is_loadable_and_fast_enough(self):
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "BENCH_core.json"
        report = load_report(path)
        assert "baseline" in report
        assert report["speedup_vs_baseline"] >= 1.5
