"""Register scoreboard: epoch-time dependence tracking."""

from __future__ import annotations

import pytest

from repro.core import RegisterScoreboard
from repro.isa.registers import REG_NONE, REG_ZERO


class TestScoreboard:
    def test_fresh_registers_ready_in_epoch_zero(self):
        board = RegisterScoreboard()
        assert board.ready_epoch((1, 2, 3)) == 0
        assert board.is_ready((1, 2, 3), 0)

    def test_on_chip_producer_same_epoch(self):
        board = RegisterScoreboard()
        board.produce_on_chip(5, 3)
        assert board.ready_epoch((5,)) == 3
        assert board.is_ready((5,), 3)

    def test_off_chip_producer_next_epoch(self):
        board = RegisterScoreboard()
        board.produce_off_chip(5, 3)
        assert board.ready_epoch((5,)) == 4
        assert not board.is_ready((5,), 3)
        assert board.is_ready((5,), 4)

    def test_latest_source_dominates(self):
        board = RegisterScoreboard()
        board.produce_on_chip(1, 2)
        board.produce_off_chip(2, 5)
        assert board.ready_epoch((1, 2)) == 6

    def test_zero_and_none_registers_never_delay(self):
        board = RegisterScoreboard()
        board.produce_off_chip(REG_ZERO, 9)    # ignored
        assert board.ready_epoch((REG_ZERO, REG_NONE)) == 0

    def test_depends_on_epoch_miss(self):
        board = RegisterScoreboard()
        board.produce_off_chip(7, 2)
        assert board.depends_on_epoch_miss((7,), 2)
        assert not board.depends_on_epoch_miss((7,), 3)

    def test_monotonic_updates_only(self):
        board = RegisterScoreboard()
        board.produce_off_chip(4, 5)
        board.produce_on_chip(4, 1)  # older producer cannot rewind readiness
        assert board.ready_epoch((4,)) == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            RegisterScoreboard(0)
