"""Parameter-sweep utility."""

from __future__ import annotations

import pytest

from repro.config import StorePrefetchMode
from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench
from repro.harness import sweeps
from repro.harness.sweeps import best_point, pareto_front


def sweep(*args, **kwargs):
    # The module-level entry point is deprecated (repro.api.sweep is the
    # front door): exercise it deliberately and assert the warning instead
    # of letting it leak into pytest's warning summary.
    with pytest.warns(DeprecationWarning, match="sweep"):
        return sweeps.sweep(*args, **kwargs)


def sweep_workloads(*args, **kwargs):
    with pytest.warns(DeprecationWarning, match="sweep_workloads"):
        return sweeps.sweep_workloads(*args, **kwargs)


@pytest.fixture(scope="module")
def bench():
    return Workbench(ExperimentSettings(
        warmup=8_000, measure=20_000, seed=3, calibrate=False,
    ))


class TestSweep:
    def test_grid_order_and_size(self, bench):
        records = sweep(
            bench, "tpcw",
            store_queue=[16, 32],
            store_buffer=[8, 16],
        )
        assert len(records) == 4
        assert records[0].knobs == {"store_queue": 16, "store_buffer": 8}
        assert records[-1].knobs == {"store_queue": 32, "store_buffer": 16}

    def test_metrics_populated(self, bench):
        [record] = sweep(bench, "tpcw", store_queue=[32])
        assert record.epi_per_1000 > 0
        assert record.mlp >= 1.0
        assert 0 <= record.store_overlap_fraction <= 1

    def test_variant_passthrough(self, bench):
        [pc] = sweep(bench, "tpcw", store_queue=[32])
        [wc] = sweep(bench, "tpcw", variant="wc", store_queue=[32])
        assert wc.epi_per_1000 <= pc.epi_per_1000

    def test_label_renders_enums(self, bench):
        [record] = sweep(
            bench, "tpcw", store_prefetch=[StorePrefetchMode.AT_EXECUTE]
        )
        assert record.label() == "store_prefetch=sp2"

    def test_empty_axes_rejected(self, bench):
        with pytest.raises(ValueError):
            sweep(bench, "tpcw")

    def test_sweep_workloads(self, bench):
        results = sweep_workloads(
            bench, ("tpcw", "specweb"), store_queue=[32]
        )
        assert set(results) == {"tpcw", "specweb"}


class TestSelection:
    def test_best_point_minimizes(self, bench):
        records = sweep(bench, "specweb", store_queue=[8, 32, 256])
        best = best_point(records)
        assert best.epi_per_1000 == min(r.epi_per_1000 for r in records)

    def test_best_point_empty_rejected(self):
        with pytest.raises(ValueError):
            best_point([])

    def test_pareto_front_epi_vs_bandwidth(self, bench):
        records = sweep(
            bench, "database",
            store_prefetch=list(StorePrefetchMode),
        )
        front = pareto_front(records)
        assert 1 <= len(front) <= len(records)
        # Sp0 has zero bandwidth overhead: it is never dominated on that
        # axis, so it must be on the front.
        sp0 = next(r for r in records
                   if r.knobs["store_prefetch"] is StorePrefetchMode.NONE)
        assert sp0 in front
