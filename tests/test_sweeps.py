"""Parameter-sweep utility.

Since v2.0 execution goes through :func:`repro.api.sweep`; these tests
drive the spec/record machinery serially through a Workbench so the grid
semantics (ordering, coercion, selection helpers) stay covered without a
process pool.  The parallel path is exercised in test_engine_runner.py.
"""

from __future__ import annotations

import pytest

from repro.config import StorePrefetchMode
from repro.engine.runner import JobResult, RunReport
from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench
from repro.harness.sweeps import SweepSpec, best_point, pareto_front


def sweep(bench, workloads, variant="pc", **axes):
    # Run the grid serially and pair it through SweepSpec.records — the
    # same pairing api.sweep uses, minus the worker pool.
    spec = SweepSpec.build(workloads, variant, **axes)
    results = [
        JobResult(
            spec=job,
            status="ok",
            result=bench.run(job.workload, variant=job.variant,
                             **dict(job.core_changes)),
        )
        for job in spec.to_jobs()
    ]
    report = RunReport(jobs=results, wall_time=0.0, workers=1)
    return spec.records(report)


@pytest.fixture(scope="module")
def bench():
    return Workbench(ExperimentSettings(
        warmup=8_000, measure=20_000, seed=3, calibrate=False,
    ))


class TestSweep:
    def test_grid_order_and_size(self, bench):
        records = sweep(
            bench, "tpcw",
            store_queue=[16, 32],
            store_buffer=[8, 16],
        )
        assert len(records) == 4
        assert records[0].knobs == {"store_queue": 16, "store_buffer": 8}
        assert records[-1].knobs == {"store_queue": 32, "store_buffer": 16}

    def test_metrics_populated(self, bench):
        [record] = sweep(bench, "tpcw", store_queue=[32])
        assert record.epi_per_1000 > 0
        assert record.mlp >= 1.0
        assert 0 <= record.store_overlap_fraction <= 1

    def test_variant_passthrough(self, bench):
        [pc] = sweep(bench, "tpcw", store_queue=[32])
        [wc] = sweep(bench, "tpcw", variant="wc", store_queue=[32])
        assert wc.epi_per_1000 <= pc.epi_per_1000

    def test_label_renders_enums(self, bench):
        [record] = sweep(
            bench, "tpcw", store_prefetch=[StorePrefetchMode.AT_EXECUTE]
        )
        assert record.label() == "store_prefetch=sp2"

    def test_empty_axes_rejected(self, bench):
        with pytest.raises(ValueError):
            sweep(bench, "tpcw")

    def test_multi_workload_grid_is_workload_major(self, bench):
        records = sweep(bench, ("tpcw", "specweb"), store_queue=[32])
        assert [r.workload for r in records] == ["tpcw", "specweb"]


class TestSelection:
    def test_best_point_minimizes(self, bench):
        records = sweep(bench, "specweb", store_queue=[8, 32, 256])
        best = best_point(records)
        assert best.epi_per_1000 == min(r.epi_per_1000 for r in records)

    def test_best_point_empty_rejected(self):
        with pytest.raises(ValueError):
            best_point([])

    def test_pareto_front_epi_vs_bandwidth(self, bench):
        records = sweep(
            bench, "database",
            store_prefetch=list(StorePrefetchMode),
        )
        front = pareto_front(records)
        assert 1 <= len(front) <= len(records)
        # Sp0 has zero bandwidth overhead: it is never dominated on that
        # axis, so it must be on the front.
        sp0 = next(r for r in records
                   if r.knobs["store_prefetch"] is StorePrefetchMode.NONE)
        assert sp0 in front
