"""Configuration validation and derived-value tests."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    BranchPredictorConfig,
    CacheConfig,
    ConsistencyModel,
    CoreConfig,
    MemoryConfig,
    ScoutMode,
    SimulationConfig,
    SmacConfig,
    StorePrefetchMode,
    SystemConfig,
)
from repro.errors import CacheGeometryError, ConfigError


class TestCacheConfig:
    def test_default_l2_geometry(self):
        config = CacheConfig(2 * 1024 * 1024, 4)
        assert config.num_sets == 8192
        assert config.num_lines == 32768

    def test_paper_l1_geometry(self):
        config = CacheConfig(32 * 1024, 4)
        assert config.num_sets == 128

    @pytest.mark.parametrize("size,assoc,line", [
        (0, 4, 64),
        (1024, 0, 64),
        (1024, 4, 48),     # line not a power of two
        (1000, 4, 64),     # not divisible into sets
    ])
    def test_rejects_bad_geometry(self, size, assoc, line):
        with pytest.raises(CacheGeometryError):
            CacheConfig(size, assoc, line)

    def test_rejects_non_pow2_sets(self):
        with pytest.raises(CacheGeometryError):
            CacheConfig(3 * 64 * 4, 4, 64)  # 3 sets


class TestSmacConfig:
    def test_paper_example_dimensions(self):
        """8K entries, 2048B lines, 32-way sub-blocked covers 16MB at 64KB."""
        config = SmacConfig(entries=8192)
        assert config.sub_blocks_per_line == 32
        assert config.coverage_bytes == 16 * 1024 * 1024
        assert config.storage_bits == 8192 * 64  # 64KB exactly

    def test_rejects_sub_block_larger_than_line(self):
        with pytest.raises(ConfigError):
            SmacConfig(line_bytes=64, sub_block_bytes=128)

    def test_rejects_non_divisible_associativity(self):
        with pytest.raises(ConfigError):
            SmacConfig(entries=100, associativity=8)


class TestCoreConfig:
    def test_paper_defaults(self):
        core = CoreConfig()
        assert core.rob == 64
        assert core.issue_window == 32
        assert core.store_buffer == 16
        assert core.store_queue == 32
        assert core.load_buffer == 64
        assert core.coalesce_bytes == 8
        assert core.store_prefetch is StorePrefetchMode.AT_RETIRE
        assert core.consistency is ConsistencyModel.PC
        assert core.scout is ScoutMode.NONE

    def test_rob_must_cover_issue_window(self):
        with pytest.raises(ConfigError):
            CoreConfig(rob=16, issue_window=32)

    def test_coalesce_zero_means_off(self):
        assert CoreConfig(coalesce_bytes=0).coalesce_bytes == 0

    def test_coalesce_must_be_power_of_two(self):
        with pytest.raises(ConfigError):
            CoreConfig(coalesce_bytes=12)

    def test_with_returns_modified_copy(self):
        core = CoreConfig()
        changed = core.with_(store_queue=64)
        assert changed.store_queue == 64
        assert core.store_queue == 32

    def test_with_coerces_enum_spellings(self):
        # Wire spellings must land as the enum members, never as raw
        # strings (a str-valued scout silently matches no simulator path).
        changed = CoreConfig().with_(
            scout="hws1", consistency="wc", store_prefetch="sp2",
        )
        assert changed.scout is ScoutMode.HWS1
        assert changed.consistency is ConsistencyModel.WC
        assert changed.store_prefetch is StorePrefetchMode.AT_EXECUTE

    def test_with_rejects_bad_enum_spelling(self):
        with pytest.raises(ConfigError, match="none, hws0, hws1, hws2"):
            CoreConfig().with_(scout="turbo")


class TestMemoryConfig:
    def test_latency_ordering_enforced(self):
        with pytest.raises(ConfigError):
            MemoryConfig(l1_latency=20, l2_latency=15)

    def test_l1d_l2_line_sizes_must_match(self):
        with pytest.raises(ConfigError):
            MemoryConfig(l1d=CacheConfig(32 * 1024, 4, line_bytes=32))


class TestSystemConfig:
    def test_total_cores(self):
        assert SystemConfig(nodes=2, cores_per_node=2).total_cores == 4

    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigError):
            SystemConfig(nodes=0)


class TestSimulationConfig:
    def test_scout_depth_scales_with_cpi(self):
        fast = SimulationConfig(cpi_on_chip=1.0)
        slow = SimulationConfig(cpi_on_chip=2.0)
        assert fast.scout_depth == 500
        assert slow.scout_depth == 250

    def test_latency_instructions_floor(self):
        config = dataclasses.replace(SimulationConfig(), cpi_on_chip=10_000.0)
        assert config.latency_instructions == 1

    def test_with_core_sweep_idiom(self):
        config = SimulationConfig().with_core(store_queue=256)
        assert config.core.store_queue == 256

    def test_with_memory(self):
        config = SimulationConfig().with_memory(memory_latency=1000)
        assert config.memory.memory_latency == 1000
        assert config.latency_instructions == 1000

    def test_rejects_nonpositive_cpi(self):
        with pytest.raises(ConfigError):
            SimulationConfig(cpi_on_chip=0.0)


class TestBranchPredictorConfig:
    def test_history_must_fit_index(self):
        with pytest.raises(ConfigError):
            BranchPredictorConfig(gshare_entries=16, history_bits=8)

    def test_defaults_are_paper_sized(self):
        config = BranchPredictorConfig()
        assert config.gshare_entries == 64 * 1024
        assert config.btb_entries == 16 * 1024
        assert config.ras_entries == 16


class TestCoreConfigWith:
    """``CoreConfig.with_``: every enum-knob error names the knob."""

    def test_wire_spellings_convert(self):
        core = CoreConfig().with_(
            scout="hws2", consistency="wc", store_prefetch="sp0",
        )
        assert core.scout is ScoutMode.HWS2
        assert core.consistency is ConsistencyModel.WC
        assert core.store_prefetch is StorePrefetchMode.NONE

    def test_enum_members_pass_through(self):
        core = CoreConfig().with_(scout=ScoutMode.HWS1)
        assert core.scout is ScoutMode.HWS1

    def test_bad_spelling_names_the_knob(self):
        with pytest.raises(ConfigError) as err:
            CoreConfig().with_(scout="warp")
        message = str(err.value)
        assert message.startswith("scout must be one of:")
        assert "hws2" in message and "'warp'" in message

    def test_non_string_value_names_the_knob(self):
        with pytest.raises(ConfigError) as err:
            CoreConfig().with_(consistency=3)
        message = str(err.value)
        assert message.startswith("consistency must be one of:")
        assert "pc, wc" in message and "got 3" in message

    def test_wrong_enum_member_names_the_knob(self):
        with pytest.raises(ConfigError) as err:
            CoreConfig().with_(store_prefetch=ScoutMode.HWS2)
        assert str(err.value).startswith("store_prefetch must be one of:")

    def test_non_enum_knobs_replace_normally(self):
        assert CoreConfig().with_(store_queue=64).store_queue == 64
