"""Markdown report generation."""

from __future__ import annotations

import pytest

from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench
from repro.harness.report import ALL_SECTIONS, generate_report


@pytest.fixture(scope="module")
def bench():
    return Workbench(ExperimentSettings(
        warmup=8_000, measure=16_000, seed=3, calibrate=False,
    ))


class TestReport:
    def test_table_sections_render(self, bench):
        report = generate_report(bench, sections=("table1", "table2"))
        assert "# Experiments" in report
        assert "## Table 1" in report
        assert "## Table 2" in report
        assert "| per 100 insts |" in report

    def test_figure3_section(self, bench):
        report = generate_report(bench, sections=("figure3",))
        assert "store_serialize" in report
        assert "SLE + prefetch past" in report

    def test_settings_recorded_in_header(self, bench):
        report = generate_report(bench, sections=("table2",))
        assert "measure=16000" in report
        assert "seed=3" in report

    def test_unknown_section_rejected(self, bench):
        with pytest.raises(ValueError, match="unknown report sections"):
            generate_report(bench, sections=("figure99",))

    def test_all_sections_list_complete(self):
        assert set(ALL_SECTIONS) == {
            "table1", "table2", "table3", "figure2", "figure3",
            "figure4", "figure5", "figure6", "figure7", "figure8",
        }
