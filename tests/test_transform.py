"""Generic trace rewriting engine."""

from __future__ import annotations

import pytest

from repro.isa import Instruction, InstructionClass as IC
from repro.trace import map_trace, replace_subsequences


def nop(pc):
    return Instruction(IC.NOP, pc=pc)


def alu(pc):
    return Instruction(IC.ALU, pc=pc, dest=5)


class TestMapTrace:
    def test_identity(self):
        trace = [nop(0), alu(4)]
        assert list(map_trace(trace, lambda inst: inst)) == trace

    def test_dropping_with_none(self):
        trace = [nop(0), alu(4), nop(8)]
        kept = list(map_trace(
            trace, lambda inst: inst if inst.kind is IC.ALU else None
        ))
        assert kept == [alu(4)]

    def test_rewrite(self):
        trace = [nop(0)]
        out = list(map_trace(trace, lambda inst: alu(inst.pc)))
        assert out[0].kind is IC.ALU


class TestReplaceSubsequences:
    @staticmethod
    def pair_matcher(window):
        """Match [NOP, ALU] runs."""
        if (len(window) >= 2 and window[0].kind is IC.NOP
                and window[1].kind is IC.ALU):
            return 2
        return 0

    @staticmethod
    def single_builder(matched):
        return [Instruction(IC.MEMBAR, pc=matched[0].pc)]

    def test_basic_replacement(self):
        trace = [nop(0), alu(4), nop(8)]
        out = replace_subsequences(trace, self.pair_matcher, self.single_builder)
        assert [inst.kind for inst in out] == [IC.MEMBAR, IC.NOP]

    def test_matches_do_not_overlap(self):
        # NOP ALU NOP ALU: the second pair starts after the first consumed.
        trace = [nop(0), alu(4), nop(8), alu(12)]
        out = replace_subsequences(trace, self.pair_matcher, self.single_builder)
        assert [inst.kind for inst in out] == [IC.MEMBAR, IC.MEMBAR]

    def test_no_match_passthrough(self):
        trace = [alu(0), alu(4)]
        out = replace_subsequences(trace, self.pair_matcher, self.single_builder)
        assert out == trace

    def test_builder_can_expand(self):
        def expander(matched):
            return [matched[0]] * 3
        trace = [nop(0), alu(4)]
        out = replace_subsequences(trace, self.pair_matcher, expander)
        assert len(out) == 3

    def test_lookahead_limits_matcher_window(self):
        seen_lengths = []

        def probe(window):
            seen_lengths.append(len(window))
            return 0

        replace_subsequences([nop(i * 4) for i in range(10)], probe,
                             self.single_builder, lookahead=3)
        assert max(seen_lengths) == 3

    def test_invalid_consumption_rejected(self):
        def bad(window):
            return len(window) + 5
        with pytest.raises(ValueError, match="invalid consumption"):
            replace_subsequences([nop(0)], bad, self.single_builder)

    def test_invalid_lookahead_rejected(self):
        with pytest.raises(ValueError):
            replace_subsequences([], self.pair_matcher, self.single_builder,
                                 lookahead=0)
