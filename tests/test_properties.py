"""Property-based tests (hypothesis) on core data structures and the
simulator's invariants."""

from __future__ import annotations

import io

from hypothesis import given, settings, strategies as st

from repro.config import (
    CacheConfig,
    ConsistencyModel,
    CoreConfig,
    SimulationConfig,
    StorePrefetchMode,
)
from repro.core import MlpSimulator, RegisterScoreboard, StoreEntry, StoreUnit
from repro.isa import Instruction, InstructionClass as IC
from repro.memory import SetAssociativeCache
from repro.memory.annotate import AccessInfo
from repro.trace import read_trace, write_trace

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

instructions = st.builds(
    Instruction,
    kind=st.sampled_from([
        IC.ALU, IC.NOP, IC.LOAD, IC.STORE, IC.BRANCH, IC.CAS,
        IC.MEMBAR, IC.LOAD_LOCKED, IC.STORE_COND, IC.ISYNC, IC.LWSYNC,
    ]),
    pc=st.integers(min_value=0, max_value=2**40),
    address=st.integers(min_value=0, max_value=2**40),
    size=st.sampled_from([1, 2, 4, 8]),
    dest=st.integers(min_value=-1, max_value=63),
    srcs=st.lists(
        st.integers(min_value=0, max_value=63), max_size=3
    ).map(tuple),
    taken=st.booleans(),
    target=st.integers(min_value=0, max_value=2**40),
    lock_acquire=st.booleans(),
    lock_release=st.booleans(),
)


def annotated_traces(max_size=60):
    infos = st.builds(
        AccessInfo,
        inst_miss=st.booleans(),
        data_miss=st.booleans(),
        smac_hit=st.just(False),
        upgrade=st.just(False),
        mispredicted=st.booleans(),
    )
    return st.lists(st.tuples(instructions, infos), max_size=max_size)


# ---------------------------------------------------------------------------
# trace serialization
# ---------------------------------------------------------------------------

@given(st.lists(instructions, max_size=50))
def test_trace_serialization_round_trips(trace):
    buffer = io.BytesIO()
    write_trace(buffer, trace)
    buffer.seek(0)
    assert list(read_trace(buffer)) == trace


# ---------------------------------------------------------------------------
# cache invariants
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=2**20), max_size=200))
def test_cache_occupancy_never_exceeds_capacity(addresses):
    cache = SetAssociativeCache(CacheConfig(1024, 2, 64))
    for address in addresses:
        if cache.lookup(address) is None:
            cache.fill(address)
    assert cache.occupancy() <= cache.config.num_lines


@given(st.lists(st.integers(min_value=0, max_value=2**20), min_size=1,
                max_size=100))
def test_cache_fill_makes_line_resident(addresses):
    cache = SetAssociativeCache(CacheConfig(4096, 4, 64))
    for address in addresses:
        cache.fill(address)
        assert cache.probe(address) is not None


@given(st.lists(st.integers(min_value=0, max_value=2**16), max_size=150))
def test_cache_accounting_balances(addresses):
    cache = SetAssociativeCache(CacheConfig(512, 2, 64))
    for address in addresses:
        if cache.lookup(address) is None:
            cache.fill(address)
    stats = cache.stats
    assert stats.read_hits + stats.read_misses == len(addresses)


# ---------------------------------------------------------------------------
# scoreboard invariants
# ---------------------------------------------------------------------------

@given(st.lists(st.tuples(
    st.integers(min_value=1, max_value=63),   # register
    st.integers(min_value=0, max_value=50),   # epoch
    st.booleans(),                            # off-chip producer?
), max_size=100))
def test_scoreboard_readiness_is_monotonic(events):
    board = RegisterScoreboard()
    floor = {}
    for reg, epoch, off_chip in events:
        if off_chip:
            board.produce_off_chip(reg, epoch)
        else:
            board.produce_on_chip(reg, epoch)
        ready = board.ready_epoch((reg,))
        assert ready >= floor.get(reg, 0)
        floor[reg] = ready


# ---------------------------------------------------------------------------
# store unit invariants
# ---------------------------------------------------------------------------

@given(
    st.lists(st.tuples(
        st.integers(min_value=0, max_value=15),  # granule selector
        st.booleans(),                           # missing?
        st.booleans(),                           # retirable?
    ), max_size=120),
    st.sampled_from(list(ConsistencyModel)),
    st.sampled_from(list(StorePrefetchMode)),
)
@settings(deadline=None)
def test_store_unit_capacity_invariants(events, model, prefetch):
    unit = StoreUnit(CoreConfig(
        store_buffer=4, store_queue=4,
        consistency=model, store_prefetch=prefetch,
    ))
    epoch = 0
    for granule, missing, retirable in events:
        result = unit.dispatch(
            StoreEntry(granule=granule * 8, missing=missing),
            retirable=retirable,
            epoch=epoch,
        )
        assert len(unit.sb) <= 4
        assert len(unit.sq) <= 4
        if not result.accepted:
            # A rejected dispatch frees nothing: drain one epoch.
            epoch += 1
            unit.pump(epoch)
    # Everything drains within a bounded number of epochs.
    for _ in range(20):
        epoch += 1
        unit.pump(epoch)
        if unit.drained:
            break
    assert unit.drained


# ---------------------------------------------------------------------------
# simulator invariants
# ---------------------------------------------------------------------------

@given(annotated_traces())
@settings(deadline=None, max_examples=60)
def test_simulator_terminates_and_counts_sanely(trace):
    config = SimulationConfig(core=CoreConfig(
        store_buffer=2, store_queue=2, rob=8, issue_window=8,
        load_buffer=8, coalesce_bytes=0,
    ))
    result = MlpSimulator(config).run(trace)
    assert result.instructions == len(trace)
    assert result.epoch_count >= 0
    for epoch in result.epochs:
        assert epoch.total_misses >= 1  # recorded epochs contain misses
    # Epoch count can never exceed total off-chip events plus a small
    # serialization factor (each epoch needs at least one miss).
    total_misses = sum(e.total_misses for e in result.epochs)
    assert result.epoch_count <= max(1, total_misses)


@given(annotated_traces(max_size=40))
@settings(deadline=None, max_examples=40)
def test_wc_never_needs_more_epochs_for_stores(trace):
    """Weak consistency is never worse than PC on the same trace: a central
    qualitative claim of the paper.

    The comparison only holds for TSO-idiom traces, so WC-only serializers
    (isync, which is a no-op under PC) are filtered out.
    """
    trace = [
        (inst, info) for inst, info in trace
        if inst.kind is not IC.ISYNC
    ]
    pc = MlpSimulator(SimulationConfig(core=CoreConfig(
        store_buffer=2, store_queue=2, rob=8, issue_window=8,
        load_buffer=8, coalesce_bytes=0,
    ))).run(trace)
    wc = MlpSimulator(SimulationConfig(core=CoreConfig(
        store_buffer=2, store_queue=2, rob=8, issue_window=8,
        load_buffer=8, coalesce_bytes=0, consistency=ConsistencyModel.WC,
    ))).run(trace)
    assert wc.epoch_count <= pc.epoch_count + 1


# ---------------------------------------------------------------------------
# optimization monotonicity
# ---------------------------------------------------------------------------
#
# Each store optimization can only add overlap, so on any trace it may not
# cost more than a boundary epoch.  These are the strongest global
# invariants of the model: a bug in prefetch/scout bookkeeping almost
# always breaks one of them.

def _core(**kwargs):
    base = dict(
        store_buffer=2, store_queue=2, rob=8, issue_window=8,
        load_buffer=8, coalesce_bytes=0,
    )
    base.update(kwargs)
    return CoreConfig(**base)


def _epochs(trace, **core_kwargs):
    result = MlpSimulator(SimulationConfig(core=_core(**core_kwargs))).run(trace)
    return result.epoch_count


@given(annotated_traces(max_size=50))
@settings(deadline=None, max_examples=50)
def test_perfect_stores_never_worse(trace):
    assert _epochs(trace, perfect_stores=True) <= _epochs(trace)


@given(annotated_traces(max_size=50))
@settings(deadline=None, max_examples=50)
def test_store_prefetching_never_worse(trace):
    baseline = _epochs(trace, store_prefetch=StorePrefetchMode.NONE)
    retire = _epochs(trace, store_prefetch=StorePrefetchMode.AT_RETIRE)
    execute = _epochs(trace, store_prefetch=StorePrefetchMode.AT_EXECUTE)
    assert retire <= baseline + 1
    assert execute <= retire + 1


@given(annotated_traces(max_size=50))
@settings(deadline=None, max_examples=40)
def test_scout_never_worse(trace):
    from repro.config import ScoutMode
    baseline = _epochs(trace)
    for mode in (ScoutMode.HWS0, ScoutMode.HWS1, ScoutMode.HWS2):
        assert _epochs(trace, scout=mode) <= baseline + 1


@given(annotated_traces(max_size=50))
@settings(deadline=None, max_examples=40)
def test_larger_queues_never_worse(trace):
    small = _epochs(trace, store_queue=2, store_buffer=2)
    large = _epochs(trace, store_queue=16, store_buffer=8)
    assert large <= small + 1
