"""The Workbench and experiment plumbing (small trace sizes)."""

from __future__ import annotations

import pytest

from repro.config import StorePrefetchMode
from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench
from repro.harness.experiment import SharingSettings
from repro.harness.figures import smac_memory_config, smac_scaled_profile
from repro.harness.formatting import format_series, format_table
from repro.isa import InstructionClass as IC


@pytest.fixture(scope="module")
def bench():
    return Workbench(ExperimentSettings(
        warmup=15_000, measure=30_000, seed=3, calibrate=False,
    ))


class TestWorkbench:
    def test_profile_cached(self, bench):
        assert bench.profile("database") is bench.profile("database")

    def test_trace_cached_per_variant(self, bench):
        assert bench.trace("tpcw") is bench.trace("tpcw")
        assert bench.trace("tpcw", "wc") is not bench.trace("tpcw")

    def test_wc_variant_has_wc_idioms(self, bench):
        kinds = {inst.kind for inst in bench.trace("tpcw", "wc")}
        assert IC.LOAD_LOCKED in kinds
        assert IC.ISYNC in kinds
        assert IC.CAS not in kinds

    def test_sle_variant_drops_lock_serializers(self, bench):
        trace = bench.trace("tpcw", "pc_sle")
        assert not any(inst.lock_acquire for inst in trace)

    def test_unknown_variant_rejected(self, bench):
        with pytest.raises(ValueError):
            bench.trace("tpcw", "rc")

    def test_annotation_cached(self, bench):
        a = bench.annotated("tpcw")
        b = bench.annotated("tpcw")
        assert a is b
        assert len(a) == 30_000

    def test_memory_for_requires_prior_annotation(self, bench):
        with pytest.raises(KeyError):
            bench.memory_for("tpcw", tag="never-run")

    def test_run_returns_result(self, bench):
        result = bench.run("tpcw")
        assert result.instructions == 30_000
        assert result.epoch_count > 0

    def test_run_wc_variant_forces_wc_model(self, bench):
        result = bench.run("tpcw", variant="wc")
        assert result.epoch_count > 0

    def test_core_knob_overrides(self, bench):
        base = bench.run("tpcw", store_prefetch=StorePrefetchMode.NONE)
        pf = bench.run("tpcw", store_prefetch=StorePrefetchMode.AT_EXECUTE)
        assert pf.epi <= base.epi

    def test_simulation_config_uses_workload_cpi(self, bench):
        config = bench.simulation_config("specjbb")
        assert config.cpi_on_chip == pytest.approx(0.95)

    def test_set_profile_invalidates_caches(self, bench):
        local = Workbench(ExperimentSettings(
            warmup=5_000, measure=10_000, calibrate=False,
        ))
        first = local.trace("specweb")
        local.set_profile("specweb", smac_scaled_profile("specweb"))
        second = local.trace("specweb")
        assert first is not second

    def test_sharing_settings_key_caches_separately(self, bench):
        plain = bench.annotated("specweb")
        shared = bench.annotated(
            "specweb", sharing=SharingSettings(nodes=2)
        )
        assert plain is not shared


class TestSmacHelpers:
    def test_scaled_profile_shrinks_footprints(self):
        scaled = smac_scaled_profile("database")
        assert scaled.store_regions == 256
        assert scaled.store_region_lines_used == 1
        assert scaled.hot_data_bytes < 128 * 1024

    def test_memory_config_smac_sizes(self):
        config = smac_memory_config(256)
        assert config.smac is not None
        assert config.smac.entries == 256
        assert smac_memory_config(None).smac is None


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"],
            [["epi", 1.23456], ["mlp", 2]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "1.235" in text
        assert all(len(line) == len(lines[1]) for line in lines[2:])

    def test_format_series(self):
        text = format_series("EPI", {"a": 1.0, "b": 2.5}, precision=1)
        assert text == "EPI: a=1.0 b=2.5"


class TestRemovedEntryPoints:
    # The pre-v2 aliases were deleted per the DESIGN.md removal timeline.
    # Pin the removal so they cannot quietly come back: the canonical
    # imports are repro.harness.experiment.Workbench and repro.api.
    def test_repro_workbench_alias_removed(self):
        import repro

        with pytest.raises(AttributeError):
            repro.Workbench

    def test_repro_harness_workbench_alias_removed(self):
        import repro.harness

        with pytest.raises(AttributeError):
            repro.harness.Workbench

    def test_module_level_sweep_removed(self):
        from repro.harness import sweeps

        with pytest.raises(AttributeError):
            sweeps.sweep
        with pytest.raises(AttributeError):
            sweeps.sweep_workloads

    def test_service_metrics_shim_removed(self):
        with pytest.raises(ImportError):
            import repro.service.metrics  # noqa: F401
