"""Fault-tolerant sharded execution (kill/corrupt injection and recovery).

Each test injects a fault through ``JobSpec.fault`` and asserts the full
acceptance contract: the run recovers on a retry round, resumes from the
last persisted checkpoint rather than recomputing from scratch, and the
merged result is still bit-identical to the straight-through golden.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.engine.cache import ArtifactCache
from repro.engine.runner import EngineRunner, JobSpec
from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench
from repro.shard import CheckpointStore, FaultInjector

SMALL = ExperimentSettings(warmup=1500, measure=4000, seed=11,
                           calibrate=False)


@pytest.fixture(scope="module")
def golden():
    return Workbench(SMALL).run("database")


def _runner(tmp_path, **kwargs):
    kwargs.setdefault("settings", SMALL)
    kwargs.setdefault("cache_dir", tmp_path / "cache")
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("retries", 1)
    return EngineRunner(**kwargs)


class TestFaultParsing:
    def test_kill_and_corrupt_parse(self):
        kill = FaultInjector("kill@2000", None, "t")
        assert (kill.kind, kill.at) == ("kill", 2000)
        corrupt = FaultInjector("corrupt@10", None, "t")
        assert (corrupt.kind, corrupt.at) == ("corrupt", 10)
        assert not FaultInjector("", None, "t").armed

    @pytest.mark.parametrize("bad", ["explode@5", "kill@", "kill@x", "@5"])
    def test_malformed_fault_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultInjector(bad, None, "t")


class TestKillRecovery:
    def test_serial_kill_resumes_from_checkpoint(self, tmp_path, golden):
        runner = _runner(tmp_path)
        spec = JobSpec(workload="database", fault="kill@1200")
        report = runner.run_sharded(spec, 2, checkpoint_every=500)
        report.raise_on_failure()
        assert report.merged == golden
        # the serial executor retries the dead shard in-place (the
        # fire-once marker lets the retry through), resuming mid-shard
        assert any(job.attempts > 1 for job in report.jobs)
        assert any(job.resumed_pos >= 0 for job in report.jobs)
        assert report.checkpoints_written > 0

    def test_pool_worker_kill_recovers(self, tmp_path, golden):
        runner = _runner(tmp_path, workers=2)
        spec = JobSpec(workload="database", fault="kill@1200")
        report = runner.run_sharded(spec, 2, checkpoint_every=500)
        report.raise_on_failure()
        assert report.merged == golden
        assert report.rounds >= 2  # the kill broke the whole pool round
        assert any(job.resumed_pos >= 0 for job in report.jobs)

    def test_fault_exhausting_retries_fails_cleanly(self, tmp_path):
        # without checkpoints the retry restarts from scratch and the
        # fire-once marker lets it through -- so force repeated firing by
        # granting zero retries instead
        runner = _runner(tmp_path, retries=0)
        spec = JobSpec(workload="database", fault="kill@2000")
        report = runner.run_sharded(spec, 2, checkpoint_every=1000)
        assert not report.ok
        assert report.merged is None
        with pytest.raises(RuntimeError):
            report.raise_on_failure()

    def test_serial_kill_raises_not_exits(self, tmp_path):
        # in the serial path the injector must raise FaultInjectedError,
        # never os._exit the host process; reaching this assert proves it
        runner = _runner(tmp_path, retries=0)
        spec = JobSpec(workload="database", fault="kill@2000")
        report = runner.run_sharded(spec, 1, checkpoint_every=1000)
        failed = [job for job in report.jobs if not job.ok]
        assert failed
        assert "FaultInjectedError" in failed[0].error


class TestCorruptRecovery:
    def test_corrupt_checkpoint_discarded_and_rerun(self, tmp_path, golden):
        runner = _runner(tmp_path)
        spec = JobSpec(workload="database", fault="corrupt@1200")
        report = runner.run_sharded(spec, 2, checkpoint_every=500)
        report.raise_on_failure()
        assert report.merged == golden
        # the retry found a tampered checkpoint, discarded it, restarted
        assert any(job.attempts > 1 for job in report.jobs)

    def test_corrupt_run_leaves_verifiable_store(self, tmp_path, golden):
        runner = _runner(tmp_path)
        spec = JobSpec(workload="database", fault="corrupt@1200")
        report = runner.run_sharded(spec, 2, checkpoint_every=500)
        report.raise_on_failure()
        # whatever checkpoints remain in the cache verify cleanly now
        store = CheckpointStore(ArtifactCache(tmp_path / "cache"))
        for job in report.jobs:
            if job.checkpoint_token:
                record = store.load_record(job.checkpoint_token)
                if record is not None:
                    record.verify()


class TestCompletedShardsNotRecomputed:
    def test_only_faulted_shards_rerun(self, tmp_path, golden):
        runner = _runner(tmp_path)
        spec = JobSpec(workload="database", fault="kill@1200")
        report = runner.run_sharded(spec, 2, checkpoint_every=500)
        report.raise_on_failure()
        assert report.merged == golden
        # a shard that resumed restarted at its checkpoint, not at its
        # shard start: resumed_pos lies strictly inside the shard span
        resumed = [job for job in report.jobs if job.resumed_pos >= 0]
        assert resumed
        plan_bounds = dict(report.plan.shards)
        for job in resumed:
            assert job.spec.shard_start < job.resumed_pos
            stop = plan_bounds[job.spec.shard_start]
            assert job.resumed_pos < stop


class TestResumeApi:
    def test_resume_by_token_completes_interrupted_work(
        self, tmp_path, golden,
    ):
        cache_dir = tmp_path / "cache"
        runner = _runner(tmp_path)
        report = runner.run_sharded(
            JobSpec(workload="database"), 1, checkpoint_every=1000,
        )
        report.raise_on_failure()
        assert report.merged == golden
        token = report.jobs[0].checkpoint_token
        assert token
        job = api.resume(token, cache_dir=cache_dir)
        assert job.ok
        assert job.resumed_pos >= 0
        assert job.result == golden

    def test_resume_unknown_token_is_a_key_error(self, tmp_path):
        with pytest.raises(KeyError):
            api.resume("deadbeef" * 8, cache_dir=tmp_path / "cache")

    def test_resume_by_spec_requires_checkpointing(self):
        with pytest.raises(ValueError):
            api.resume(JobSpec(workload="database"))
