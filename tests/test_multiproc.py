"""Sharing model and multi-chip coupling."""

from __future__ import annotations

import pytest

from repro.config import MemoryConfig, SystemConfig
from repro.multiproc import MultiChipSystem, SharingModel


class TestSharingModel:
    def test_deterministic_given_seed(self):
        a = SharingModel(0x1000, 64 * 1024, write_rate_per_1000=50, seed=3)
        b = SharingModel(0x1000, 64 * 1024, write_rate_per_1000=50, seed=3)
        ea = [event for _, event in a.stream(2000)]
        eb = [event for _, event in b.stream(2000)]
        assert ea == eb

    def test_rate_scales_with_remote_nodes(self):
        one = SharingModel(0, 64 * 1024, write_rate_per_1000=10,
                           remote_nodes=1, seed=1)
        three = SharingModel(0, 64 * 1024, write_rate_per_1000=10,
                             remote_nodes=3, seed=1)
        list(one.stream(20_000))
        list(three.stream(20_000))
        assert three.total_writes > 2 * one.total_writes

    def test_rate_approximates_target(self):
        model = SharingModel(0, 64 * 1024, write_rate_per_1000=20,
                             remote_nodes=1, seed=5)
        list(model.stream(50_000))
        achieved = 1000 * model.total_writes / 50_000
        assert achieved == pytest.approx(20, rel=0.2)

    def test_addresses_stay_in_region(self):
        base, size = 0x40000, 16 * 1024
        model = SharingModel(base, size, write_rate_per_1000=100, seed=2)
        for _, event in model.stream(5000):
            assert base <= event.address < base + size
            assert event.address % 64 == 0

    def test_zero_remote_nodes_is_silent(self):
        model = SharingModel(0, 1024, write_rate_per_1000=1000, remote_nodes=0)
        assert list(model.stream(1000)) == []

    def test_reads_and_writes_mixed(self):
        model = SharingModel(0, 64 * 1024, write_rate_per_1000=30,
                             read_rate_per_1000=30, seed=7)
        events = [event for _, event in model.stream(20_000)]
        assert any(e.is_write for e in events)
        assert any(not e.is_write for e in events)

    def test_validation(self):
        with pytest.raises(ValueError):
            SharingModel(0, 0, write_rate_per_1000=1)
        with pytest.raises(ValueError):
            SharingModel(0, 64, write_rate_per_1000=-1)


class TestMultiChipSystem:
    def test_tick_applies_remote_writes(self):
        sharing = SharingModel(0x100000, 4096, write_rate_per_1000=1000,
                               remote_nodes=1, seed=1)
        system = MultiChipSystem(
            MemoryConfig(), SystemConfig(nodes=2), sharing=sharing
        )
        system.memory.store(0x100000)  # own the line
        for _ in range(2000):
            system.tick()
        # With ~2 writes/instruction expected over 4KB, the line was hit.
        assert system.memory.l2.stats.snoop_invalidates > 0

    def test_single_chip_has_implicit_ownership(self):
        system = MultiChipSystem(MemoryConfig(), SystemConfig(nodes=1))
        outcome = system.memory.store(0x500000)
        assert outcome.smac_hit  # single chip: no invalidation penalty

    def test_node_count_mismatch_rejected(self):
        sharing = SharingModel(0, 4096, write_rate_per_1000=1,
                               remote_nodes=3, seed=1)
        with pytest.raises(ValueError):
            MultiChipSystem(MemoryConfig(), SystemConfig(nodes=2), sharing)

    def test_tick_without_sharing_is_noop(self):
        system = MultiChipSystem(MemoryConfig(), SystemConfig(nodes=2))
        system.tick()  # must not raise
