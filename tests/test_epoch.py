"""Epoch records and the termination taxonomy."""

from __future__ import annotations

from repro.core.epoch import EpochRecord, TerminationCondition, TriggerKind


class TestTerminationTaxonomy:
    def test_store_caused_conditions(self):
        store_caused = {
            TerminationCondition.STORE_BUFFER_FULL,
            TerminationCondition.STORE_QUEUE_STORE_BUFFER_FULL,
            TerminationCondition.STORE_QUEUE_WINDOW_FULL,
            TerminationCondition.STORE_SERIALIZE,
        }
        for condition in TerminationCondition:
            assert condition.store_caused == (condition in store_caused)

    def test_nine_conditions_total(self):
        # Eight from the Figure 3 legend plus end-of-trace.
        assert len(TerminationCondition) == 9


class TestEpochRecord:
    def test_mlp_accessors(self):
        record = EpochRecord(
            index=0,
            trigger=TriggerKind.STORE,
            termination=TerminationCondition.STORE_SERIALIZE,
            store_misses=3,
            load_misses=2,
            inst_misses=1,
            instructions=120,
        )
        assert record.total_misses == 6
        assert record.store_mlp == 3
        assert record.load_inst_mlp == 3

    def test_trigger_kinds(self):
        assert {t.value for t in TriggerKind} == {
            "load", "store", "instruction",
        }
