"""Shared fixtures and trace-building helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.config import (
    CoreConfig,
    MemoryConfig,
    SimulationConfig,
    StorePrefetchMode,
)
from repro.isa import Instruction, InstructionClass
from repro.memory.annotate import AccessInfo


def make_inst(
    kind: InstructionClass,
    pc: int = 0x1000,
    address: int = 0,
    dest: int = -1,
    srcs: tuple[int, ...] = (),
    taken: bool = False,
    target: int = 0,
    lock_acquire: bool = False,
    lock_release: bool = False,
) -> Instruction:
    """Construct an instruction with test-friendly defaults."""
    return Instruction(
        kind=kind,
        pc=pc,
        address=address,
        size=8,
        dest=dest,
        srcs=srcs,
        taken=taken,
        target=target,
        lock_acquire=lock_acquire,
        lock_release=lock_release,
    )


def annotated(
    kind: InstructionClass,
    miss: bool = False,
    imiss: bool = False,
    smac: bool = False,
    mispred: bool = False,
    **inst_kwargs,
) -> tuple[Instruction, AccessInfo]:
    """One (instruction, classification) pair for direct MLPsim input."""
    return (
        make_inst(kind, **inst_kwargs),
        AccessInfo(
            inst_miss=imiss,
            data_miss=miss or smac,
            smac_hit=smac,
            mispredicted=mispred,
        ),
    )


@pytest.fixture
def default_config() -> SimulationConfig:
    return SimulationConfig()


@pytest.fixture
def small_core() -> CoreConfig:
    """The tiny SB=2/SQ=2 core used by the paper's worked examples."""
    return CoreConfig(
        store_buffer=2,
        store_queue=2,
        store_prefetch=StorePrefetchMode.NONE,
        coalesce_bytes=0,
    )


@pytest.fixture
def small_sim(small_core) -> SimulationConfig:
    return SimulationConfig(core=small_core)


@pytest.fixture
def memory_config() -> MemoryConfig:
    return MemoryConfig()
