"""The memory system: write policies, miss classification, SMAC wiring."""

from __future__ import annotations

import pytest

from repro.config import MemoryConfig, SmacConfig
from repro.memory import HitLevel, MemorySystem


@pytest.fixture
def memory():
    return MemorySystem(MemoryConfig())


@pytest.fixture
def smac_memory():
    return MemorySystem(MemoryConfig(smac=SmacConfig(entries=64, associativity=2)))


class TestFetch:
    def test_cold_fetch_goes_to_memory(self, memory):
        assert memory.fetch(0x1000).level is HitLevel.MEMORY

    def test_refetch_hits_l1(self, memory):
        memory.fetch(0x1000)
        memory.fetch(0x9999000)  # move to another line
        assert memory.fetch(0x1004).level is HitLevel.L1

    def test_sequential_same_line_fetches_use_fetch_buffer(self, memory):
        memory.fetch(0x1000)
        outcome = memory.fetch(0x1004)
        assert outcome.latency == 0  # no cache access at all
        assert memory.stats.fetches == 1

    def test_instruction_counter(self, memory):
        for i in range(10):
            memory.fetch(0x1000 + 4 * i)
        assert memory.stats.instructions == 10


class TestLoad:
    def test_cold_load_misses_to_memory(self, memory):
        outcome = memory.load(0x40000)
        assert outcome.level is HitLevel.MEMORY
        assert outcome.off_chip
        assert memory.stats.load_l2_misses == 1

    def test_second_load_hits_l1(self, memory):
        memory.load(0x40000)
        assert memory.load(0x40008).level is HitLevel.L1

    def test_l1_victim_still_hits_l2(self, memory):
        memory.load(0x40000)
        # Evict from 32KB 4-way L1 with 4 conflicting lines (same L1 set,
        # different L2 sets would need bigger strides; use L1-set stride).
        l1_span = 32 * 1024 // 4  # way span: 8KB
        for i in range(1, 5):
            memory.load(0x40000 + i * l1_span)
        outcome = memory.load(0x40000)
        assert outcome.level in (HitLevel.L1, HitLevel.L2)


class TestStore:
    def test_store_miss_is_off_chip(self, memory):
        outcome = memory.store(0x80000)
        assert outcome.off_chip
        assert memory.stats.store_l2_misses == 1

    def test_store_after_fill_hits_l2(self, memory):
        memory.store(0x80000)
        outcome = memory.store(0x80008)
        assert outcome.level is HitLevel.L2

    def test_l1_is_no_write_allocate(self, memory):
        memory.store(0x80000)
        # The store allocated in L2 but not in the L1D.
        assert memory.l1d.probe(0x80000) is None

    def test_load_after_store_hits(self, memory):
        memory.store(0x80000)
        outcome = memory.load(0x80000)
        assert outcome.level in (HitLevel.L1, HitLevel.L2)

    def test_store_upgrade_from_shared_goes_off_chip(self, memory):
        memory.load(0x80000)               # E
        memory.snoop_load(0x80000)         # downgrade to S
        outcome = memory.store(0x80000)
        assert outcome.off_chip
        assert outcome.upgrade
        assert memory.stats.store_upgrades == 1


class TestSnoops:
    def test_snoop_store_invalidates_everywhere(self, memory):
        memory.load(0x80000)
        memory.snoop_store(0x80000)
        assert memory.l2.probe(0x80000) is None
        assert memory.load(0x80000).off_chip

    def test_snoop_load_downgrades(self, memory):
        memory.load(0x80000)
        memory.snoop_load(0x80000)
        line = memory.l2.probe(0x80000)
        assert line is not None
        from repro.memory import MesiState
        assert line.state is MesiState.SHARED


class TestSmacIntegration:
    def _evict_line(self, memory, address):
        """Force *address* out of the L2 by filling its set."""
        config = memory.config.l2
        stride = config.num_sets * config.line_bytes
        for i in range(1, config.associativity + 2):
            memory.load(address + i * stride)

    def test_modified_eviction_feeds_smac(self, smac_memory):
        smac_memory.store(0x100000)         # M line in L2
        self._evict_line(smac_memory, 0x100000)
        assert smac_memory.smac.owned_sub_blocks() >= 1

    def test_restore_hits_smac(self, smac_memory):
        smac_memory.store(0x100000)
        self._evict_line(smac_memory, 0x100000)
        outcome = smac_memory.store(0x100000)
        assert outcome.off_chip          # data still comes from memory
        assert outcome.smac_hit          # but ownership is already held
        assert smac_memory.stats.smac_hits == 1

    def test_clean_eviction_does_not_feed_smac(self, smac_memory):
        smac_memory.load(0x100000)          # E line, never written
        self._evict_line(smac_memory, 0x100000)
        outcome = smac_memory.store(0x100000)
        assert not outcome.smac_hit

    def test_single_chip_accelerates_every_store_miss(self):
        memory = MemorySystem(MemoryConfig(), single_chip=True)
        outcome = memory.store(0x100000)
        assert outcome.off_chip and outcome.smac_hit

    def test_remote_write_invalidates_smac_ownership(self, smac_memory):
        smac_memory.store(0x100000)
        self._evict_line(smac_memory, 0x100000)
        smac_memory.snoop_store(0x100000)
        outcome = smac_memory.store(0x100000)
        assert not outcome.smac_hit
        assert smac_memory.stats.smac_invalidated_hits == 1
        assert smac_memory.stats.smac_coherence_invalidates == 1


class TestStatsReset:
    def test_reset_clears_all_counters(self, memory):
        memory.fetch(0x1000)
        memory.load(0x2000)
        memory.store(0x3000)
        memory.reset_stats()
        assert memory.stats.instructions == 0
        assert memory.stats.load_l2_misses == 0
        assert memory.l2.stats.accesses == 0
