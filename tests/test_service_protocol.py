"""Request validation and wire serialization (repro.service.protocol)."""

from __future__ import annotations

import json

import pytest

from repro.config import ScoutMode, StorePrefetchMode
from repro.core.epoch import EpochRecord, TerminationCondition, TriggerKind
from repro.core.results import SimulationResult
from repro.engine import from_jsonable, to_jsonable
from repro.engine.runner import JobResult, JobSpec, RunReport
from repro.harness.sweeps import SweepSpec
from repro.service.protocol import (
    PROTOCOL_VERSION,
    JobRequest,
    ProtocolError,
    jsonify,
    parse_job_request,
)


def wire(payload):
    """Force a real JSON round trip, as HTTP would."""
    return json.loads(json.dumps(payload))


class TestParseJobRequest:
    def test_sweep_request_coerces_enum_axes(self):
        request = parse_job_request({
            "kind": "sweep",
            "sweep": {
                "workloads": ["database", "tpcw"],
                "axes": {
                    "store_prefetch": ["sp0", "sp2"],
                    "store_queue": [16, 32],
                },
            },
        })
        assert request.kind == "sweep"
        axes = request.sweep.axes_dict
        assert axes["store_prefetch"] == [
            StorePrefetchMode.NONE, StorePrefetchMode.AT_EXECUTE,
        ]
        assert axes["store_queue"] == [16, 32]
        assert len(request.sweep.to_jobs()) == 2 * 4

    def test_sweep_accepts_singular_workload(self):
        request = parse_job_request({
            "kind": "sweep",
            "sweep": {"workload": "database",
                      "axes": {"store_queue": [16]}},
        })
        assert request.sweep.workloads == ("database",)

    def test_simulate_request(self):
        request = parse_job_request({
            "kind": "simulate",
            "job": {
                "workload": "specjbb",
                "variant": "wc",
                "core_changes": {"scout": "hws2", "store_buffer": 8},
            },
        })
        assert request.job == JobSpec(
            workload="specjbb", variant="wc",
            core_changes=(("scout", ScoutMode.HWS2), ("store_buffer", 8)),
        )

    def test_figure_request_defaults_all_workloads(self):
        request = parse_job_request({"kind": "figure", "figure": "figure2"})
        assert request.figure == "figure2"
        assert len(request.workloads) == 4

    def test_tune_request_coerces_space(self):
        request = parse_job_request(wire({
            "kind": "tune",
            "tune": {"workload": "database", "strategy": "random",
                     "budget": 8, "seed": 7,
                     "space": {"scout": ["none", "hws2"],
                               "store_buffer": [4, 16]}},
        }))
        assert request.kind == "tune"
        spec = request.tune
        assert spec.strategy == "random"
        assert spec.budget == 8 and spec.seed == 7
        assert spec.space.values("scout") == (
            ScoutMode.NONE, ScoutMode.HWS2,
        )
        assert spec.space.values("store_buffer") == (4, 16)
        assert "tune:database" in spec.describe()

    def test_tune_priority_excluded_from_signature(self):
        body = {
            "kind": "tune",
            "tune": {"workload": "database",
                     "space": {"store_buffer": [4, 16]}},
        }
        low = parse_job_request({**body, "priority": 0})
        high = parse_job_request({**body, "priority": 9})
        assert low.signature() == high.signature()

    @pytest.mark.parametrize("payload,fragment", [
        ({"kind": "tune"}, "'tune'"),
        ({"kind": "tune", "tune": {"workload": "nosuch",
                                   "space": {"store_buffer": [4]}}},
         "'tune.workload'"),
        ({"kind": "tune", "tune": {"workload": "database",
                                   "strategy": "anneal",
                                   "space": {"store_buffer": [4]}}},
         "'tune.strategy'"),
        ({"kind": "tune", "tune": {"workload": "database", "budget": 0,
                                   "space": {"store_buffer": [4]}}},
         "'tune.budget'"),
        ({"kind": "tune", "tune": {"workload": "database", "budget": 9999,
                                   "space": {"store_buffer": [4]}}},
         "'tune.budget'"),
        ({"kind": "tune", "tune": {"workload": "database"}},
         "'tune.space'"),
        ({"kind": "tune", "tune": {"workload": "database",
                                   "space": {"warp_drive": [1]}}},
         "valid axes"),
        ({"kind": "tune", "tune": {"workload": "database",
                                   "space": {"scout": ["sp9"]}}},
         "sp9"),
    ])
    def test_bad_tune_payloads_raise_protocol_error(
            self, payload, fragment):
        with pytest.raises(ProtocolError) as excinfo:
            parse_job_request(payload)
        assert fragment.lower() in str(excinfo.value).lower()

    @pytest.mark.parametrize("payload,fragment", [
        ("not a dict", "JSON object"),
        ({}, "'kind'"),
        ({"kind": "dance"}, "'kind'"),
        ({"kind": "sweep"}, "'sweep'"),
        ({"kind": "sweep", "sweep": {"workloads": [], "axes": {"a": [1]}}},
         "workloads"),
        ({"kind": "sweep",
          "sweep": {"workloads": ["nosuch"], "axes": {"a": [1]}}},
         "unknown workloads"),
        ({"kind": "sweep",
          "sweep": {"workloads": ["database"], "axes": {}}}, "axes"),
        ({"kind": "sweep",
          "sweep": {"workloads": ["database"],
                    "axes": {"store_prefetch": ["sp9"]}}}, "sp9"),
        ({"kind": "simulate"}, "'job'"),
        ({"kind": "simulate", "job": {"workload": "nosuch"}},
         "'job.workload'"),
        ({"kind": "figure", "figure": "figure99"}, "'figure'"),
        ({"kind": "sweep", "priority": "high",
          "sweep": {"workloads": ["database"],
                    "axes": {"store_queue": [16]}}}, "priority"),
    ])
    def test_bad_payloads_raise_protocol_error(self, payload, fragment):
        with pytest.raises(ProtocolError) as excinfo:
            parse_job_request(payload)
        assert fragment.lower() in str(excinfo.value).lower()

    def test_current_protocol_version_accepted(self):
        request = parse_job_request(wire({
            "v": PROTOCOL_VERSION,
            "kind": "simulate",
            "job": {"workload": "database"},
        }))
        assert request.kind == "simulate"

    def test_missing_version_accepted_as_v1(self):
        # Pre-versioning clients send no "v"; they speak v1 by definition.
        request = parse_job_request(wire({
            "kind": "simulate", "job": {"workload": "database"},
        }))
        assert request.kind == "simulate"

    @pytest.mark.parametrize("version", [2, 0, "1", None])
    def test_unsupported_version_is_structured_400(self, version):
        with pytest.raises(ProtocolError) as excinfo:
            parse_job_request(wire({
                "v": version,
                "kind": "simulate",
                "job": {"workload": "database"},
            }))
        assert excinfo.value.status == 400
        message = str(excinfo.value)
        assert "protocol version" in message
        assert f"v{PROTOCOL_VERSION}" in message

    def test_priority_excluded_from_signature(self):
        body = {
            "kind": "sweep",
            "sweep": {"workloads": ["database"],
                      "axes": {"store_queue": [16, 32]}},
        }
        low = parse_job_request({**body, "priority": 0})
        high = parse_job_request({**body, "priority": 9})
        assert low.signature() == high.signature()

    def test_different_work_different_signature(self):
        def build(queues):
            return parse_job_request({
                "kind": "sweep",
                "sweep": {"workloads": ["database"],
                          "axes": {"store_queue": queues}},
            })
        assert build([16, 32]).signature() != build([16, 64]).signature()


class TestWireRoundTrips:
    def test_job_request_round_trip(self):
        request = parse_job_request({
            "kind": "sweep",
            "priority": 2,
            "sweep": {"workloads": ["database"],
                      "axes": {"store_prefetch": ["sp0", "sp1"]}},
        })
        assert JobRequest.from_dict(wire(request.to_dict())) == request

    def test_tune_request_round_trip(self):
        request = parse_job_request({
            "kind": "tune",
            "priority": 1,
            "backend": "batch",
            "tune": {"workload": "tpcw", "variant": "wc",
                     "strategy": "genetic", "budget": 12, "seed": 11,
                     "space": {"scout": ["hws0", "hws1"],
                               "store_queue": [16, 64]}},
        })
        back = JobRequest.from_dict(wire(request.to_dict()))
        assert back == request
        assert back.tune.space.grid() == request.tune.space.grid()

    def test_sweep_spec_round_trip(self):
        spec = SweepSpec.build(
            ["database", "specweb"], variant="wc",
            store_queue=[16, 32], scout=["none", "hws1"],
        )
        back = SweepSpec.from_dict(wire(spec.to_dict()))
        assert back == spec
        assert back.to_jobs() == spec.to_jobs()

    def test_simulation_result_round_trip_is_exact(self):
        result = SimulationResult(
            instructions=1000,
            epochs=[
                EpochRecord(
                    index=0, trigger=TriggerKind.STORE,
                    termination=TerminationCondition.STORE_SERIALIZE,
                    store_misses=3, load_misses=1, instructions=140,
                ),
                EpochRecord(
                    index=1, trigger=TriggerKind.LOAD,
                    termination=TerminationCondition.WINDOW_FULL,
                    load_misses=2, instructions=77,
                ),
            ],
            fully_overlapped_stores=4,
            stores_committed=55,
            store_prefetch_requests=13,
        )
        back = from_jsonable(wire(to_jsonable(result)))
        assert back == result
        assert back.epi_per_1000 == result.epi_per_1000
        assert back.store_bandwidth_overhead == \
            result.store_bandwidth_overhead

    def test_run_report_round_trip(self):
        spec = JobSpec(
            workload="database",
            core_changes=(("store_prefetch", StorePrefetchMode.AT_RETIRE),),
        )
        report = RunReport(
            jobs=[JobResult(
                spec=spec, status="ok", wall_time=0.25,
                result=SimulationResult(instructions=10),
                cache_hits=2, cache_misses=1,
            )],
            wall_time=0.5,
            workers=2,
        )
        back = RunReport.from_dict(wire(report.to_dict()))
        assert back == report
        assert back.summary() == report.summary()

    def test_failed_job_round_trip_keeps_error(self):
        spec = JobSpec(workload="tpcw")
        job = JobResult(
            spec=spec, status="failed", error="ValueError: boom", attempts=2,
        )
        back = JobResult.from_dict(wire(job.to_dict()))
        assert back == job and not back.ok


class TestJsonify:
    def test_enum_keys_and_values_become_strings(self):
        data = {
            TriggerKind.STORE: {(1, 2): 0.5},
            "plain": [StorePrefetchMode.NONE, 3, None],
        }
        assert jsonify(data) == {
            "store": {"1,2": 0.5},
            "plain": ["sp0", 3, None],
        }


class TestSmtRequests:
    """SMT fields and the ``estimate`` kind on the wire."""

    def test_simulate_carries_contexts_and_scheduler(self):
        request = parse_job_request(wire({
            "kind": "simulate",
            "job": {
                "workload": "oltp_java",
                "contexts": 2,
                "scheduler": "mlp",
            },
        }))
        assert request.job.contexts == 2
        assert request.job.scheduler == "mlp"

    def test_contexts_default_to_single(self):
        request = parse_job_request({
            "kind": "simulate", "job": {"workload": "database"},
        })
        assert request.job.contexts == 1
        assert request.job.scheduler == ""

    def test_mix_workloads_need_multiple_contexts(self):
        with pytest.raises(ProtocolError) as err:
            parse_job_request({
                "kind": "simulate", "job": {"workload": "oltp_java"},
            })
        assert "workload" in str(err.value)

    @pytest.mark.parametrize("contexts", [0, -1, True, "two", 2.5])
    def test_bad_contexts_rejected(self, contexts):
        with pytest.raises(ProtocolError):
            parse_job_request({
                "kind": "simulate",
                "job": {"workload": "database", "contexts": contexts},
            })

    def test_unknown_scheduler_lists_policies(self):
        with pytest.raises(ProtocolError) as err:
            parse_job_request({
                "kind": "simulate",
                "job": {"workload": "database", "contexts": 2,
                        "scheduler": "fifo"},
            })
        assert "valid schedulers" in str(err.value)

    def test_smt_jobs_cannot_shard_or_checkpoint(self):
        with pytest.raises(ProtocolError) as err:
            parse_job_request({
                "kind": "simulate",
                "job": {"workload": "database", "contexts": 2},
                "shards": 2,
            })
        assert "sharded" in str(err.value)

    def test_smt_fields_change_the_signature(self):
        def build(job):
            return parse_job_request({"kind": "simulate", "job": job})

        base = build({"workload": "database"})
        smt = build({"workload": "database", "contexts": 2})
        mlp = build({"workload": "database", "contexts": 2,
                     "scheduler": "mlp"})
        assert base.signature() != smt.signature()
        assert smt.signature() != mlp.signature()

    def test_estimate_request(self):
        request = parse_job_request(wire({
            "kind": "estimate",
            "job": {
                "workload": "database",
                "core_changes": {"scout": "hws2"},
            },
        }))
        assert request.kind == "estimate"
        assert request.job.workload == "database"
        assert "estimate[" in request.describe()

    def test_estimate_accepts_smt_specs(self):
        request = parse_job_request({
            "kind": "estimate",
            "job": {"workload": "oltp_java", "contexts": 2},
        })
        assert request.job.contexts == 2

    def test_estimate_validates_like_simulate(self):
        with pytest.raises(ProtocolError):
            parse_job_request({
                "kind": "estimate",
                "job": {"workload": "database", "contexts": 0},
            })
