"""End-to-end reproduction of the paper's qualitative claims.

Each test runs the full pipeline (generate -> annotate -> simulate) at a
reduced trace size and asserts one of the paper's headline findings.  These
are the same checks the benchmark harness makes at full size.
"""

from __future__ import annotations

import pytest

from repro.config import ScoutMode, StorePrefetchMode
from repro.harness import ExperimentSettings
from repro.harness.experiment import Workbench
from repro.harness.figures import smac_memory_config, smac_scaled_profile


@pytest.fixture(scope="module")
def bench():
    return Workbench(ExperimentSettings(
        warmup=20_000, measure=50_000, seed=5, calibrate=False,
    ))


WORKLOADS = ("database", "tpcw", "specjbb", "specweb")


class TestStoreImpact:
    """Section 5.1: missing stores contribute significantly to off-chip CPI."""

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_stores_contribute_to_epi(self, bench, workload):
        with_stores = bench.run(
            workload, store_prefetch=StorePrefetchMode.NONE
        )
        perfect = bench.run(
            workload, store_prefetch=StorePrefetchMode.NONE,
            perfect_stores=True,
        )
        contribution = 1 - perfect.epi / with_stores.epi
        assert contribution > 0.10  # paper: 17%-46% without prefetching

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_store_prefetching_helps(self, bench, workload):
        sp0 = bench.run(workload, store_prefetch=StorePrefetchMode.NONE)
        sp1 = bench.run(workload, store_prefetch=StorePrefetchMode.AT_RETIRE)
        assert sp1.epi <= sp0.epi

    def test_prefetch_at_execute_at_least_matches_retire(self, bench):
        sp1 = bench.run("database", store_prefetch=StorePrefetchMode.AT_RETIRE)
        sp2 = bench.run("database", store_prefetch=StorePrefetchMode.AT_EXECUTE)
        assert sp2.epi <= sp1.epi * 1.02

    def test_prefetching_does_not_close_the_gap_fully(self, bench):
        """Even with store prefetching, missing stores still cost epochs
        (the residual the SMAC/SLE/HWS2 sections attack)."""
        sp2 = bench.run("specweb", store_prefetch=StorePrefetchMode.AT_EXECUTE)
        perfect = bench.run("specweb", perfect_stores=True)
        assert sp2.epi > perfect.epi


class TestSerializationFindings:
    """Section 5.1/5.3: serializing instructions, not queue sizes, limit
    store MLP for TPC-W/SPECjbb/SPECweb."""

    @pytest.mark.parametrize("workload", ("tpcw", "specjbb", "specweb"))
    def test_store_serialize_dominates(self, bench, workload):
        from repro.analysis import dominant_condition
        from repro.core.epoch import TerminationCondition
        result = bench.run(workload)
        assert dominant_condition(result) is (
            TerminationCondition.STORE_SERIALIZE
        )

    @pytest.mark.parametrize("workload", ("specjbb", "specweb"))
    def test_enlarging_queues_barely_helps_serialize_bound(
        self, bench, workload
    ):
        small = bench.run(workload, store_queue=32)
        large = bench.run(workload, store_queue=256)
        assert large.epi >= small.epi * 0.93

    def test_database_benefits_from_larger_store_queue(self, bench):
        small = bench.run(
            "database", store_queue=16,
            store_prefetch=StorePrefetchMode.NONE,
        )
        large = bench.run(
            "database", store_queue=256,
            store_prefetch=StorePrefetchMode.NONE,
        )
        assert large.epi < small.epi


class TestConsistencyGap:
    """Section 5.3: WC outperforms PC on stores; SLE closes the gap."""

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_wc_beats_pc(self, bench, workload):
        pc = bench.run(workload)
        wc = bench.run(workload, variant="wc")
        assert wc.epi < pc.epi

    @pytest.mark.parametrize("workload", ("tpcw", "specjbb", "specweb"))
    def test_sle_narrows_the_gap(self, bench, workload):
        pc = bench.run(workload)
        wc = bench.run(workload, variant="wc")
        pc_sle = bench.run(
            workload, variant="pc_sle", prefetch_past_serializing=True
        )
        gap = pc.epi - wc.epi
        remaining = pc_sle.epi - wc.epi
        assert remaining < 0.5 * gap

    def test_prefetch_past_serializing_helps_pc(self, bench):
        base = bench.run("specjbb")
        optimized = bench.run("specjbb", prefetch_past_serializing=True)
        assert optimized.epi <= base.epi


class TestHardwareScout:
    """Section 5.4: HWS2 almost eliminates store impact and bridges the
    consistency gap."""

    def test_scout_improves_epi(self, bench):
        base = bench.run("database")
        scouted = bench.run("database", scout=ScoutMode.HWS0)
        assert scouted.epi < base.epi

    def test_hws_ladder_monotone(self, bench):
        results = [
            bench.run("specweb", scout=mode).epi
            for mode in (ScoutMode.NONE, ScoutMode.HWS0,
                         ScoutMode.HWS1, ScoutMode.HWS2)
        ]
        assert results[1] < results[0]
        assert results[2] <= results[1] * 1.02
        assert results[3] <= results[2] * 1.02

    def test_hws2_nearly_eliminates_store_impact(self, bench):
        hws2 = bench.run("specweb", scout=ScoutMode.HWS2)
        hws2_perfect = bench.run(
            "specweb", scout=ScoutMode.HWS2, perfect_stores=True
        )
        base = bench.run("specweb")
        base_perfect = bench.run("specweb", perfect_stores=True)
        store_cost_base = base.epi - base_perfect.epi
        store_cost_hws2 = hws2.epi - hws2_perfect.epi
        assert store_cost_hws2 < 0.5 * store_cost_base

    def test_hws2_narrows_consistency_gap(self, bench):
        pc = bench.run("specjbb", scout=ScoutMode.HWS2)
        wc = bench.run("specjbb", variant="wc", scout=ScoutMode.HWS2)
        base_gap = bench.run("specjbb").epi - bench.run(
            "specjbb", variant="wc"
        ).epi
        scout_gap = pc.epi - wc.epi
        assert scout_gap < base_gap


class TestSmac:
    """Section 5.2: the SMAC approaches prefetch-at-execute performance
    without consuming issue bandwidth."""

    @pytest.fixture(scope="class")
    def smac_bench(self):
        bench = Workbench(ExperimentSettings(
            warmup=40_000, measure=80_000, seed=5, calibrate=False,
        ))
        for name in ("database", "specweb"):
            bench.set_profile(name, smac_scaled_profile(name))
        return bench

    def test_smac_improves_epi(self, smac_bench):
        without = smac_bench.run(
            "database",
            memory_config=smac_memory_config(None),
            tag="none",
            store_prefetch=StorePrefetchMode.NONE,
        )
        with_smac = smac_bench.run(
            "database",
            memory_config=smac_memory_config(1024),
            tag="1024",
            store_prefetch=StorePrefetchMode.NONE,
        )
        assert with_smac.epi < without.epi
        assert with_smac.accelerated_stores > 0

    def test_bigger_smac_is_at_least_as_good(self, smac_bench):
        small = smac_bench.run(
            "specweb",
            memory_config=smac_memory_config(64),
            tag="64",
        )
        large = smac_bench.run(
            "specweb",
            memory_config=smac_memory_config(1024),
            tag="1024",
        )
        assert large.epi <= small.epi * 1.05
