"""Address-space regions."""

from __future__ import annotations

import random

import pytest

from repro.workloads import AddressMap, Region


class TestRegion:
    def test_bounds(self):
        region = Region("r", 0x1000, 0x100)
        assert region.end == 0x1100
        assert region.contains(0x1000)
        assert region.contains(0x10FF)
        assert not region.contains(0x1100)

    def test_line_wraps(self):
        region = Region("r", 0x1000, 256)  # 4 lines
        assert region.line(0) == 0x1000
        assert region.line(4) == 0x1000
        assert region.line(5) == 0x1040

    def test_random_address_alignment_and_bounds(self):
        region = Region("r", 0x1000, 4096)
        rng = random.Random(0)
        for _ in range(200):
            address = region.random_address(rng, align=8)
            assert region.contains(address)
            assert address % 8 == 0

    def test_random_line_is_line_aligned(self):
        region = Region("r", 0x1000, 4096)
        rng = random.Random(0)
        for _ in range(100):
            assert region.random_line(rng) % 64 == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Region("bad", 0, 0)
        with pytest.raises(ValueError):
            Region("bad", -1, 64)


class TestAddressMap:
    def test_regions_disjoint(self):
        space = AddressMap()
        a = space.add("a", 1024 * 1024)
        b = space.add("b", 4 * 1024 * 1024)
        c = space.add("c", 64)
        for first in (a, b, c):
            for second in (a, b, c):
                if first is second:
                    continue
                assert first.end <= second.base or second.end <= first.base

    def test_lookup_by_name(self):
        space = AddressMap()
        space.add("data", 4096)
        assert space["data"].size == 4096
        assert "data" in space
        assert "nothing" not in space

    def test_region_of(self):
        space = AddressMap()
        region = space.add("data", 4096)
        assert space.region_of(region.base + 100) is region
        assert space.region_of(0) is None

    def test_duplicate_name_rejected(self):
        space = AddressMap()
        space.add("x", 64)
        with pytest.raises(ValueError):
            space.add("x", 64)
