"""Set-associative cache behaviour: hits, LRU, eviction, invalidation."""

from __future__ import annotations

import pytest

from repro.config import CacheConfig
from repro.memory import MesiState, SetAssociativeCache


@pytest.fixture
def tiny_cache():
    """2 sets x 2 ways x 64B lines."""
    return SetAssociativeCache(CacheConfig(256, 2, 64))


def same_set_addresses(cache, count, set_index=0):
    """Addresses mapping to one set of *cache*."""
    stride = cache.config.num_sets * cache.config.line_bytes
    return [set_index * cache.config.line_bytes + i * stride
            for i in range(count)]


class TestBasics:
    def test_miss_then_hit(self, tiny_cache):
        assert tiny_cache.lookup(0x0) is None
        tiny_cache.fill(0x0)
        assert tiny_cache.lookup(0x0) is not None
        assert tiny_cache.stats.read_misses == 1
        assert tiny_cache.stats.read_hits == 1

    def test_same_line_offsets_hit(self, tiny_cache):
        tiny_cache.fill(0x40)
        assert tiny_cache.lookup(0x40) is not None
        assert tiny_cache.lookup(0x78) is not None  # same 64B line

    def test_write_hit_marks_dirty_and_modified(self, tiny_cache):
        tiny_cache.fill(0x0, MesiState.EXCLUSIVE)
        line = tiny_cache.lookup(0x0, write=True)
        assert line.dirty
        assert line.state is MesiState.MODIFIED

    def test_probe_does_not_touch_counters_or_recency(self, tiny_cache):
        tiny_cache.fill(0x0)
        before = tiny_cache.stats.accesses
        assert tiny_cache.probe(0x0) is not None
        assert tiny_cache.probe(0x40) is None
        assert tiny_cache.stats.accesses == before

    def test_occupancy_and_resident_lines(self, tiny_cache):
        tiny_cache.fill(0x0)
        tiny_cache.fill(0x40)
        assert tiny_cache.occupancy() == 2
        assert set(tiny_cache.resident_lines()) == {0x0, 0x40}


class TestLru:
    def test_lru_victim_is_least_recent(self, tiny_cache):
        a, b, c = same_set_addresses(tiny_cache, 3)
        tiny_cache.fill(a)
        tiny_cache.fill(b)
        tiny_cache.lookup(a)            # a is now MRU
        evicted = tiny_cache.fill(c)    # b must be the victim
        assert evicted is not None
        assert evicted[0] == b

    def test_fill_of_resident_line_updates_state_not_duplicates(self, tiny_cache):
        tiny_cache.fill(0x0, MesiState.EXCLUSIVE)
        assert tiny_cache.fill(0x0, MesiState.MODIFIED, dirty=True) is None
        line = tiny_cache.probe(0x0)
        assert line.state is MesiState.MODIFIED
        assert line.dirty

    def test_eviction_reports_dirty_line_for_writeback(self, tiny_cache):
        a, b, c = same_set_addresses(tiny_cache, 3)
        tiny_cache.fill(a, MesiState.MODIFIED, dirty=True)
        tiny_cache.fill(b)
        evicted_address, victim = tiny_cache.fill(c)
        assert evicted_address == a
        assert victim.dirty
        assert tiny_cache.stats.writebacks == 1


class TestInvalidate:
    def test_invalidate_removes_line(self, tiny_cache):
        tiny_cache.fill(0x0)
        assert tiny_cache.invalidate(0x0) is not None
        assert tiny_cache.probe(0x0) is None
        assert tiny_cache.stats.snoop_invalidates == 1

    def test_invalidate_absent_line_is_noop(self, tiny_cache):
        assert tiny_cache.invalidate(0x1234) is None
        assert tiny_cache.stats.snoop_invalidates == 0

    def test_invalid_way_preferred_over_eviction(self, tiny_cache):
        a, b, c = same_set_addresses(tiny_cache, 3)
        tiny_cache.fill(a)
        tiny_cache.fill(b)
        tiny_cache.invalidate(a)
        assert tiny_cache.fill(c) is None  # reused the invalid way
        assert tiny_cache.stats.evictions == 0


class TestStats:
    def test_miss_ratio(self, tiny_cache):
        tiny_cache.lookup(0x0)
        tiny_cache.fill(0x0)
        tiny_cache.lookup(0x0)
        assert tiny_cache.stats.miss_ratio == pytest.approx(0.5)

    def test_reset(self, tiny_cache):
        tiny_cache.lookup(0x0)
        tiny_cache.stats.reset()
        assert tiny_cache.stats.accesses == 0


class TestAddressReconstruction:
    def test_resident_lines_round_trip(self):
        cache = SetAssociativeCache(CacheConfig(64 * 1024, 4, 64))
        addresses = {0x0, 0x10000, 0xABC00, 0x7FFFFC0}
        for address in addresses:
            cache.fill(address)
        assert set(cache.resident_lines()) == addresses
