"""The design-space autotuner (repro.tune).

Pins the PR 8 acceptance properties: seeded determinism for every
strategy, the analytical pruner never pruning the true optimum on an
exhaustive space, identical candidates evaluated once across runs and
strategies, and checkpoint/resume identity for killed runs.  Simulations
use the same deliberately tiny trace sizing as the engine-runner tests.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.config import ScoutMode
from repro.engine.cache import ArtifactCache, resolve_cache_dir
from repro.harness import ExperimentSettings
from repro.obs.metrics import MetricsRegistry
from repro.tune import (
    STRATEGIES,
    GridTuner,
    SearchSpace,
    TunePruner,
    TuneSpec,
    TuneStateStore,
    TuneTelemetry,
    canonical_candidate,
    make_tuner,
    predicted_epi_per_1000,
    run_tune,
)
from repro.workloads import WORKLOADS

SMALL = ExperimentSettings(warmup=1500, measure=4000, seed=11,
                           calibrate=False)

#: A four-point space the driver tests exhaust cheaply.
SPACE = {"store_buffer": [4, 16], "consistency": ["pc", "wc"]}

#: A 32-point space big enough for strategy-level behaviour to differ.
WIDE = SearchSpace.build(
    store_buffer=[4, 8, 16, 32],
    scout=["none", "hws0", "hws1", "hws2"],
    consistency=["pc", "wc"],
)


def _tune(tmp_path, name, **kwargs):
    kwargs.setdefault("settings", SMALL)
    kwargs.setdefault("profile", "database")
    return api.tune(SPACE, cache_dir=tmp_path / name, **kwargs)


class TestSearchSpace:
    def test_unknown_parameter_lists_valid_axes(self):
        with pytest.raises(ValueError, match="valid axes"):
            SearchSpace.build(warp_drive=[1, 2])

    def test_values_coerce_like_sweep_axes(self):
        space = SearchSpace.build(scout=["hws2"], sle=["true"])
        assert space.values("scout") == (ScoutMode.HWS2,)
        assert space.values("sle") == (True,)

    def test_duplicate_values_collapse(self):
        space = SearchSpace.build(store_queue=[16, "16", 32])
        assert space.values("store_queue") == (16, 32)

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError, match="at least one parameter"):
            SearchSpace(params=())

    def test_grid_size_and_order(self):
        space = SearchSpace.build(store_queue=[16, 32], sle=[False, True])
        assert space.size() == 4
        grid = space.grid()
        assert len(grid) == 4
        # Last declared parameter varies fastest (sweep grid order).
        assert grid[0] == canonical_candidate(
            {"store_queue": 16, "sle": False})
        assert grid[1] == canonical_candidate(
            {"store_queue": 16, "sle": True})

    def test_cross_field_constraint_marks_candidate_invalid(self):
        # CoreConfig requires rob >= issue_window; the space delegates.
        space = SearchSpace.build(rob=[8, 64], issue_window=[8, 64])
        bad = canonical_candidate({"rob": 8, "issue_window": 64})
        good = canonical_candidate({"rob": 64, "issue_window": 8})
        assert not space.is_valid(bad)
        assert space.is_valid(good)

    def test_default_candidate_prefers_stock_values(self):
        space = SearchSpace.build(store_buffer=[4, 16, 32],
                                  consistency=["pc", "wc"])
        knobs = dict(space.default_candidate())
        assert knobs["store_buffer"] == 16  # the CoreConfig default
        assert str(knobs["consistency"].value) == "pc"

    def test_wire_round_trip(self):
        import json

        back = SearchSpace.from_dict(
            json.loads(json.dumps(WIDE.to_dict()))
        )
        assert back == WIDE
        assert back.grid() == WIDE.grid()


def _replay(strategy, seed, budget=12):
    """Drive a tuner ask/tell loop against the analytic model (no
    simulation) and return the proposed candidate sequence."""
    tuner = make_tuner(strategy, WIDE, seed, budget=budget)
    profile = WORKLOADS["database"]
    asked = []
    told = 0
    while told < budget and not tuner.exhausted:
        batch = tuner.ask(budget - told)
        if not batch:
            break
        asked.extend(batch)
        scores = {
            candidate: predicted_epi_per_1000(profile, dict(candidate))
            for candidate in batch
        }
        told += len(scores)
        tuner.tell(scores)
    return asked


class TestStrategies:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_same_seed_replays_identical_sequence(self, strategy):
        assert _replay(strategy, seed=7) == _replay(strategy, seed=7)

    @pytest.mark.parametrize("strategy", ["random", "genetic"])
    def test_different_seed_diverges(self, strategy):
        assert _replay(strategy, seed=7) != _replay(strategy, seed=8)

    def test_grid_prefix_is_sweep_order(self):
        tuner = GridTuner(WIDE)
        assert tuner.ask(5) == WIDE.grid()[:5]
        assert tuner.ask(100) == WIDE.grid()[5:]
        assert tuner.exhausted

    def test_random_samples_without_replacement(self):
        tuner = make_tuner("random", WIDE, seed=3)
        seen = tuner.ask(WIDE.size())
        assert len(set(seen)) == len(seen) == WIDE.size()
        assert tuner.exhausted
        assert tuner.ask(4) == []

    def test_genetic_starts_from_near_default(self):
        tuner = make_tuner("genetic", WIDE, seed=0, budget=12)
        first = tuner.ask(12)
        assert first[0] == WIDE.default_candidate()

    def test_unknown_strategy_lists_valid_names(self):
        with pytest.raises(ValueError, match="valid strategies"):
            make_tuner("annealing", WIDE, seed=0)


class TestPruner:
    def test_never_fires_without_an_incumbent(self):
        pruner = TunePruner(WORKLOADS["database"])
        worst = canonical_candidate({"scout": ScoutMode.NONE})
        assert not pruner.should_prune(worst, None)

    def test_prunes_predicted_far_worse_candidates(self):
        pruner = TunePruner(WORKLOADS["database"], margin=0.30)
        good = canonical_candidate(
            dict(SearchSpace.build(scout=["hws2"],
                                   consistency=["wc"]).grid()[0])
        )
        bad = canonical_candidate(
            dict(SearchSpace.build(scout=["none"],
                                   consistency=["pc"]).grid()[0])
        )
        assert pruner.should_prune(bad, good)
        assert not pruner.should_prune(good, bad)

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError, match="margin"):
            TunePruner(WORKLOADS["database"], margin=-0.1)

    def test_true_optimum_never_pruned(self, tmp_path):
        # Exhaustively measure a 24-point space; the winner is the true
        # optimum, and no incumbent anywhere in the space may prune it.
        result = api.tune(
            {"scout": ["none", "hws0", "hws1", "hws2"],
             "consistency": ["pc", "wc"],
             "store_buffer": [4, 16, 32]},
            profile="database", strategy="grid", budget=24,
            settings=SMALL, cache_dir=tmp_path / "grid",
        )
        assert result.evaluations == 24
        pruner = TunePruner(WORKLOADS["database"], margin=0.30)
        for incumbent in result.spec.space.grid():
            assert not pruner.should_prune(result.best, incumbent)


class TestDriver:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_seeded_runs_replay_identically(self, tmp_path, strategy):
        a = _tune(tmp_path, "a", strategy=strategy, budget=4, seed=5)
        b = _tune(tmp_path, "b", strategy=strategy, budget=4, seed=5)
        assert [o.candidate for o in a.history] == \
            [o.candidate for o in b.history]
        assert a.best == b.best
        assert a.best_epi_per_1000 == b.best_epi_per_1000

    def test_identical_candidates_evaluated_once_across_strategies(
            self, tmp_path):
        grid = _tune(tmp_path, "shared", strategy="grid", budget=4)
        assert grid.evaluations == 4
        random = _tune(tmp_path, "shared", strategy="random",
                       budget=4, seed=3)
        # Every candidate the random run proposes was measured by the
        # grid run; the shared cache serves all of them.
        assert random.evaluations == 0
        assert random.deduped == 4
        # Both runs cover the identical exhaustive space, so the winning
        # score must agree (the winning *candidate* may differ only when
        # the tiny landscape has exact ties, broken by proposal order).
        assert random.best_epi_per_1000 == grid.best_epi_per_1000
        assert random.best in {o.candidate for o in grid.history}

    def test_finished_run_resumes_to_identical_result(self, tmp_path):
        first = _tune(tmp_path, "cache", strategy="genetic",
                      budget=4, seed=5)
        again = _tune(tmp_path, "cache", strategy="genetic",
                      budget=4, seed=5)
        assert again.evaluations == 0
        assert again.resumed > 0
        assert again.best == first.best
        assert again.best_epi_per_1000 == first.best_epi_per_1000
        assert again.token == first.token != ""

    def test_killed_run_resumes_without_reevaluating(self, tmp_path):
        full = _tune(tmp_path, "full", strategy="grid", budget=4)
        measured = {
            o.candidate: o.epi_per_1000
            for o in full.history if o.source == "measured"
        }
        assert len(measured) == 4
        # Seed a fresh cache with only the first two evaluations, as if
        # the run had been killed after its first snapshot.
        partial = dict(list(measured.items())[:2])
        spec = TuneSpec.build("database", SPACE, strategy="grid", budget=4)
        store = TuneStateStore(
            ArtifactCache(resolve_cache_dir(tmp_path / "killed"))
        )
        store.save(spec, SMALL, partial)
        second = api.tune(
            SPACE, profile="database", strategy="grid", budget=4,
            settings=SMALL, cache_dir=tmp_path / "killed",
        )
        assert second.resumed == 2
        assert second.evaluations == 2
        assert second.best == full.best
        assert second.best_epi_per_1000 == full.best_epi_per_1000

    def test_resume_false_ignores_state(self, tmp_path):
        _tune(tmp_path, "cache", strategy="grid", budget=4)
        fresh = _tune(tmp_path, "cache", strategy="grid", budget=4,
                      resume=False)
        assert fresh.resumed == 0
        # ... but the per-candidate artifacts still dedup.
        assert fresh.evaluations == 0
        assert fresh.deduped == 4

    def test_corrupt_state_restarts_clean(self, tmp_path):
        spec = TuneSpec.build("database", SPACE, strategy="grid", budget=4)
        cache = ArtifactCache(resolve_cache_dir(tmp_path / "c"))
        store = TuneStateStore(cache)
        good = {canonical_candidate({"store_buffer": 4,
                                     "consistency": "pc"}): 20.0}
        # This candidate holds a raw string knob — good enough for the
        # digest check, which only cares about byte-identical content.
        token = store.save(spec, SMALL, good)
        state = store.load_record(token)
        import dataclasses

        tampered = dataclasses.replace(state, digest="0" * 64)
        cache.put(store.KIND, token, tampered)
        assert store.load(spec, SMALL) == {}

    def test_budget_and_strategy_validation(self):
        with pytest.raises(ValueError, match="budget"):
            TuneSpec.build("database", SPACE, budget=0)
        with pytest.raises(ValueError, match="valid strategies"):
            TuneSpec.build("database", SPACE, strategy="annealing")

    def test_result_wire_round_trip(self, tmp_path):
        import json

        from repro.tune import TuneResult

        result = _tune(tmp_path, "wire", strategy="grid", budget=2)
        back = TuneResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert back == result
        assert back.best_knobs == result.best_knobs
        assert back.summary() == result.summary()


class TestTelemetry:
    def test_note_result_accumulates_and_registers(self, tmp_path):
        telemetry = TuneTelemetry()
        spec = TuneSpec.build("database", SPACE, strategy="grid", budget=4)
        result = run_tune(
            spec, settings=SMALL, cache_dir=tmp_path / "t",
            telemetry=telemetry,
        )
        assert telemetry.runs == 1
        assert telemetry.evaluated == result.evaluations == 4
        assert telemetry.best_epi_per_1000 == result.best_epi_per_1000
        registry = MetricsRegistry()
        telemetry.register_metrics(registry)
        snapshot = registry.to_dict()["gauges"]
        assert snapshot["tune_runs_total"] == 1
        assert snapshot["tune_candidates_evaluated_total"] == 4


class TestSmtTuning:
    """``contexts=``/``scheduler=`` as a tuning axis (SMT sweeps)."""

    def test_tune_over_a_mix_runs_smt_candidates(self, tmp_path):
        result = _tune(
            tmp_path, "smt", profile="oltp_java", strategy="grid",
            budget=2, contexts=2, scheduler="mlp",
        )
        assert result.evaluations == 2
        assert result.best_epi_per_1000 > 0

    def test_invalid_contexts_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="contexts"):
            _tune(tmp_path, "bad", contexts=0)

    def test_unknown_scheduler_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="valid schedulers"):
            _tune(tmp_path, "bad", contexts=2, scheduler="fifo")
