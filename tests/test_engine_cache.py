"""The content-addressed artifact cache (repro.engine.cache)."""

from __future__ import annotations

import enum
import pickle
from dataclasses import dataclass

import pytest

from repro.config import MemoryConfig, SimulationConfig, StorePrefetchMode
from repro.engine.cache import (
    ArtifactCache,
    content_key,
    resolve_cache_dir,
    stable_token,
)


@dataclass(frozen=True)
class _Point:
    x: int
    y: float


class _Color(enum.Enum):
    RED = "red"
    BLUE = "blue"


class TestStableToken:
    def test_scalars_round_trip(self):
        assert stable_token(None) == "None"
        assert stable_token(True) == "True"
        assert stable_token(42) == "42"
        assert stable_token("abc") == "'abc'"
        assert stable_token(0.1) == repr(0.1)

    def test_bool_and_int_do_not_collide(self):
        assert stable_token(True) != stable_token(1)
        assert stable_token(False) != stable_token(0)

    def test_enum_uses_name_not_value(self):
        assert stable_token(_Color.RED) == "_Color.RED"
        assert stable_token(StorePrefetchMode.AT_RETIRE) != stable_token(
            StorePrefetchMode.AT_EXECUTE
        )

    def test_dataclass_includes_every_field(self):
        token = stable_token(_Point(x=3, y=0.5))
        assert token == "_Point(x=3,y=0.5)"

    def test_dict_is_order_independent(self):
        assert stable_token({"a": 1, "b": 2}) == stable_token({"b": 2, "a": 1})

    def test_set_is_order_independent(self):
        assert stable_token({3, 1, 2}) == stable_token({2, 3, 1})

    def test_nested_config_objects_tokenize(self):
        # The real key inputs: frozen config dataclasses with enum fields.
        token = stable_token(SimulationConfig())
        assert "CoreConfig" in token
        assert stable_token(MemoryConfig()) != token

    def test_unstable_types_raise(self):
        with pytest.raises(TypeError):
            stable_token(object())

    def test_lambda_raises(self):
        with pytest.raises(TypeError):
            stable_token(lambda: None)


class TestContentKey:
    def test_deterministic(self):
        assert content_key("trace", 1, "pc") == content_key("trace", 1, "pc")

    def test_any_part_changes_key(self):
        base = content_key("trace", SimulationConfig(), 120_000, 7)
        assert content_key("trace", SimulationConfig(), 120_000, 8) != base
        assert content_key("annotation", SimulationConfig(), 120_000, 7) != base
        changed = SimulationConfig().with_core(store_queue=64)
        assert content_key("trace", changed, 120_000, 7) != base

    def test_key_is_hex_sha256(self):
        key = content_key("profile", 1)
        assert len(key) == 64
        int(key, 16)


class TestMemoryTier:
    def test_get_or_create_calls_factory_once(self):
        cache = ArtifactCache(None)
        calls = []
        for _ in range(3):
            value = cache.get_or_create("t", "k", lambda: calls.append(1) or [7])
        assert calls == [1]
        assert value == [7]
        assert cache.stats.memory_hits == 2
        assert cache.stats.misses == 1

    def test_preserves_object_identity_in_memory(self):
        cache = ArtifactCache(None)
        first = cache.get_or_create("t", "k", lambda: [1, 2])
        assert cache.get("t", "k") is first

    def test_lru_evicts_oldest(self):
        cache = ArtifactCache(None, memory_entries=2)
        cache.put("t", "a", 1)
        cache.put("t", "b", 2)
        cache.get("t", "a")  # refresh "a"; "b" is now oldest
        cache.put("t", "c", 3)
        assert cache.get("t", "b") is None
        assert cache.get("t", "a") == 1
        assert cache.stats.evictions == 1

    def test_kinds_are_separate_namespaces(self):
        cache = ArtifactCache(None)
        cache.put("trace", "k", "trace-value")
        cache.put("annotation", "k", "annotation-value")
        assert cache.get("trace", "k") == "trace-value"
        assert cache.get("annotation", "k") == "annotation-value"

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ArtifactCache(None, memory_entries=0)


class TestPersistentTier:
    def test_survives_a_new_cache_instance(self, tmp_path):
        first = ArtifactCache(tmp_path)
        first.put("trace", "deadbeef", {"payload": list(range(10))})
        second = ArtifactCache(tmp_path)
        assert second.get("trace", "deadbeef") == {"payload": list(range(10))}
        assert second.stats.disk_hits == 1

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("t", "k", [1])
        cache.clear_memory()
        cache.get("t", "k")
        cache.get("t", "k")
        assert cache.stats.disk_hits == 1
        assert cache.stats.memory_hits == 1

    def test_layout_shards_by_key_prefix(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("trace", "abcd1234", 1)
        assert (tmp_path / "trace" / "ab" / "abcd1234.pkl").exists()

    def test_corrupt_entry_is_dropped_and_recomputed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("t", "k", [1])
        path = tmp_path / "t" / "k"[:2] / "k.pkl"
        path.write_bytes(b"not a pickle")
        cache.clear_memory()
        assert cache.get_or_create("t", "k", lambda: "fresh") == "fresh"
        assert not path.read_bytes() == b"not a pickle"  # rewritten
        assert pickle.loads(path.read_bytes()) == "fresh"

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("t", "k", list(range(1000)))
        path = tmp_path / "t" / "k"[:2] / "k.pkl"
        path.write_bytes(path.read_bytes()[:10])
        cache.clear_memory()
        assert cache.get("t", "k") is None
        assert cache.stats.misses == 1

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for i in range(5):
            cache.put("t", f"key{i}", i)
        leftovers = list(tmp_path.rglob(".tmp-*"))
        assert leftovers == []

    def test_unpicklable_value_does_not_publish_partial_entry(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(Exception):
            cache.put("t", "k", lambda: None)  # lambdas don't pickle
        assert list(tmp_path.rglob("*.pkl")) == []


class TestResolveCacheDir:
    def test_none_disables(self):
        assert resolve_cache_dir(None) is None

    def test_auto_uses_env_var(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert resolve_cache_dir("auto") == tmp_path / "env-cache"

    def test_auto_defaults_to_dot_repro_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert str(resolve_cache_dir("auto")) == ".repro-cache"

    def test_explicit_path_passes_through(self, tmp_path):
        assert resolve_cache_dir(tmp_path) == tmp_path


class TestCachedNoneRegression:
    def test_cached_none_is_a_hit_not_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        calls = []

        def factory():
            calls.append(1)
            return None

        assert cache.get_or_create("t", "k", factory) is None
        assert cache.get_or_create("t", "k", factory) is None
        assert len(calls) == 1
        assert cache.stats.memory_hits == 1

    def test_cached_none_survives_memory_eviction(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        calls = []

        def factory():
            calls.append(1)
            return None

        cache.get_or_create("t", "k", factory)
        cache.clear_memory()
        cache.get_or_create("t", "k", factory)
        assert len(calls) == 1
        assert cache.stats.disk_hits == 1


class TestDiskTier:
    def _filled(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for i in range(4):
            cache.put("trace", f"tkey{i}", list(range(200)))
        for i in range(2):
            cache.put("annotation", f"akey{i}", {"i": i})
        return cache

    def test_disk_stats_counts_entries_and_bytes(self, tmp_path):
        cache = self._filled(tmp_path)
        stats = cache.disk_stats()
        assert stats.entries == 6
        assert stats.total_bytes > 0
        assert stats.by_kind["trace"][0] == 4
        assert stats.by_kind["annotation"][0] == 2
        assert sum(n for n, _ in stats.by_kind.values()) == stats.entries
        assert sum(b for _, b in stats.by_kind.values()) == stats.total_bytes

    def test_disk_stats_on_memory_only_cache(self):
        cache = ArtifactCache(None)
        cache.put("t", "k", 1)
        stats = cache.disk_stats()
        assert stats.entries == 0 and stats.total_bytes == 0

    def test_prune_to_max_bytes_evicts_oldest_first(self, tmp_path):
        import os

        cache = ArtifactCache(tmp_path)
        for i in range(4):
            cache.put("t", f"key{i}", list(range(500)))
            path = tmp_path / "t" / f"key{i}"[:2] / f"key{i}.pkl"
            os.utime(path, (1000.0 + i, 1000.0 + i))
        before = cache.disk_stats()
        target = before.total_bytes - 1  # forces at least one eviction
        result = cache.prune(max_bytes=target)
        assert result.removed_entries >= 1
        assert result.remaining_bytes <= target
        # oldest mtime went first
        assert not (tmp_path / "t" / "ke" / "key0.pkl").exists()
        assert (tmp_path / "t" / "ke" / "key3.pkl").exists()
        assert result.remaining_entries == cache.disk_stats().entries

    def test_prune_older_than_removes_only_stale(self, tmp_path):
        import os

        cache = ArtifactCache(tmp_path)
        cache.put("t", "old", 1)
        cache.put("t", "new", 2)
        old_path = tmp_path / "t" / "ol" / "old.pkl"
        os.utime(old_path, (100.0, 100.0))
        result = cache.prune(older_than=3600.0, now=100.0 + 7200.0)
        assert result.removed_entries == 1
        assert not old_path.exists()
        assert (tmp_path / "t" / "ne" / "new.pkl").exists()

    def test_prune_noop_when_under_budget(self, tmp_path):
        cache = self._filled(tmp_path)
        result = cache.prune(max_bytes=10**9)
        assert result.removed_entries == 0
        assert result.remaining_entries == 6

    def test_pruned_entry_recomputes_cleanly(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("t", "k", "cold")
        cache.clear_memory()
        cache.prune(max_bytes=0)
        assert cache.get_or_create("t", "k", lambda: "fresh") == "fresh"


class TestPruneWriterRace:
    """Regression: prune raced a concurrent writer republishing a key.

    The prune listing is a snapshot; before the per-key writer lock a
    writer could republish an entry between the listing and the unlink,
    and prune would delete the *fresh* artifact.  Now the deletion
    re-stats under the key's lock and keeps any entry whose mtime moved.
    """

    def test_republished_entry_survives_stale_prune(self, tmp_path):
        import os

        cache = ArtifactCache(tmp_path)
        cache.put("t", "k", "old")
        stale_listing = cache._disk_entries()
        assert len(stale_listing) == 1
        path = stale_listing[0].path

        # a concurrent writer republishes the key after the listing; give
        # the fresh entry a visibly newer mtime than the listed one
        cache.put("t", "k", "new")
        os.utime(path, (stale_listing[0].mtime + 10,
                        stale_listing[0].mtime + 10))

        original = cache._disk_entries
        cache._disk_entries = lambda: stale_listing  # freeze the snapshot
        try:
            result = cache.prune(
                older_than=0.0, now=stale_listing[0].mtime + 5.0,
            )
        finally:
            cache._disk_entries = original

        assert result.removed_entries == 0
        assert path.exists()
        fresh = ArtifactCache(tmp_path)
        assert fresh.get("t", "k") == "new"

    def test_vanished_entry_counts_as_removed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("t", "k", "old")
        listing = cache._disk_entries()
        listing[0].path.unlink()  # concurrent removal after the listing
        original = cache._disk_entries
        cache._disk_entries = lambda: listing
        try:
            result = cache.prune(older_than=0.0, now=listing[0].mtime + 5.0)
        finally:
            cache._disk_entries = original
        assert result.removed_entries == 1

    def test_concurrent_put_and_prune_never_lose_the_latest(self, tmp_path):
        import threading

        cache = ArtifactCache(tmp_path)
        cache.put("t", "k", 0)
        stop = threading.Event()

        def writer():
            value = 1
            while not stop.is_set():
                cache.put("t", "k", value)
                value += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(50):
                cache.prune(max_bytes=0)
        finally:
            stop.set()
            thread.join()
        cache.put("t", "k", "final")
        assert ArtifactCache(tmp_path).get("t", "k") == "final"
