"""Typed search spaces over the sweepable core-configuration knobs.

A :class:`SearchSpace` is the tuning analogue of a sweep grid: an ordered
set of named parameters, each with an ordered tuple of allowed values.
Where a sweep *exhausts* the grid, a tuner *samples* it — so the space
also knows how to draw random candidates, produce a near-default starting
point, and validate a candidate against :class:`repro.config.CoreConfig`'s
cross-field constraints (e.g. ``rob >= issue_window``).

Parameter names and value spellings are exactly the sweep axes
(:func:`repro.harness.sweeps.valid_axes`): strings like ``"sp2"`` or
``"true"`` coerce to their typed form, and an unknown parameter name
raises the same actionable ``ValueError`` listing every valid axis.

Candidates are canonical ``((name, value), ...)`` tuples sorted by name —
hashable, and stable under :func:`repro.engine.cache.content_key`, so two
strategies proposing the same knob dict in different orders hash (and
dedup) identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from ..config import CoreConfig
from ..engine import serialize
from ..errors import ConfigError
from ..harness.sweeps import AXIS_INTS, coerce_axis_value, grid_points

__all__ = ["Candidate", "SearchSpace", "canonical_candidate"]

#: One point of the design space: knob name -> typed value, sorted by name.
Candidate = Tuple[Tuple[str, Any], ...]


def canonical_candidate(
    knobs: "Mapping[str, Any] | Sequence[Tuple[str, Any]]",
) -> Candidate:
    """*knobs* as the canonical sorted ``((name, value), ...)`` tuple."""
    items = knobs.items() if isinstance(knobs, Mapping) else knobs
    return tuple(sorted(items, key=lambda pair: pair[0]))


@dataclass(frozen=True)
class SearchSpace:
    """A typed design space: parameter names x allowed values.

    Stored as ``((name, (value, ...)), ...)`` — the same shape as
    :class:`~repro.harness.sweeps.SweepSpec` axes — so the space is
    hashable, tokenizes stably for content addressing, and round-trips
    through the service wire encoding.  Build one with :meth:`build`,
    which coerces external value spellings::

        space = SearchSpace.build(
            store_queue=[16, 32, 64],
            store_prefetch=["sp0", "sp1", "sp2"],
        )
    """

    params: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()

    def __post_init__(self) -> None:
        if not self.params:
            raise ValueError("a search space needs at least one parameter")
        seen = set()
        for name, values in self.params:
            if name in seen:
                raise ValueError(f"duplicate search space parameter {name!r}")
            seen.add(name)
            if not values:
                raise ValueError(
                    f"search space parameter {name!r} has no values"
                )

    @classmethod
    def build(
        cls,
        params: "Mapping[str, Any] | None" = None,
        **kwargs: Any,
    ) -> "SearchSpace":
        """The ergonomic constructor: coerces values via the sweep axes.

        Accepts a mapping and/or keyword arguments of ``name -> values``;
        a scalar value means a one-point parameter.  Unknown names raise
        ``ValueError`` listing the valid axes (the ``valid_axes()``
        rendering); duplicate values within a parameter collapse.
        """
        merged: Dict[str, Any] = dict(params or {})
        merged.update(kwargs)
        out = []
        for name, values in merged.items():
            if isinstance(values, str) or not isinstance(
                values, (list, tuple, range)
            ):
                values = [values]
            coerced: List[Any] = []
            for value in values:
                typed = coerce_axis_value(name, value)
                if typed not in coerced:
                    coerced.append(typed)
            out.append((name, tuple(coerced)))
        return cls(params=tuple(out))

    # -- introspection -----------------------------------------------------

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.params)

    def values(self, name: str) -> Tuple[Any, ...]:
        """The allowed values of parameter *name* (in declared order)."""
        for param, values in self.params:
            if param == name:
                return values
        raise ValueError(
            f"parameter {name!r} is not in this search space; "
            f"parameters: {', '.join(self.names)}"
        )

    def is_ordered(self, name: str) -> bool:
        """True when *name* is an integer sizing knob (step-mutable)."""
        return name in AXIS_INTS

    def size(self) -> int:
        """Number of grid points (cross product of all value counts)."""
        total = 1
        for _, values in self.params:
            total *= len(values)
        return total

    # -- candidates --------------------------------------------------------

    def grid(self) -> List[Candidate]:
        """Every point of the space, canonicalized, in grid order.

        Grid order matches :class:`~repro.harness.sweeps.SweepSpec` —
        the last declared parameter varies fastest — so an equal-budget
        prefix of this list is exactly "the first N points a sweep would
        run".
        """
        axes = {name: list(values) for name, values in self.params}
        return [canonical_candidate(point) for point in grid_points(axes)]

    def sample(self, rng: random.Random) -> Candidate:
        """One uniformly random point (canonicalized)."""
        return canonical_candidate(
            tuple((name, rng.choice(values)) for name, values in self.params)
        )

    def default_candidate(self) -> Candidate:
        """The point closest to the stock :class:`CoreConfig` defaults.

        Per knob: the default itself when the space allows it, the nearest
        allowed value for integer knobs, the first declared value
        otherwise.  Guarantees search always starts from (near) the
        paper's baseline configuration.
        """
        defaults = CoreConfig()
        picked = []
        for name, values in self.params:
            default = getattr(defaults, name)
            if default in values:
                choice = default
            elif name in AXIS_INTS:
                choice = min(values, key=lambda v: (abs(v - default), v))
            else:
                choice = values[0]
            picked.append((name, choice))
        return canonical_candidate(tuple(picked))

    def is_valid(self, candidate: Candidate) -> bool:
        """Whether *candidate* lies in the space and configures cleanly.

        Cross-field constraints (``rob >= issue_window``, power-of-two
        coalescing) are delegated to :class:`CoreConfig` validation —
        the single source of truth the whole pipeline shares.
        """
        knobs = dict(candidate)
        if set(knobs) != set(self.names):
            return False
        for name, value in knobs.items():
            if value not in self.values(name):
                return False
        try:
            CoreConfig().with_(**knobs)
        except ConfigError:
            return False
        return True

    def describe(self) -> str:
        """Compact one-line rendering for logs and CLI output."""
        parts = []
        for name, values in self.params:
            rendered = ",".join(
                str(getattr(value, "value", value)) for value in values
            )
            parts.append(f"{name}=[{rendered}]")
        return " ".join(parts)

    # -- wire form ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return serialize.to_jsonable(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SearchSpace":
        space = serialize.from_jsonable(data)
        if not isinstance(space, cls):
            raise serialize.SerializeError(
                f"expected a SearchSpace payload, decoded "
                f"{type(space).__name__}"
            )
        return space


serialize.register(SearchSpace)
