"""ECM-style analytical pruning of tuning candidates.

The prediction itself — :func:`repro.estimate.predicted_epi_per_1000`,
the base epoch model extended with per-knob sensitivity scales — is
canonical in :mod:`repro.estimate` (it also backs the fleet's routing
cost and the user-facing ``estimate`` verb); this module supplies the
pruning *policy* around it.

The model is deliberately coarse: multiplicative scale factors on the
lock-epoch and store-burst-epoch terms, one per knob, each monotone in
the direction the paper establishes (deeper store prefetch, bigger
SB/SQ, wider coalescing, scouting and weak consistency all reduce
epochs).  The absolute value is meaningless here; only the *ordering*
across candidates is used, and the pruning margin absorbs model error: a
candidate is skipped only when its predicted EPI is at least ``margin``
(default 30%) worse than the incumbent's prediction.

The magnitudes are calibrated against this simulator's measured
single-knob sensitivities, and that calibration is what makes the margin
sound: only the scout on/off decision moves measured EPI by more than
the margin (scouting is worth ~30-40% on the commercial profiles), so
only that knob is allowed a predicted spread larger than ``1 + margin``.
Every other knob's predicted spread is kept well inside the margin,
which bounds the damage of interaction effects the separable model
cannot see (e.g. a small store buffer *helping* under scouting):
whatever the true optimum's mix of small-effect knobs, its prediction
stays within the margin of any same-scout-class incumbent, so it is
never pruned — the driver-level property test pins this on an
exhaustive space.
"""

from __future__ import annotations

from typing import Optional

from ..estimate import predicted_epi_per_1000
from ..workloads import WorkloadProfile
from .space import Candidate

__all__ = ["TunePruner", "predicted_epi_per_1000"]


class TunePruner:
    """Skips candidates predicted ≥ *margin* worse than the incumbent.

    ``should_prune`` never fires before an incumbent has been *measured*
    — the model alone is not trusted to reject anything.
    """

    def __init__(
        self, profile: WorkloadProfile, margin: float = 0.30,
    ) -> None:
        if margin < 0:
            raise ValueError(f"pruning margin must be >= 0, got {margin}")
        self.profile = profile
        self.margin = margin

    def predict(self, candidate: Candidate) -> float:
        return predicted_epi_per_1000(self.profile, dict(candidate))

    def should_prune(
        self, candidate: Candidate, incumbent: Optional[Candidate],
    ) -> bool:
        if incumbent is None:
            return False
        return self.predict(candidate) >= (
            (1.0 + self.margin) * self.predict(incumbent)
        )
