"""ECM-style analytical pruning of tuning candidates.

The fleet's routing cost model (:mod:`repro.fleet.cost`) already predicts
epochs/instruction from published workload statistics; this module extends
that shared base model with knob sensitivity so the tuner can skip
candidates *predicted* far worse than the measured incumbent before paying
for a simulation — the same cheap-estimate-then-simulate pattern the
router uses for placement.

The prediction is deliberately coarse: multiplicative scale factors on the
lock-epoch and store-burst-epoch terms of
:func:`repro.fleet.cost.epochs_per_inst`, one per knob, each monotone in
the direction the paper establishes (deeper store prefetch, bigger SB/SQ,
wider coalescing, scouting and weak consistency all reduce epochs).  The
absolute value is meaningless; only the *ordering* across candidates is
used, and the pruning margin absorbs model error: a candidate is skipped
only when its predicted EPI is at least ``margin`` (default 30%) worse
than the incumbent's prediction.

The magnitudes are calibrated against this simulator's measured
single-knob sensitivities, and that calibration is what makes the margin
sound: only the scout on/off decision moves measured EPI by more than the
margin (scouting is worth ~30-40% on the commercial profiles), so only
that knob is allowed a predicted spread larger than ``1 + margin``.
Every other knob's predicted spread is kept well inside the margin, which
bounds the damage of interaction effects the separable model cannot see
(e.g. a small store buffer *helping* under scouting): whatever the true
optimum's mix of small-effect knobs, its prediction stays within the
margin of any same-scout-class incumbent, so it is never pruned — the
driver-level property test pins this on an exhaustive space.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from ..config import ConsistencyModel, CoreConfig, ScoutMode, StorePrefetchMode
from ..workloads import WorkloadProfile
from .space import Candidate

__all__ = ["TunePruner", "predicted_epi_per_1000"]

#: Scale on the whole epoch estimate per scout mode (hws2 also covers
#: SQ-full stalls, the paper's novel trigger — the largest discount).
#: Scouting on/off is the one knob whose measured effect (~30-40% on the
#: commercial profiles) exceeds the pruning margin; the spread *between*
#: scout modes is kept small because measurement ranks them within a few
#: percent of each other.
_SCOUT_SCALE = {
    ScoutMode.NONE: 1.0,
    ScoutMode.HWS0: 0.76,
    ScoutMode.HWS1: 0.74,
    ScoutMode.HWS2: 0.72,
}

#: Scale on the store-burst epoch term per store-prefetch mode (measured
#: sp0 -> sp1 is ~6% of total EPI; sp2 adds little on these profiles).
_PREFETCH_SCALE = {
    StorePrefetchMode.NONE: 1.0,
    StorePrefetchMode.AT_RETIRE: 0.82,
    StorePrefetchMode.AT_EXECUTE: 0.76,
}


def predicted_epi_per_1000(
    profile: WorkloadProfile, knobs: Mapping[str, Any],
) -> float:
    """Analytically predicted EPI/1000 insts for *knobs* on *profile*.

    Knobs not present in *knobs* take their :class:`CoreConfig` defaults,
    so partial candidates (a space over two knobs) predict sensibly.
    """
    # Imported here, not at module top: repro.fleet's package __init__
    # pulls in the coordinator, whose service imports lead back to
    # repro.tune (the protocol speaks TuneSpec) — a cycle at import time,
    # harmless at call time.
    from ..fleet.cost import epochs_per_inst

    defaults = CoreConfig()

    def knob(name: str) -> Any:
        return knobs.get(name, getattr(defaults, name))

    lock = profile.locks_per_1000 / 1000.0
    store = epochs_per_inst(profile) - lock

    # Exponents and caps below are deliberately gentle: measurement puts
    # each of these knobs at a few percent of total EPI, so their
    # predicted spread must stay well inside the pruning margin.
    store *= _PREFETCH_SCALE.get(knob("store_prefetch"), 1.0)
    sb = max(1, int(knob("store_buffer")))
    store *= min(1.25, (defaults.store_buffer / sb) ** 0.1)
    sq = max(1, int(knob("store_queue")))
    store *= min(1.15, (defaults.store_queue / sq) ** 0.05)
    cb = int(knob("coalesce_bytes"))
    if cb == 0:
        store *= 1.1
    else:
        store *= min(1.15, (defaults.coalesce_bytes / cb) ** 0.05)
    if bool(knob("perfect_stores")):
        store *= 0.6

    if knob("consistency") == ConsistencyModel.WC:
        lock *= 0.85
        store *= 0.95
    if bool(knob("sle")):
        lock *= 0.85
    if bool(knob("prefetch_past_serializing")):
        lock *= 0.9

    total = (lock + store) * _SCOUT_SCALE.get(knob("scout"), 1.0)
    rob = max(1, int(knob("rob")))
    total *= (defaults.rob / rob) ** 0.05
    window = max(1, int(knob("issue_window")))
    total *= (defaults.issue_window / window) ** 0.02
    return 1000.0 * total


class TunePruner:
    """Skips candidates predicted ≥ *margin* worse than the incumbent.

    ``should_prune`` never fires before an incumbent has been *measured*
    — the model alone is not trusted to reject anything.
    """

    def __init__(
        self, profile: WorkloadProfile, margin: float = 0.30,
    ) -> None:
        if margin < 0:
            raise ValueError(f"pruning margin must be >= 0, got {margin}")
        self.profile = profile
        self.margin = margin

    def predict(self, candidate: Candidate) -> float:
        return predicted_epi_per_1000(self.profile, dict(candidate))

    def should_prune(
        self, candidate: Candidate, incumbent: Optional[Candidate],
    ) -> bool:
        if incumbent is None:
            return False
        return self.predict(candidate) >= (
            (1.0 + self.margin) * self.predict(incumbent)
        )
