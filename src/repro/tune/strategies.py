"""The three search strategies behind one ``Tuner`` interface.

Tuners speak an ask/tell protocol: the driver calls :meth:`Tuner.ask` for
the next batch of candidates (one *generation*), evaluates them (engine,
cache, pruner — the tuner does not care how scores are produced) and
feeds the scores back with :meth:`Tuner.tell`.  All randomness flows from
one ``random.Random(seed)``, so a (strategy, space, seed) triple replays
the identical candidate sequence — the property the resume machinery and
the determinism tests rely on.

- :class:`GridTuner` — exhaustive enumeration in sweep grid order; an
  equal-budget prefix is exactly "the first N points of a sweep".
- :class:`RandomTuner` — uniform sampling without replacement.
- :class:`GeneticTuner` — a seeded population loop: tournament selection
  over scored candidates, uniform crossover on the knob dict, and
  per-knob mutation (a ±1 step along the ordered value list for integer
  sizing knobs, a reroll for enum/bool policy knobs).
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Tuple

from .space import Candidate, SearchSpace, canonical_candidate

__all__ = [
    "STRATEGIES",
    "GeneticTuner",
    "GridTuner",
    "RandomTuner",
    "Tuner",
    "make_tuner",
]

#: The registered strategy names, in documentation order.
STRATEGIES = ("grid", "random", "genetic")


class Tuner:
    """Base ask/tell search driver over a :class:`SearchSpace`."""

    name = "tuner"

    def __init__(self, space: SearchSpace, seed: int = 0) -> None:
        self.space = space
        self.rng = random.Random(seed)

    def ask(self, limit: int) -> List[Candidate]:
        """Up to *limit* candidates for the next generation."""
        raise NotImplementedError

    def tell(self, scored: Mapping[Candidate, float]) -> None:
        """Feed back scores (EPI/1000 insts, lower is better) for the
        candidates of the last :meth:`ask` batch."""

    @property
    def exhausted(self) -> bool:
        """True once the strategy has nothing new left to propose."""
        return False


class GridTuner(Tuner):
    """Deterministic enumeration of the whole space in grid order."""

    name = "grid"

    def __init__(self, space: SearchSpace, seed: int = 0) -> None:
        super().__init__(space, seed)
        self._points = space.grid()
        self._cursor = 0

    def ask(self, limit: int) -> List[Candidate]:
        batch = self._points[self._cursor:self._cursor + max(1, limit)]
        self._cursor += len(batch)
        return batch

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._points)


class RandomTuner(Tuner):
    """Uniform random search without replacement."""

    name = "random"

    def __init__(self, space: SearchSpace, seed: int = 0) -> None:
        super().__init__(space, seed)
        self._proposed: set = set()

    def ask(self, limit: int) -> List[Candidate]:
        out: List[Candidate] = []
        size = self.space.size()
        while len(out) < max(1, limit) and len(self._proposed) < size:
            candidate = self.space.sample(self.rng)
            if candidate in self._proposed:
                continue
            self._proposed.add(candidate)
            out.append(candidate)
        return out

    @property
    def exhausted(self) -> bool:
        return len(self._proposed) >= self.space.size()


class GeneticTuner(Tuner):
    """Seeded genetic search: tournament selection, crossover, mutation.

    Generation zero is the near-default candidate plus random valid
    samples.  Later generations carry over the *elites* best scored
    candidates (the driver serves their scores from cache — elitism costs
    no re-evaluation) and breed the rest: two tournament-selected parents,
    uniform per-knob crossover, then per-knob mutation with probability
    *mutation_rate* — integer sizing knobs step to a neighbouring allowed
    value (the per-knob mutation range), policy knobs reroll.
    """

    name = "genetic"

    def __init__(
        self,
        space: SearchSpace,
        seed: int = 0,
        *,
        population: int = 8,
        tournament: int = 3,
        elites: int = 1,
        mutation_rate: float = 0.25,
    ) -> None:
        super().__init__(space, seed)
        self.population = max(2, population)
        self.tournament = max(2, tournament)
        self.elites = max(0, elites)
        self.mutation_rate = mutation_rate
        self._pool: List[Tuple[Candidate, float]] = []

    def ask(self, limit: int) -> List[Candidate]:
        want = max(1, min(self.population, limit))
        if not self._pool:
            return self._initial(want)
        out: List[Candidate] = []
        # repr() tie-break: candidates hold enums, which are not orderable.
        ranked = sorted(
            self._pool, key=lambda scored: (scored[1], repr(scored[0]))
        )
        for candidate, _ in ranked[:self.elites]:
            if candidate not in out and len(out) < want:
                out.append(candidate)
        attempts = 0
        while len(out) < want and attempts < 64 * want:
            attempts += 1
            child = self._mutate(
                self._crossover(self._select(), self._select())
            )
            if child in out or not self.space.is_valid(child):
                continue
            out.append(child)
        while len(out) < want:
            out.append(self._valid_sample())
        return out

    def tell(self, scored: Mapping[Candidate, float]) -> None:
        for candidate, epi in scored.items():
            self._pool.append((candidate, float(epi)))
        # Selection pressure comes from tournaments; keeping the pool to
        # the last few generations stops ancient scores dominating.
        self._pool = self._pool[-4 * self.population:]

    # -- operators ---------------------------------------------------------

    def _initial(self, want: int) -> List[Candidate]:
        out = [self.space.default_candidate()]
        attempts = 0
        while len(out) < want and attempts < 64 * want:
            attempts += 1
            candidate = self._valid_sample()
            if candidate not in out:
                out.append(candidate)
        return out[:want]

    def _valid_sample(self) -> Candidate:
        for _ in range(64):
            candidate = self.space.sample(self.rng)
            if self.space.is_valid(candidate):
                return candidate
        return self.space.default_candidate()

    def _select(self) -> Candidate:
        entrants = [
            self._pool[self.rng.randrange(len(self._pool))]
            for _ in range(min(self.tournament, len(self._pool)))
        ]
        return min(entrants, key=lambda scored: scored[1])[0]

    def _crossover(self, a: Candidate, b: Candidate) -> Candidate:
        left, right = dict(a), dict(b)
        return canonical_candidate({
            name: (left if self.rng.random() < 0.5 else right)[name]
            for name in left
        })

    def _mutate(self, candidate: Candidate) -> Candidate:
        knobs: Dict[str, object] = {}
        for name, value in candidate:
            values = self.space.values(name)
            if len(values) > 1 and self.rng.random() < self.mutation_rate:
                if self.space.is_ordered(name):
                    index = values.index(value) + self.rng.choice((-1, 1))
                    value = values[max(0, min(len(values) - 1, index))]
                else:
                    value = self.rng.choice(
                        [v for v in values if v != value]
                    )
            knobs[name] = value
        return canonical_candidate(knobs)


def make_tuner(
    strategy: str,
    space: SearchSpace,
    seed: int = 0,
    *,
    budget: "int | None" = None,
) -> Tuner:
    """Instantiate the named strategy; unknown names list the valid set.

    *budget* (total evaluations the driver will afford) sizes the genetic
    population so small budgets still get several generations of
    selection pressure instead of one big initial sample.
    """
    if strategy == "grid":
        return GridTuner(space, seed)
    if strategy == "random":
        return RandomTuner(space, seed)
    if strategy == "genetic":
        if budget is not None:
            return GeneticTuner(
                space, seed, population=min(8, max(3, budget // 2)),
            )
        return GeneticTuner(space, seed)
    raise ValueError(
        f"unknown tune strategy {strategy!r}; valid strategies: "
        f"{', '.join(STRATEGIES)}"
    )
