"""The tuning loop: generations of ask → dedup → prune → evaluate → tell.

:func:`run_tune` drives one :class:`TuneSpec` to a :class:`TuneResult`.
Per generation it asks the strategy for candidates, then filters them in
cost order before any simulation runs:

1. **invalid** — combinations :class:`CoreConfig` rejects (grid spaces
   can contain ``rob < issue_window`` points) are skipped outright;
2. **dedup** — candidates already scored this run, or whose evaluation
   artifact exists in the shared :class:`ArtifactCache` (``tune-eval``
   kind, keyed by workload/variant/candidate/settings — strategy-blind,
   so a genetic run reuses a grid run's measurements), are served from
   cache and counted in ``tune_candidates_deduped_total``;
3. **resume** — candidates present in the persisted
   :class:`~repro.tune.state.TuneStateStore` record are served from the
   checkpoint (a killed run re-evaluates nothing it completed);
4. **prune** — the ECM-style :class:`~repro.tune.pruner.TunePruner`
   skips candidates predicted ≥ margin worse than the measured
   incumbent, feeding the strategy a prediction rescaled onto the
   measured-EPI scale so selection still learns the region is bad.

Survivors run as one :class:`EngineRunner` batch — the tuner population
exercises the same parallel/lockstep engine paths as a sweep — under a
``tune_generation`` tracer span, and the state record is re-persisted
after every generation.  Only *measured* candidates consume budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..engine.cache import ArtifactCache, content_key, resolve_cache_dir
from ..engine.runner import EngineRunner, JobSpec
from ..engine import serialize
from ..harness.experiment import ExperimentSettings
from ..obs.options import ObsOptions
from ..workloads import WORKLOADS
from .pruner import TunePruner
from .space import Candidate, SearchSpace, canonical_candidate
from .state import TuneStateStore
from .strategies import STRATEGIES, make_tuner

__all__ = [
    "TuneObservation",
    "TuneResult",
    "TuneSpec",
    "TuneTelemetry",
    "run_tune",
]

#: ArtifactCache kind for per-candidate measured-EPI artifacts.
EVAL_KIND = "tune-eval"

#: Generations with zero new measurements before the loop gives up —
#: stops a tiny space from spinning forever under a large budget.
_MAX_STALL_GENERATIONS = 3


@dataclass(frozen=True)
class TuneSpec:
    """A serializable tuning request — the wire form of ``mlpsim tune``.

    The same role :class:`~repro.harness.sweeps.SweepSpec` plays for
    sweeps: hashable, content-tokenizable (the resume token hashes it)
    and round-trippable through the service protocol.
    """

    workload: str
    space: SearchSpace
    variant: str = "pc"
    strategy: str = "genetic"
    budget: int = 16
    seed: int = 0
    backend: str = ""
    #: SMT hardware contexts every evaluation runs with (1 = classic
    #: single-context tuning; >1 tunes the aggregate SMT metric).
    contexts: int = 1
    #: SMT scheduling policy ("" = the default) — only meaningful with
    #: ``contexts > 1``.
    scheduler: str = ""

    def __post_init__(self) -> None:
        if not self.workload:
            raise ValueError("a tune spec needs a workload")
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown tune strategy {self.strategy!r}; valid "
                f"strategies: {', '.join(STRATEGIES)}"
            )
        if self.budget < 1:
            raise ValueError(
                f"tune budget must be >= 1 evaluation, got {self.budget}"
            )
        if self.contexts < 1:
            raise ValueError(
                f"tune contexts must be >= 1, got {self.contexts}"
            )
        if self.scheduler:
            from ..smt.schedulers import resolve_scheduler

            resolve_scheduler(self.scheduler)

    @classmethod
    def build(
        cls,
        workload: str,
        space: Union[SearchSpace, Mapping[str, Any]],
        *,
        variant: str = "pc",
        strategy: str = "genetic",
        budget: int = 16,
        seed: int = 0,
        backend: str = "",
        contexts: int = 1,
        scheduler: str = "",
    ) -> "TuneSpec":
        """The ergonomic constructor: accepts a mapping of axis values
        (coerced like sweep axes) in place of a built space."""
        if not isinstance(space, SearchSpace):
            space = SearchSpace.build(space)
        return cls(
            workload=workload, space=space, variant=variant,
            strategy=strategy, budget=budget, seed=seed, backend=backend,
            contexts=contexts, scheduler=scheduler,
        )

    def describe(self) -> str:
        return (
            f"tune:{self.workload}/{self.variant} {self.strategy} "
            f"budget={self.budget} seed={self.seed}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return serialize.to_jsonable(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TuneSpec":
        spec = serialize.from_jsonable(data)
        if not isinstance(spec, cls):
            raise serialize.SerializeError(
                f"expected a TuneSpec payload, decoded "
                f"{type(spec).__name__}"
            )
        return spec


@dataclass(frozen=True)
class TuneObservation:
    """One scored candidate: where the score came from and when."""

    candidate: Candidate
    epi_per_1000: float
    generation: int
    source: str  # "measured" | "cache" | "resumed"

    @property
    def knobs(self) -> Dict[str, Any]:
        return dict(self.candidate)


@dataclass(frozen=True)
class TuneResult:
    """The outcome of one tuning run."""

    spec: TuneSpec
    settings: ExperimentSettings
    best: Candidate
    best_epi_per_1000: float
    history: Tuple[TuneObservation, ...]
    evaluations: int
    deduped: int
    pruned: int
    resumed: int
    invalid: int
    generations: int
    wall_time: float
    token: str

    @property
    def best_knobs(self) -> Dict[str, Any]:
        return dict(self.best)

    def summary(self) -> str:
        knobs = " ".join(
            f"{name}={getattr(value, 'value', value)}"
            for name, value in self.best
        )
        return (
            f"{self.spec.describe()}: best {self.best_epi_per_1000:.3f} "
            f"EPI/1000 [{knobs}] after {self.evaluations} evaluations "
            f"({self.deduped} deduped, {self.pruned} pruned, "
            f"{self.resumed} resumed) in {self.generations} generations"
        )

    def to_dict(self) -> Dict[str, Any]:
        return serialize.to_jsonable(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TuneResult":
        result = serialize.from_jsonable(data)
        if not isinstance(result, cls):
            raise serialize.SerializeError(
                f"expected a TuneResult payload, decoded "
                f"{type(result).__name__}"
            )
        return result


class TuneTelemetry:
    """Counters a tuning driver reports, shaped for ``/metrics`` gauges."""

    def __init__(self) -> None:
        self.runs = 0
        self.generations = 0
        self.proposed = 0
        self.evaluated = 0
        self.deduped = 0
        self.pruned = 0
        self.resumed = 0
        self.best_epi_per_1000 = 0.0

    def note_result(self, result: TuneResult) -> None:
        self.runs += 1
        self.generations += result.generations
        self.proposed += len(result.history) + result.pruned + result.invalid
        self.evaluated += result.evaluations
        self.deduped += result.deduped
        self.pruned += result.pruned
        self.resumed += result.resumed
        self.best_epi_per_1000 = result.best_epi_per_1000

    def register_metrics(self, registry: Any) -> None:
        """Expose the counters on a
        :class:`repro.obs.metrics.MetricsRegistry`."""
        registry.gauge(
            "tune_runs_total", lambda: self.runs,
            help="tuning runs completed",
        )
        registry.gauge(
            "tune_generations_total", lambda: self.generations,
            help="tuning generations executed",
        )
        registry.gauge(
            "tune_candidates_evaluated_total", lambda: self.evaluated,
            help="candidates measured by simulation (budget consumed)",
        )
        registry.gauge(
            "tune_candidates_deduped_total", lambda: self.deduped,
            help="candidates served from the artifact cache / this run",
        )
        registry.gauge(
            "tune_candidates_pruned_total", lambda: self.pruned,
            help="candidates skipped by the analytical pruner",
        )
        registry.gauge(
            "tune_candidates_resumed_total", lambda: self.resumed,
            help="candidates served from a resumed tuning checkpoint",
        )
        registry.gauge(
            "tune_best_epi_per_1000", lambda: self.best_epi_per_1000,
            help="EPI/1000 insts of the last completed run's winner",
        )


def _eval_token(
    spec: TuneSpec, settings: ExperimentSettings, candidate: Candidate,
) -> str:
    """Key for one candidate's measured EPI.

    Strategy, budget, seed and backend are deliberately excluded:
    backends are bit-identical and strategies measure the same quantity,
    so any tuning run over the same workload/variant/settings shares
    every other run's measurements.
    """
    return content_key(
        EVAL_KIND, spec.workload, spec.variant, candidate, settings,
    )


def _job_for(
    spec: TuneSpec, candidate: Candidate, generation: int,
) -> JobSpec:
    knobs = " ".join(
        f"{name}={getattr(value, 'value', value)}"
        for name, value in candidate
    )
    return JobSpec(
        workload=spec.workload,
        variant=spec.variant,
        core_changes=candidate,
        backend=spec.backend,
        contexts=spec.contexts,
        scheduler=spec.scheduler,
        label=f"tune[{spec.strategy} g{generation}] {knobs}",
    )


def run_tune(
    spec: TuneSpec,
    *,
    settings: Optional[ExperimentSettings] = None,
    cache_dir: Any = "auto",
    workers: Optional[int] = None,
    runner: Optional[EngineRunner] = None,
    cache: Optional[ArtifactCache] = None,
    obs: Optional[ObsOptions] = None,
    margin: float = 0.30,
    resume: bool = True,
    telemetry: Optional[TuneTelemetry] = None,
) -> TuneResult:
    """Execute *spec* and return the :class:`TuneResult`.

    Pass *runner* to evaluate through an existing engine (the service
    does; its settings win), *cache* to share an existing artifact cache
    for state/dedup (defaults to one over the runner's directory).
    ``resume=False`` ignores persisted state (the checkpoint record is
    still written, so a later run can resume this one).
    """
    if runner is None:
        runner = EngineRunner(
            settings=settings or ExperimentSettings(),
            cache_dir=cache_dir,
            workers=workers,
            obs=obs,
        )
    settings = runner.settings
    if cache is None:
        directory = resolve_cache_dir(runner.cache_dir)
        cache = ArtifactCache(directory) if directory is not None else None

    tuner = make_tuner(
        spec.strategy, spec.space, spec.seed, budget=spec.budget,
    )
    store = TuneStateStore(cache) if cache is not None else None
    token = store.token(spec, settings) if store is not None else ""
    known = store.load(spec, settings) if (store and resume) else {}
    profile = WORKLOADS.get(spec.workload)
    pruner = TunePruner(profile, margin=margin) if profile else None
    tracer = obs.open_tracer() if obs and obs.trace_dir else None

    seen: Dict[Candidate, float] = {}
    history: List[TuneObservation] = []
    evaluations = deduped = pruned = resumed = invalid = 0
    generations = 0
    best: Optional[Candidate] = None
    stall = 0
    started = time.monotonic()
    try:
        # Resumed candidates count against the budget: the interrupted
        # attempt already paid for them, and a finished run must resume
        # to the identical result instead of exploring further.
        while (
            evaluations + resumed < spec.budget
            and not tuner.exhausted
            and stall < _MAX_STALL_GENERATIONS
        ):
            batch = tuner.ask(spec.budget - evaluations - resumed)
            if not batch:
                break
            scored: Dict[Candidate, float] = {}
            to_measure: List[Candidate] = []
            for raw in batch:
                candidate = canonical_candidate(raw)
                if candidate in scored or candidate in to_measure:
                    deduped += 1
                    continue
                if not spec.space.is_valid(candidate):
                    invalid += 1
                    continue
                if candidate in seen:
                    deduped += 1
                    scored[candidate] = seen[candidate]
                    continue
                if candidate in known:
                    resumed += 1
                    seen[candidate] = scored[candidate] = known[candidate]
                    history.append(TuneObservation(
                        candidate, known[candidate], generations, "resumed",
                    ))
                    continue
                if cache is not None:
                    hit = cache.get(
                        EVAL_KIND, _eval_token(spec, settings, candidate),
                    )
                    if hit is not None:
                        deduped += 1
                        seen[candidate] = scored[candidate] = hit
                        history.append(TuneObservation(
                            candidate, hit, generations, "cache",
                        ))
                        continue
                if (
                    pruner is not None
                    and best is not None
                    and pruner.should_prune(candidate, best)
                ):
                    pruned += 1
                    # Rescale the prediction onto the measured scale so
                    # the strategy's selection still sees "bad here".
                    predicted = pruner.predict(candidate)
                    anchor = pruner.predict(best) or 1.0
                    scored[candidate] = seen[best] * (predicted / anchor)
                    continue
                to_measure.append(candidate)

            measured_now = 0
            if to_measure:
                span = (
                    tracer.span(
                        "tune_generation",
                        generation=generations,
                        strategy=spec.strategy,
                        workload=spec.workload,
                        candidates=len(to_measure),
                    ) if tracer is not None else None
                )
                try:
                    jobs = [
                        _job_for(spec, candidate, generations)
                        for candidate in to_measure
                    ]
                    report = runner.run(jobs)
                    report.raise_on_failure()
                finally:
                    if span is not None:
                        span.__exit__(None, None, None)
                for candidate, job in zip(to_measure, report.jobs):
                    epi = job.result.epi_per_1000
                    seen[candidate] = scored[candidate] = epi
                    evaluations += 1
                    measured_now += 1
                    history.append(TuneObservation(
                        candidate, epi, generations, "measured",
                    ))
                    if cache is not None:
                        cache.put(
                            EVAL_KIND,
                            _eval_token(spec, settings, candidate),
                            epi,
                        )
                if store is not None:
                    store.save(spec, settings, seen)
            if seen:
                best = min(seen, key=seen.get)  # type: ignore[arg-type]
            tuner.tell(scored)
            generations += 1
            stall = 0 if measured_now else stall + 1
    finally:
        if tracer is not None:
            tracer.close()

    if best is None:
        raise ValueError(
            f"{spec.describe()} evaluated no candidates "
            f"(space size {spec.space.size()}, all points invalid?)"
        )
    result = TuneResult(
        spec=spec,
        settings=settings,
        best=best,
        best_epi_per_1000=seen[best],
        history=tuple(history),
        evaluations=evaluations,
        deduped=deduped,
        pruned=pruned,
        resumed=resumed,
        invalid=invalid,
        generations=generations,
        wall_time=time.monotonic() - started,
        token=token,
    )
    if telemetry is not None:
        telemetry.note_result(result)
    return result


serialize.register(TuneSpec, TuneObservation, TuneResult)
