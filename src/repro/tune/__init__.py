"""Design-space autotuning over the microarchitecture knobs.

``repro.tune`` searches the SB/SQ/SMAC/scout/coalescing/consistency design
space for the configuration minimizing epochs-per-instruction on a
workload profile, instead of exhaustively sweeping it:

    from repro import api

    result = api.tune(
        {"store_queue": [16, 32, 64], "store_prefetch": ["sp0", "sp1", "sp2"]},
        profile="database", strategy="genetic", budget=12, seed=7,
    )
    print(result.best_knobs, result.best_epi_per_1000)

Pieces (all importable from here):

- :class:`SearchSpace` / :data:`Candidate` — typed parameter ranges
  validated against the sweep axes (:mod:`repro.harness.sweeps`);
- :class:`Tuner` + :class:`GridTuner` / :class:`RandomTuner` /
  :class:`GeneticTuner` — seeded ask/tell strategies;
- :class:`TunePruner` — ECM-style analytical pruning shared with
  :mod:`repro.fleet.cost`;
- :class:`TuneStateStore` — resumable population checkpoints under
  PR 5-style content tokens;
- :func:`run_tune` / :class:`TuneSpec` / :class:`TuneResult` — the
  generation loop and its wire forms.

Entry points: :func:`repro.api.tune`, the ``mlpsim tune`` CLI command and
the service ``tune`` job kind all route here.
"""

from .driver import (
    TuneObservation,
    TuneResult,
    TuneSpec,
    TuneTelemetry,
    run_tune,
)
from .pruner import TunePruner, predicted_epi_per_1000
from .space import Candidate, SearchSpace, canonical_candidate
from .state import TuneState, TuneStateStore
from .strategies import (
    STRATEGIES,
    GeneticTuner,
    GridTuner,
    RandomTuner,
    Tuner,
    make_tuner,
)

__all__ = [
    "STRATEGIES",
    "Candidate",
    "GeneticTuner",
    "GridTuner",
    "RandomTuner",
    "SearchSpace",
    "TunePruner",
    "TuneObservation",
    "TuneResult",
    "TuneSpec",
    "TuneState",
    "TuneStateStore",
    "TuneTelemetry",
    "Tuner",
    "canonical_candidate",
    "make_tuner",
    "predicted_epi_per_1000",
    "run_tune",
]
