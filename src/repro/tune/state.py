"""Resumable tuning state: the PR 5 token machinery applied to populations.

A tuning run persists its evaluated ``candidate -> EPI`` map to the shared
:class:`~repro.engine.cache.ArtifactCache` after every generation, under a
*state token* that is the content hash of (spec, settings) — exactly the
checkpoint-token convention of :mod:`repro.shard.checkpoint`.  A killed
run relaunched with the same spec/settings/cache finds the record and
replays the (deterministic, seeded) strategy, serving already-measured
candidates from the record instead of the engine — no completed candidate
is re-evaluated.

Integrity mirrors :class:`~repro.shard.checkpoint.CheckpointRecord`: the
record carries a SHA-256 digest of the canonical wire encoding of its
evaluations.  A record that fails verification is discarded and tuning
restarts clean — stale or tampered state is never resumed into a wrong
winner.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, TYPE_CHECKING

from ..engine import serialize
from ..engine.cache import ArtifactCache, content_key, stable_token
from ..errors import CheckpointCorruptError
from .space import Candidate

if TYPE_CHECKING:
    from ..harness.experiment import ExperimentSettings
    from .driver import TuneSpec

__all__ = ["TUNE_STATE_VERSION", "TuneState", "TuneStateStore"]

#: Tune state record schema version.
TUNE_STATE_VERSION = 1


def _evaluations_digest(
    evaluated: Tuple[Tuple[Candidate, float], ...],
) -> str:
    payload = json.dumps(
        serialize.to_jsonable(evaluated), sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class TuneState:
    """One persisted tuning population: evaluations + integrity digest."""

    version: int
    spec: "TuneSpec"
    settings: "ExperimentSettings"
    evaluated: Tuple[Tuple[Candidate, float], ...]
    digest: str

    def verify(self) -> Tuple[Tuple[Candidate, float], ...]:
        """The evaluations, after recomputing and checking the digest."""
        if self.version != TUNE_STATE_VERSION:
            raise CheckpointCorruptError(
                f"tune state version {self.version} != {TUNE_STATE_VERSION}"
            )
        actual = _evaluations_digest(self.evaluated)
        if actual != self.digest:
            raise CheckpointCorruptError(
                f"tune state digest mismatch (stored {self.digest[:12]}..., "
                f"recomputed {actual[:12]}...); discarding state"
            )
        return self.evaluated


class TuneStateStore:
    """Tuning-state persistence over the shared artifact cache."""

    KIND = "tune-state"

    def __init__(self, cache: ArtifactCache) -> None:
        self.cache = cache

    @staticmethod
    def token(spec: "TuneSpec", settings: "ExperimentSettings") -> str:
        """The resume token: content hash of the work the state is for."""
        return content_key("tune-state", spec, settings)

    def save(
        self,
        spec: "TuneSpec",
        settings: "ExperimentSettings",
        evaluated: Dict[Candidate, float],
    ) -> str:
        """Persist the evaluation map (replacing any older state);
        returns the resume token."""
        items = tuple(sorted(
            evaluated.items(), key=lambda pair: stable_token(pair[0]),
        ))
        state = TuneState(
            version=TUNE_STATE_VERSION,
            spec=spec,
            settings=settings,
            evaluated=items,
            digest=_evaluations_digest(items),
        )
        token = self.token(spec, settings)
        self.cache.put(self.KIND, token, state)
        return token

    def load_record(self, token: str) -> Optional[TuneState]:
        """The stored record for *token*, unverified; ``None`` if absent."""
        state = self.cache.get(self.KIND, token)
        if state is None:
            return None
        if not isinstance(state, TuneState):
            raise CheckpointCorruptError(
                f"tune state entry {token[:12]}... holds a "
                f"{type(state).__name__}, not a TuneState"
            )
        return state

    def load(
        self, spec: "TuneSpec", settings: "ExperimentSettings",
    ) -> Dict[Candidate, float]:
        """The verified evaluation map for (spec, settings).

        Empty on absence *and* on corruption — a bad record is discarded
        and tuning restarts clean rather than failing the run.
        """
        token = self.token(spec, settings)
        try:
            state = self.load_record(token)
        except CheckpointCorruptError:
            self.discard(spec, settings)
            return {}
        if state is None:
            return {}
        try:
            return dict(state.verify())
        except CheckpointCorruptError:
            self.discard(spec, settings)
            return {}

    def discard(
        self, spec: "TuneSpec", settings: "ExperimentSettings",
    ) -> None:
        """Drop the state for (spec, settings) from both cache tiers."""
        token = self.token(spec, settings)
        self.cache._memory.pop((self.KIND, token), None)
        if self.cache.directory is not None:
            try:
                self.cache._path(self.KIND, token).unlink()
            except OSError:
                pass


serialize.register(TuneState)
