"""Binary trace serialization.

Format ``MLPT`` version 1: a 16-byte header followed by fixed 32-byte
records.

Header::

    magic   4s   b"MLPT"
    version u16  1
    pad     u16
    count   u64  number of records

Record::

    kind    u8   InstructionClass ordinal
    flags   u8   bit0 taken, bit1 lock_acquire, bit2 lock_release
    size    u8   access size in bytes
    dest    i8   destination register (-1 = none)
    srcs    3*i8 source registers (-1 = unused slot)
    nsrcs   u8   number of valid source slots
    pc      u64
    address u64
    target  u64

Traces with more than three source registers per instruction cannot be
serialized losslessly; the writer raises :class:`TraceError` rather than
silently truncating dependences.
"""

from __future__ import annotations

import struct
from collections.abc import Iterable
from os import PathLike
from typing import BinaryIO, Union

from ..errors import TraceError
from ..isa import Instruction
from ..isa.opcodes import InstructionClass

MAGIC = b"MLPT"
VERSION = 1
HEADER = struct.Struct("<4sHHQ")
RECORD = struct.Struct("<BBBb3bBQQQ")

_FLAG_TAKEN = 1
_FLAG_ACQUIRE = 2
_FLAG_RELEASE = 4

#: Stable ordinal for each instruction class (do not reorder: on-disk format).
KIND_TO_ORDINAL = {kind: i for i, kind in enumerate(InstructionClass)}
ORDINAL_TO_KIND = {i: kind for kind, i in KIND_TO_ORDINAL.items()}


def _pack(inst: Instruction) -> bytes:
    srcs = inst.srcs
    if len(srcs) > 3:
        raise TraceError(
            f"cannot serialize instruction with {len(srcs)} sources (max 3)"
        )
    padded = tuple(srcs) + (-1,) * (3 - len(srcs))
    flags = (
        (_FLAG_TAKEN if inst.taken else 0)
        | (_FLAG_ACQUIRE if inst.lock_acquire else 0)
        | (_FLAG_RELEASE if inst.lock_release else 0)
    )
    return RECORD.pack(
        KIND_TO_ORDINAL[inst.kind],
        flags,
        inst.size,
        inst.dest,
        *padded,
        len(srcs),
        inst.pc,
        inst.address,
        inst.target,
    )


def write_trace(stream: BinaryIO, trace: Iterable[Instruction]) -> int:
    """Write *trace* to a seekable binary stream; return the record count."""
    start = stream.tell()
    stream.write(HEADER.pack(MAGIC, VERSION, 0, 0))
    count = 0
    for inst in trace:
        stream.write(_pack(inst))
        count += 1
    end = stream.tell()
    stream.seek(start)
    stream.write(HEADER.pack(MAGIC, VERSION, 0, count))
    stream.seek(end)
    return count


def write_trace_file(
    path: Union[str, PathLike], trace: Iterable[Instruction]
) -> int:
    """Write *trace* to *path*; return the record count."""
    with open(path, "wb") as stream:
        return write_trace(stream, trace)
