"""Trace streams, serialization and statistics.

A *trace* is any iterable of :class:`~repro.isa.Instruction`.  This package
provides binary persistence (:mod:`~repro.trace.reader` /
:mod:`~repro.trace.writer`), composable stream utilities
(:mod:`~repro.trace.stream`), whole-trace statistics used for the paper's
Table 1 (:mod:`~repro.trace.stats`) and generic instruction-level rewriting
(:mod:`~repro.trace.transform`).
"""

from .reader import read_trace, read_trace_file
from .stats import InstructionMix, TraceStatistics, collect_statistics
from .stream import take, materialize, split_warmup
from .transform import map_trace, replace_subsequences
from .writer import write_trace, write_trace_file

__all__ = [
    "InstructionMix",
    "TraceStatistics",
    "collect_statistics",
    "map_trace",
    "materialize",
    "read_trace",
    "read_trace_file",
    "replace_subsequences",
    "split_warmup",
    "take",
    "write_trace",
    "write_trace_file",
]
