"""Whole-trace instruction-mix statistics.

These drive the reproduction of the paper's Table 1 (store frequency) and
feed the workload calibration loop.  Cache miss rates require a memory
hierarchy and live in :mod:`repro.harness.tables`, which combines this
module with :mod:`repro.memory`.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass

from ..isa import Instruction, InstructionClass
from ..isa.opcodes import is_control, is_load_like, is_store_like


@dataclass(frozen=True)
class InstructionMix:
    """Counts of dynamic instruction behaviour in a trace window."""

    total: int
    loads: int
    stores: int
    branches: int
    atomics: int
    barriers: int
    lock_acquires: int
    lock_releases: int

    def per_100(self, count: int) -> float:
        """Express *count* per 100 instructions (the paper's Table 1 unit)."""
        if self.total == 0:
            return 0.0
        return 100.0 * count / self.total

    @property
    def store_frequency(self) -> float:
        """Stores per 100 instructions (Table 1 row 1)."""
        return self.per_100(self.stores)

    @property
    def load_frequency(self) -> float:
        """Loads per 100 instructions."""
        return self.per_100(self.loads)


@dataclass(frozen=True)
class TraceStatistics:
    """Instruction mix plus per-class dynamic counts."""

    mix: InstructionMix
    kind_counts: dict[InstructionClass, int]

    @property
    def total(self) -> int:
        return self.mix.total


def collect_statistics(trace: Iterable[Instruction]) -> TraceStatistics:
    """Scan *trace* once and summarize its instruction mix."""
    kind_counts: Counter[InstructionClass] = Counter()
    loads = stores = branches = atomics = barriers = 0
    acquires = releases = 0
    total = 0
    for inst in trace:
        total += 1
        kind_counts[inst.kind] += 1
        if is_load_like(inst.kind):
            loads += 1
        if is_store_like(inst.kind):
            stores += 1
        if is_control(inst.kind):
            branches += 1
        if inst.kind in (InstructionClass.CAS, InstructionClass.STORE_COND,
                         InstructionClass.LOAD_LOCKED):
            atomics += 1
        if inst.kind in (InstructionClass.MEMBAR, InstructionClass.ISYNC,
                         InstructionClass.LWSYNC):
            barriers += 1
        if inst.lock_acquire:
            acquires += 1
        if inst.lock_release:
            releases += 1
    mix = InstructionMix(
        total=total,
        loads=loads,
        stores=stores,
        branches=branches,
        atomics=atomics,
        barriers=barriers,
        lock_acquires=acquires,
        lock_releases=releases,
    )
    return TraceStatistics(mix=mix, kind_counts=dict(kind_counts))
