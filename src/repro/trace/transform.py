"""Generic trace rewriting.

The lock rewriter (PC -> WC lock idioms) and Speculative Lock Elision are
expressed as *subsequence replacements*: a matcher recognizes a run of
instructions and a builder emits its replacement.  This module provides the
replacement engine; the domain-specific matchers live in :mod:`repro.locks`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import List, Optional

from ..isa import Instruction

#: A matcher inspects the stream starting at ``window[0]`` and returns the
#: number of instructions it consumes (0 = no match).
Matcher = Callable[[Sequence[Instruction]], int]

#: A builder maps the matched run to its replacement instructions.
Builder = Callable[[Sequence[Instruction]], Sequence[Instruction]]


def map_trace(
    trace: Iterable[Instruction],
    transform: Callable[[Instruction], Optional[Instruction]],
) -> Iterator[Instruction]:
    """Apply a per-instruction transform; ``None`` drops the instruction."""
    for inst in trace:
        result = transform(inst)
        if result is not None:
            yield result


def replace_subsequences(
    trace: Sequence[Instruction],
    matcher: Matcher,
    builder: Builder,
    lookahead: int = 64,
) -> List[Instruction]:
    """Replace every run recognised by *matcher* with *builder*'s output.

    The matcher sees a window of at most *lookahead* upcoming instructions.
    Matches never overlap: scanning resumes after the consumed run.
    """
    if lookahead <= 0:
        raise ValueError("lookahead must be positive")
    out: List[Instruction] = []
    i = 0
    n = len(trace)
    while i < n:
        window = trace[i : i + lookahead]
        consumed = matcher(window)
        if consumed < 0 or consumed > len(window):
            raise ValueError(
                f"matcher returned invalid consumption {consumed} at index {i}"
            )
        if consumed:
            out.extend(builder(window[:consumed]))
            i += consumed
        else:
            out.append(trace[i])
            i += 1
    return out
