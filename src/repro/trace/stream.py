"""Composable utilities over instruction streams."""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator
from typing import List, Tuple

from ..isa import Instruction


def take(trace: Iterable[Instruction], count: int) -> Iterator[Instruction]:
    """Yield at most *count* instructions from *trace*."""
    return itertools.islice(trace, count)


def materialize(trace: Iterable[Instruction]) -> List[Instruction]:
    """Realize a stream into a list (the simulator's preferred input form)."""
    if isinstance(trace, list):
        return trace
    return list(trace)


def split_warmup(
    trace: Iterable[Instruction], warmup: int, measure: int
) -> Tuple[List[Instruction], List[Instruction]]:
    """Split a stream into (warmup, measurement) windows.

    Mirrors the paper's methodology: the first ``warmup`` instructions prime
    the caches and predictors, the next ``measure`` instructions are where
    statistics are collected.  Raises nothing if the stream is shorter than
    requested; callers check lengths when exactness matters.
    """
    if warmup < 0 or measure <= 0:
        raise ValueError("warmup must be >= 0 and measure > 0")
    iterator = iter(trace)
    head = list(itertools.islice(iterator, warmup))
    body = list(itertools.islice(iterator, measure))
    return head, body


def concatenate(*traces: Iterable[Instruction]) -> Iterator[Instruction]:
    """Chain several traces into one stream."""
    return itertools.chain(*traces)


def interleave(
    traces: Iterable[Iterable[Instruction]], quantum: int = 1
) -> Iterator[Instruction]:
    """Round-robin interleave several per-core traces.

    Used to approximate multi-core L2 contention: instructions are drawn
    ``quantum`` at a time from each trace in turn until every trace is
    exhausted.
    """
    if quantum <= 0:
        raise ValueError("quantum must be positive")
    iterators = [iter(t) for t in traces]
    while iterators:
        exhausted: list[Iterator[Instruction]] = []
        for iterator in iterators:
            chunk = list(itertools.islice(iterator, quantum))
            if not chunk:
                exhausted.append(iterator)
                continue
            yield from chunk
            if len(chunk) < quantum:
                exhausted.append(iterator)
        for iterator in exhausted:
            iterators.remove(iterator)
