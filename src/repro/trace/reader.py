"""Binary trace deserialization (see :mod:`~repro.trace.writer` for the format)."""

from __future__ import annotations

from collections.abc import Iterator
from os import PathLike
from typing import BinaryIO, Union

from ..errors import TraceFormatError
from ..isa import Instruction
from .writer import HEADER, MAGIC, ORDINAL_TO_KIND, RECORD, VERSION

_FLAG_TAKEN = 1
_FLAG_ACQUIRE = 2
_FLAG_RELEASE = 4


def _read_header(stream: BinaryIO) -> int:
    raw = stream.read(HEADER.size)
    if len(raw) != HEADER.size:
        raise TraceFormatError("truncated trace header")
    magic, version, _, count = HEADER.unpack(raw)
    if magic != MAGIC:
        raise TraceFormatError(f"bad magic {magic!r}, expected {MAGIC!r}")
    if version != VERSION:
        raise TraceFormatError(f"unsupported trace version {version}")
    return count


def read_trace(stream: BinaryIO) -> Iterator[Instruction]:
    """Yield instructions from a binary stream, validating the header."""
    count = _read_header(stream)
    for index in range(count):
        raw = stream.read(RECORD.size)
        if len(raw) != RECORD.size:
            raise TraceFormatError(
                f"trace truncated at record {index} of {count}"
            )
        (kind_ord, flags, size, dest, s0, s1, s2, nsrcs,
         pc, address, target) = RECORD.unpack(raw)
        try:
            kind = ORDINAL_TO_KIND[kind_ord]
        except KeyError:
            raise TraceFormatError(f"unknown instruction class {kind_ord}") from None
        if nsrcs > 3:
            raise TraceFormatError(f"record {index} claims {nsrcs} sources")
        yield Instruction(
            kind=kind,
            pc=pc,
            address=address,
            size=size,
            dest=dest,
            srcs=(s0, s1, s2)[:nsrcs],
            taken=bool(flags & _FLAG_TAKEN),
            target=target,
            lock_acquire=bool(flags & _FLAG_ACQUIRE),
            lock_release=bool(flags & _FLAG_RELEASE),
        )


def read_trace_file(path: Union[str, PathLike]) -> list[Instruction]:
    """Read a whole trace file into memory."""
    with open(path, "rb") as stream:
        return list(read_trace(stream))
