"""Task table and cost-aware placement of engine jobs on fleet workers.

One service *job* (a sweep, a sharded simulate) expands into one or more
*tasks*, each a single :class:`~repro.engine.runner.JobSpec` — the unit a
worker leases, executes and completes.  The router owns the task table
and decides, when a worker asks for work, which tasks it gets:

- strict priority first (the job's service priority),
- then **largest predicted cost first** within a priority (classic LPT —
  longest-processing-time — placement: handing the big shards out early
  keeps the makespan of a sharded sweep near the balanced optimum without
  knowing worker speeds),
- FIFO as the final tie-break, so equal work is served fairly.

Placement is bounded: a worker never holds more than ``max_inflight``
leased tasks, which is the fleet's backpressure primitive — the
coordinator can translate "every worker is at its in-flight bound and the
queue is deep" into a 429 with a cost-derived ``Retry-After``.

Failure handling: a task completed with a failed status (or abandoned by
an evicted worker) returns to the pending pool up to ``retries`` extra
attempts; tasks that exhaust their attempts fail their whole job.  Tasks
already completed are never requeued — together with content-keyed
checkpoints this is what makes "no completed shard is recomputed" hold
across worker deaths.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from .cost import CostEstimate
from .registry import WorkerRegistry

if TYPE_CHECKING:
    from ..engine.runner import JobResult, JobSpec

__all__ = ["Router", "TaskRecord"]


@dataclass
class TaskRecord:
    """One leasable unit of work (a single engine JobSpec)."""

    id: str
    job_id: str
    index: int  # position within the job's spec list (result ordering)
    spec: "JobSpec"
    priority: int
    cost: CostEstimate
    corr: str = ""
    state: str = "pending"  # pending | leased | done | failed
    worker_id: str = ""
    attempts: int = 0
    seq: int = 0
    leased_at: float = 0.0
    #: When the task (re)entered the pending pool — the lease-wait clock.
    queued_at: float = 0.0
    result: Optional["JobResult"] = None
    _f: Any = field(default=None, repr=False)

    def status_payload(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "job": self.job_id,
            "index": self.index,
            "state": self.state,
            "worker": self.worker_id,
            "attempts": self.attempts,
            "priority": self.priority,
            "cost_units": round(self.cost.units, 1),
            "label": self.spec.describe(),
        }


class Router:
    """Thread-safe task table with cost-aware, bounded lease placement."""

    def __init__(
        self,
        registry: WorkerRegistry,
        max_inflight: int = 2,
        retries: int = 2,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.registry = registry
        self.max_inflight = max_inflight
        self.retries = retries
        self._lock = threading.Lock()
        self._tasks: Dict[str, TaskRecord] = {}
        #: Min-heap of (-priority, -cost, seq, task_id): priority desc, then
        #: predicted cost desc (LPT), then submission order.  Entries are
        #: lazily invalidated — a popped id whose task is gone or no longer
        #: pending is skipped — so drop/forget never have to scan the heap,
        #: and idle lease polls never re-sort anything.
        self._pending: List[Tuple[float, float, int, str]] = []
        self._seq = itertools.count()
        self.requeued_total = 0
        self.leased_total = 0

    def _push_pending(self, task: TaskRecord) -> None:
        task.queued_at = time.monotonic()
        heapq.heappush(
            self._pending,
            (-task.priority, -task.cost.units, task.seq, task.id),
        )

    # ------------------------------------------------------------- intake --

    def add_tasks(self, tasks: List[TaskRecord]) -> None:
        with self._lock:
            for task in tasks:
                task.seq = next(self._seq)
                self._tasks[task.id] = task
                self._push_pending(task)

    def drop_job(self, job_id: str) -> int:
        """Forget a job's *pending* tasks (its job failed or was shed)."""
        with self._lock:
            doomed = [
                task for task in self._tasks.values()
                if task.job_id == job_id and task.state == "pending"
            ]
            for task in doomed:
                task.state = "failed"  # heap entry is lazily skipped
            return len(doomed)

    # ------------------------------------------------------------ leasing --

    def lease(self, worker_id: str, max_tasks: int = 1) -> List[TaskRecord]:
        """Grant up to *max_tasks* pending tasks to *worker_id*.

        Returns an empty list when nothing is pending, the worker is
        draining, or the worker is already at its in-flight bound.
        Raises :class:`~repro.errors.UnknownWorkerError` for evicted ids.
        """
        worker = self.registry.require(worker_id)
        if worker.draining:
            return []
        with self._lock:
            held = sum(
                1 for task in self._tasks.values()
                if task.state == "leased" and task.worker_id == worker_id
            )
            budget = min(max(0, self.max_inflight - held), max(1, max_tasks))
            if budget == 0 or not self._pending:
                return []
            granted: List[TaskRecord] = []
            while self._pending and len(granted) < budget:
                _, _, _, tid = heapq.heappop(self._pending)
                task = self._tasks.get(tid)
                if task is None or task.state != "pending":
                    continue  # lazily-invalidated entry (job shed/forgotten)
                task.state = "leased"
                task.worker_id = worker_id
                task.attempts += 1
                task.leased_at = time.monotonic()
                granted.append(task)
            self.leased_total += len(granted)
            return granted

    def complete(
        self, worker_id: str, task_id: str, result: "JobResult",
    ) -> Optional[TaskRecord]:
        """Record a worker's result for a leased task.

        A failed result requeues the task while attempts remain; the
        returned record's ``state`` tells the coordinator what happened
        (``done`` / ``pending`` after requeue / ``failed`` terminally).

        Returns ``None`` for task ids the router no longer tracks: the
        task's job already finished or failed and was forgotten while this
        (healthy) worker was still executing.  That late answer is stale,
        not a protocol violation — erroring here would crash workers that
        did nothing wrong.
        """
        with self._lock:
            task = self._tasks.get(task_id)
            if task is None:
                return None
            if task.state != "leased" or task.worker_id != worker_id:
                # A stale completion (task was requeued and re-leased after
                # this worker was evicted): ignore it — the fresh lease owns
                # the task now, and double-counting a result would corrupt
                # the job assembly.
                return task
            worker = self.registry.get(worker_id)
            if result.ok:
                task.state = "done"
                task.result = result
                if worker is not None:
                    worker.tasks_done += 1
                    worker.cost_done += task.cost.units
            elif task.attempts <= self.retries:
                task.state = "pending"
                task.worker_id = ""
                task.result = result  # keep the last error for diagnostics
                self._push_pending(task)
                self.requeued_total += 1
                if worker is not None:
                    worker.tasks_failed += 1
            else:
                task.state = "failed"
                task.result = result
                if worker is not None:
                    worker.tasks_failed += 1
            return task

    def release_worker(self, worker_id: str) -> List[TaskRecord]:
        """Requeue every task a (dead or departing) worker holds.

        Attempts are *not* refunded — a worker death consumes an attempt,
        bounding how often a poisonous task can take workers down.
        """
        requeued: List[TaskRecord] = []
        with self._lock:
            for task in self._tasks.values():
                if task.state == "leased" and task.worker_id == worker_id:
                    if task.attempts > self.retries:
                        task.state = "failed"
                    else:
                        task.state = "pending"
                        task.worker_id = ""
                        self._push_pending(task)
                        self.requeued_total += 1
                    requeued.append(task)
        return requeued

    # -------------------------------------------------------------- reads --

    def job_tasks(self, job_id: str) -> List[TaskRecord]:
        with self._lock:
            return sorted(
                (t for t in self._tasks.values() if t.job_id == job_id),
                key=lambda t: t.index,
            )

    def forget_job(self, job_id: str) -> None:
        """Drop a finished job's tasks from the table.

        Heap entries for the dropped tasks are invalidated lazily (the
        leaser skips ids it no longer knows), so this is O(job tasks).
        """
        with self._lock:
            doomed = [
                tid for tid, task in self._tasks.items()
                if task.job_id == job_id
            ]
            for tid in doomed:
                self._tasks.pop(tid)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts = {"pending": 0, "leased": 0, "done": 0, "failed": 0}
            for task in self._tasks.values():
                counts[task.state] += 1
            return counts

    def lease_ages(self) -> Dict[str, List[float]]:
        """Ages (seconds) of live leases, grouped by holding worker."""
        now = time.monotonic()
        with self._lock:
            ages: Dict[str, List[float]] = {}
            for task in self._tasks.values():
                if task.state == "leased":
                    ages.setdefault(task.worker_id, []).append(
                        max(0.0, now - task.leased_at),
                    )
            return ages

    def inflight_by_worker(self) -> Dict[str, int]:
        with self._lock:
            held: Dict[str, int] = {}
            for task in self._tasks.values():
                if task.state == "leased":
                    held[task.worker_id] = held.get(task.worker_id, 0) + 1
            return held

    def outstanding_cost(self) -> float:
        """Predicted cost units still pending or leased."""
        with self._lock:
            return sum(
                task.cost.units for task in self._tasks.values()
                if task.state in ("pending", "leased")
            )

    def has_capacity(self) -> bool:
        """True while at least one accepting worker is under its bound."""
        held = self.inflight_by_worker()
        return any(
            held.get(worker.id, 0) < self.max_inflight
            for worker in self.registry.accepting_workers()
        )

    def wants_more(self) -> bool:
        """True while the outstanding backlog fits the fleet's slots.

        The dispatcher gates job claiming on this: once pending + leased
        tasks cover every worker's in-flight bound, further jobs stay
        *queued* — so a saturated fleet fills the bounded JobQueue and
        admission control (429 + Retry-After, priority shedding) engages
        instead of the backlog growing without bound.  One job can still
        overshoot by its own fan-out; the gate bounds jobs, not tasks.
        """
        counts = self.counts()
        slots = len(self.registry.accepting_workers()) * self.max_inflight
        return counts["pending"] + counts["leased"] < slots

    def status_payload(self) -> List[Dict[str, Any]]:
        with self._lock:
            tasks = sorted(self._tasks.values(), key=lambda t: t.seq)
            return [task.status_payload() for task in tasks]
