"""The fleet worker: a thin pull-loop around :class:`EngineRunner`.

A worker joins a coordinator (``mlpsim worker --join URL``), adopts the
coordinator's experiment settings and shared artifact-cache directory
(both ride back on the registration response — this is what guarantees
bit-identical results and cross-worker checkpoint resume), then loops:

    long-poll ``/v1/fleet/lease``  →  run the leased specs through the
    local EngineRunner  →  POST the serialized results to
    ``/v1/fleet/complete``

Liveness is a heartbeat thread renewing the lease every TTL/3.  If the
process dies (or the machine does), the missed heartbeats evict it and the
coordinator requeues its leased tasks — nothing on the worker side needs
to clean up, which is the point of pull-based leasing.

SIGTERM drains gracefully: the current batch finishes (writing its
checkpoints), results are posted, the worker deregisters and exits 0.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from ..engine import serialize
from ..engine.runner import EngineRunner, JobSpec
from ..errors import ReproError
from ..harness.experiment import ExperimentSettings
from ..obs.context import format_traceparent, trace_context
from ..obs.logging import get_logger, setup_logging
from ..obs.options import ObsOptions

__all__ = ["FleetWorker", "run_worker"]

_log = get_logger("fleet.worker")


class WorkerJoinError(ReproError):
    code = "fleet-join-failed"


class FleetWorker:
    """One worker process (or thread, in tests) attached to a coordinator."""

    def __init__(
        self,
        coordinator_url: str,
        name: str = "",
        cache_dir: Optional[str] = None,
        runner_workers: int = 1,
        lease_batch: int = 0,
        lease_wait: float = 10.0,
        obs: Optional[ObsOptions] = None,
        max_connect_failures: int = 10,
    ) -> None:
        self.url = coordinator_url.rstrip("/")
        self.name = name
        self.cache_dir_override = cache_dir
        self.runner_workers = runner_workers
        self.lease_batch = lease_batch
        self.lease_wait = lease_wait
        self.obs = obs
        self.max_connect_failures = max_connect_failures
        self.worker_id = ""
        self.lease_ttl = 5.0
        self.settings: Optional[ExperimentSettings] = None
        self.runner: Optional[EngineRunner] = None
        self.tasks_done = 0
        self._stop = threading.Event()
        self._heartbeat_thread: Optional[threading.Thread] = None
        #: Federation baseline: counter totals at the moment of the latest
        #: registration.  Heartbeats report ``current − baseline``, so a
        #: worker that rejoins after an eviction (same process, fresh
        #: registration) never re-reports counts the coordinator already
        #: folded into its retained per-name totals.
        self._metrics_baseline: Dict[str, float] = {}

    # ---------------------------------------------------------------- HTTP --

    def _post(self, path: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        body = json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            f"{self.url}{path}",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=60.0) as response:
            return json.loads(response.read().decode("utf-8"))

    # ---------------------------------------------------------------- join --

    def join(self) -> "FleetWorker":
        """Register with the coordinator and adopt its configuration."""
        try:
            grant = self._post(
                "/v1/fleet/register",
                {
                    "name": self.name or f"worker-{os.getpid()}",
                    "pid": os.getpid(),
                    "capabilities": {"runner_workers": self.runner_workers},
                },
            )
        except (urllib.error.URLError, ConnectionError, OSError) as exc:
            raise WorkerJoinError(
                f"cannot join coordinator at {self.url}: {exc}"
            ) from exc
        self.worker_id = grant["worker"]
        self.name = grant.get("name", self.name)
        self.lease_ttl = float(grant.get("lease_ttl", 5.0))
        if not self.lease_batch:
            self.lease_batch = int(grant.get("lease_batch", 1)) or 1
        self.settings = serialize.from_jsonable(grant["settings"])
        cache_dir: Any = self.cache_dir_override or grant.get("cache_dir")
        if cache_dir is None:
            cache_dir = "auto"
        self.runner = EngineRunner(
            settings=self.settings,
            cache_dir=cache_dir,
            workers=self.runner_workers,
            retries=0,  # the fleet router owns retry policy
            obs=self.obs,
        )
        self._metrics_baseline = self._metrics_snapshot()
        _log.info(
            "joined %s as %s (%s); lease ttl %.1fs, batch %d",
            self.url, self.name, self.worker_id,
            self.lease_ttl, self.lease_batch,
        )
        return self

    # ------------------------------------------------------------- metrics --

    def _metrics_snapshot(self) -> Dict[str, float]:
        """Absolute cumulative counters for this worker process."""
        totals: Dict[str, float] = {
            "tasks_done_total": float(self.tasks_done),
        }
        if self.runner is not None:
            totals.update(self.runner.telemetry.totals())
        return totals

    def _metrics_report(self) -> Dict[str, float]:
        """Totals since the registration baseline (the heartbeat payload)."""
        snapshot = self._metrics_snapshot()
        return {
            name: value - self._metrics_baseline.get(name, 0.0)
            for name, value in snapshot.items()
        }

    # ------------------------------------------------------------ liveness --

    def _heartbeat_loop(self) -> None:
        interval = max(0.2, self.lease_ttl / 3.0)
        while not self._stop.wait(interval):
            try:
                answer = self._post(
                    "/v1/fleet/heartbeat",
                    {
                        "worker": self.worker_id,
                        "metrics": self._metrics_report(),
                    },
                )
            except urllib.error.HTTPError as exc:
                if exc.code == 410:  # evicted; the pull loop will exit
                    _log.warning("lease lost (evicted); stopping")
                    self._stop.set()
                    return
            except (urllib.error.URLError, ConnectionError, OSError):
                continue  # transient; the pull loop tracks failures
            else:
                if answer.get("shutdown"):
                    self._stop.set()
                    return

    def request_stop(self) -> None:
        """Finish the in-flight batch, then leave (SIGTERM handler)."""
        self._stop.set()

    # ----------------------------------------------------------- pull loop --

    @staticmethod
    def _lease_traceparent(entry: Dict[str, Any]) -> str:
        """The lease's trace context (synthesized from ``corr`` if absent)."""
        traceparent = entry.get("traceparent")
        if isinstance(traceparent, str) and traceparent:
            return traceparent
        return format_traceparent(str(entry.get("corr", "") or ""), "")

    def _execute(self, leases: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        assert self.runner is not None
        # One lease batch can mix tasks from several jobs; group by trace
        # context so every span and event this worker emits lands in the
        # right job's tree (restored via repro.obs.context.trace_context —
        # the receiving half of cross-process propagation).
        groups: Dict[str, List[Dict[str, Any]]] = {}
        for entry in leases:
            groups.setdefault(self._lease_traceparent(entry), []).append(entry)
        results = []
        for traceparent, entries in groups.items():
            specs: List[JobSpec] = [
                serialize.from_jsonable(entry["spec"]) for entry in entries
            ]
            with trace_context(traceparent):
                report = self.runner.run(specs)
            for entry, job_result in zip(entries, report.jobs):
                results.append(
                    {
                        "task": entry["task"],
                        "traceparent": traceparent,
                        "result": serialize.to_jsonable(job_result),
                    }
                )
                state = "ok" if job_result.ok else job_result.status
                _log.info(
                    "task %s %s (%.2fs): %s",
                    entry["task"], state, job_result.wall_time,
                    job_result.spec.describe(),
                )
        return results

    def _post_complete(self, results: List[Dict[str, Any]]) -> bool:
        """Deliver one batch of results to the coordinator; never raises.

        Returns ``False`` only when the worker should exit (evicted, or
        the coordinator stayed unreachable).  Any other coordinator error
        is logged and the batch dropped — the work itself is safe: our
        leases are released when we leave or get evicted, the tasks
        requeue, and the next attempt resumes from shared checkpoints.
        Crashing a healthy worker over one bad answer would turn a single
        failed job into a fleet-wide cascade.
        """
        payload = {"worker": self.worker_id, "results": results}
        failures = 0
        while True:
            try:
                self._post("/v1/fleet/complete", payload)
                return True
            except urllib.error.HTTPError as exc:
                if exc.code == 410:
                    # Evicted mid-batch: the tasks were requeued and the
                    # shared checkpoints mean no work is lost.
                    _log.warning("evicted before completing; exiting")
                    return False
                _log.error(
                    "coordinator rejected completion batch (HTTP %d); "
                    "dropping %d result(s) and continuing",
                    exc.code, len(results),
                )
                return True
            except (urllib.error.URLError, ConnectionError, OSError):
                failures += 1
                if failures >= self.max_connect_failures:
                    _log.error(
                        "coordinator unreachable after %d completion "
                        "attempts; exiting", failures,
                    )
                    return False
                if self._stop.wait(min(5.0, 0.2 * failures)):
                    _log.warning(
                        "stopping with %d undelivered result(s)",
                        len(results),
                    )
                    return True

    def run(self) -> int:
        """Join (if needed) and pull work until drained or stopped."""
        if not self.worker_id:
            self.join()
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name="fleet-heartbeat", daemon=True,
        )
        self._heartbeat_thread.start()
        failures = 0
        exit_code = 0
        try:
            while not self._stop.is_set():
                try:
                    answer = self._post(
                        "/v1/fleet/lease",
                        {
                            "worker": self.worker_id,
                            "max": self.lease_batch,
                            "wait": self.lease_wait,
                        },
                    )
                    failures = 0
                except urllib.error.HTTPError as exc:
                    if exc.code == 410:
                        _log.warning("evicted by the coordinator; exiting")
                        exit_code = 1
                        break
                    failures += 1
                    time.sleep(min(5.0, 0.2 * failures))
                    continue
                except (urllib.error.URLError, ConnectionError, OSError):
                    failures += 1
                    if failures >= self.max_connect_failures:
                        _log.error(
                            "coordinator unreachable after %d attempts; "
                            "exiting", failures,
                        )
                        exit_code = 1
                        break
                    time.sleep(min(5.0, 0.2 * failures))
                    continue
                if answer.get("shutdown"):
                    break
                leases = answer.get("tasks") or []
                if not leases:
                    if answer.get("draining"):
                        _log.info("drained; leaving the fleet")
                        break
                    continue
                results = self._execute(leases)
                self.tasks_done += len(results)
                if not self._post_complete(results):
                    exit_code = 1
                    break
        finally:
            self._stop.set()
            try:
                self._post("/v1/fleet/leave", {"worker": self.worker_id})
            except Exception:
                pass
            if self._heartbeat_thread is not None:
                self._heartbeat_thread.join(timeout=2.0)
        return exit_code


def run_worker(
    coordinator_url: str,
    name: str = "",
    cache_dir: Optional[str] = None,
    runner_workers: int = 1,
    lease_batch: int = 0,
    log_level: str = "info",
    log_format: str = "text",
    obs: Optional[ObsOptions] = None,
) -> int:
    """Run a fleet worker in the foreground until drained or signalled."""
    setup_logging(level=log_level, fmt=log_format)
    worker = FleetWorker(
        coordinator_url,
        name=name,
        cache_dir=cache_dir,
        runner_workers=runner_workers,
        lease_batch=lease_batch,
        obs=obs,
    )

    def _signalled(signum: int, frame: Any) -> None:
        worker.request_stop()

    signal.signal(signal.SIGTERM, _signalled)
    signal.signal(signal.SIGINT, _signalled)
    worker.join()
    code = worker.run()
    _log.info(
        "worker %s exiting with %d task(s) done", worker.name,
        worker.tasks_done,
    )
    return code
