"""repro.fleet — distributed multi-worker execution for the service layer.

One coordinator (asyncio front end + job queue + cost-aware router) and N
pull-based workers, speaking the same versioned wire protocol as the
single-node daemon.  See DESIGN.md ("Distributed fleet") for the
topology, the lease protocol and the failure semantics.

Quick start::

    from repro.fleet import FleetCoordinator, FleetWorker

    coord = FleetCoordinator(port=0).start()
    worker = FleetWorker(coord.url).join()
    # worker.run() in a thread/process; then submit jobs via
    # repro.api.connect(coord.url) exactly as against a daemon.
"""

from .cost import CostEstimate, estimate_job_cost
from .frontend import FleetCoordinator, serve_fleet
from .registry import WorkerInfo, WorkerRegistry
from .router import Router, TaskRecord
from .worker import FleetWorker, run_worker

__all__ = [
    "CostEstimate",
    "FleetCoordinator",
    "FleetWorker",
    "Router",
    "TaskRecord",
    "WorkerInfo",
    "WorkerRegistry",
    "estimate_job_cost",
    "run_worker",
    "serve_fleet",
]
