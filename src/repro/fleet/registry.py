"""Worker lifecycle: registration, lease-based heartbeats, drain, eviction.

The coordinator never connects *to* a worker — workers pull work over
HTTP, so worker liveness is expressed entirely through heartbeats: a
worker that registers receives a lease TTL, renews it by heartbeating
(every TTL/3 in practice), and is evicted once the lease has been expired
for longer than the grace period.  Eviction is what triggers failure
handling: the router requeues every task the dead worker held, and —
because checkpoints live in the shared artifact cache keyed by content,
not by worker — whichever worker picks a requeued shard up resumes it
from the last verified checkpoint automatically.

Draining is the graceful half of the same protocol: a draining worker is
handed no new leases (the flag rides back on heartbeat/lease responses),
finishes its in-flight tasks, deregisters and exits.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import UnknownWorkerError

__all__ = ["WorkerInfo", "WorkerRegistry"]


@dataclass
class WorkerInfo:
    """One registered worker and its lease state."""

    id: str
    name: str
    registered_at: float
    last_heartbeat: float
    pid: int = 0
    capabilities: Dict[str, Any] = field(default_factory=dict)
    draining: bool = False
    #: Cumulative accounting, updated by the router on lease/complete.
    tasks_done: int = 0
    tasks_failed: int = 0
    cost_done: float = 0.0

    def age(self, now: float) -> float:
        return now - self.last_heartbeat

    def status_payload(self, now: float) -> Dict[str, Any]:
        return {
            "id": self.id,
            "name": self.name,
            "pid": self.pid,
            "draining": self.draining,
            "heartbeat_age_seconds": round(self.age(now), 3),
            "tasks_done": self.tasks_done,
            "tasks_failed": self.tasks_failed,
            "cost_done": round(self.cost_done, 1),
        }


class WorkerRegistry:
    """Thread-safe registry of live workers with lease-TTL eviction.

    ``lease_ttl`` is the renewal interval contract handed to workers;
    a worker is considered dead once its last heartbeat is older than
    ``lease_ttl * grace`` (grace defaults to 3 renewals missed).
    """

    def __init__(self, lease_ttl: float = 5.0, grace: float = 3.0) -> None:
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        self.lease_ttl = lease_ttl
        self.grace = grace
        self._lock = threading.Lock()
        self._workers: Dict[str, WorkerInfo] = {}
        self._drain_all = False
        self.evicted_total = 0

    # ----------------------------------------------------------- protocol --

    def register(
        self,
        name: str = "",
        pid: int = 0,
        capabilities: Optional[Dict[str, Any]] = None,
    ) -> WorkerInfo:
        now = time.monotonic()
        worker = WorkerInfo(
            id=uuid.uuid4().hex[:12],
            name=name or f"worker-{len(self._workers) + 1}",
            registered_at=now,
            last_heartbeat=now,
            pid=pid,
            capabilities=dict(capabilities or {}),
        )
        with self._lock:
            worker.draining = self._drain_all
            self._workers[worker.id] = worker
        return worker

    def heartbeat(self, worker_id: str) -> WorkerInfo:
        """Renew a worker's lease; raises for unknown (evicted) workers."""
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is None:
                raise UnknownWorkerError(
                    f"unknown worker {worker_id!r} (evicted? re-register)"
                )
            worker.last_heartbeat = time.monotonic()
            return worker

    def deregister(self, worker_id: str) -> Optional[WorkerInfo]:
        with self._lock:
            return self._workers.pop(worker_id, None)

    # ----------------------------------------------------------- liveness --

    def get(self, worker_id: str) -> Optional[WorkerInfo]:
        with self._lock:
            return self._workers.get(worker_id)

    def require(self, worker_id: str) -> WorkerInfo:
        worker = self.get(worker_id)
        if worker is None:
            raise UnknownWorkerError(
                f"unknown worker {worker_id!r} (evicted? re-register)"
            )
        return worker

    def live_workers(self) -> List[WorkerInfo]:
        """Workers holding a fresh lease (draining ones included)."""
        deadline = self.lease_ttl * self.grace
        now = time.monotonic()
        with self._lock:
            return [
                w for w in self._workers.values() if w.age(now) <= deadline
            ]

    def accepting_workers(self) -> List[WorkerInfo]:
        """Live workers that may be handed new leases."""
        return [w for w in self.live_workers() if not w.draining]

    def evict_expired(self) -> List[WorkerInfo]:
        """Remove workers whose lease lapsed; returns the evicted ones."""
        deadline = self.lease_ttl * self.grace
        now = time.monotonic()
        evicted: List[WorkerInfo] = []
        with self._lock:
            for worker_id in list(self._workers):
                worker = self._workers[worker_id]
                if worker.age(now) > deadline:
                    evicted.append(self._workers.pop(worker_id))
            self.evicted_total += len(evicted)
        return evicted

    # -------------------------------------------------------------- drain --

    def drain(self, worker_id: Optional[str] = None) -> None:
        """Flag one worker (or, with ``None``, the whole fleet) to drain."""
        with self._lock:
            if worker_id is None:
                self._drain_all = True
                for worker in self._workers.values():
                    worker.draining = True
            else:
                worker = self._workers.get(worker_id)
                if worker is None:
                    raise UnknownWorkerError(
                        f"unknown worker {worker_id!r}"
                    )
                worker.draining = True

    # -------------------------------------------------------------- stats --

    def status_payload(self) -> List[Dict[str, Any]]:
        now = time.monotonic()
        with self._lock:
            workers = sorted(
                self._workers.values(), key=lambda w: w.registered_at,
            )
            return [w.status_payload(now) for w in workers]

    def count(self) -> int:
        with self._lock:
            return len(self._workers)
