"""The fleet coordinator: asyncio HTTP front end + job → task orchestration.

This is the horizontally scalable replacement for the single-process
daemon's blocking accept loop.  One coordinator process owns:

- an **asyncio front end** (stdlib ``asyncio.start_server``, HTTP/1.1 with
  keep-alive) speaking the *existing* versioned wire protocol — clients,
  ``repro.api.connect`` and ``mlpsim submit`` work unchanged against a
  coordinator — plus the ``/v1/fleet/*`` worker protocol,
- the same bounded, deduplicating :class:`~repro.service.jobqueue.JobQueue`
  the daemon uses, with admission control in front of it (429/503 +
  ``Retry-After``, priority-aware shedding),
- a :class:`~repro.fleet.registry.WorkerRegistry` (lease heartbeats,
  drain, eviction) and a :class:`~repro.fleet.router.Router` (cost-aware
  LPT placement, bounded per-worker in-flight),
- the content-addressed :class:`~repro.engine.cache.ArtifactCache` as the
  cluster-wide shared result store: completed job payloads are published
  under the request signature, so dedup-by-request-hash extends across
  nodes and across coordinator restarts.

The coordinator runs **no simulations itself**.  A dispatcher thread
expands each claimed job into engine-level tasks (sweep grid points, or
:class:`ShardPlan` shards for sharded simulates); workers long-poll
``/v1/fleet/lease``, execute specs through their own
:class:`~repro.engine.runner.EngineRunner`, and POST results back.  A
worker SIGKILLed mid-shard misses its heartbeats, is evicted, and its
leased shards requeue — the next worker to lease them resumes from the
last verified checkpoint in the shared cache (content-keyed, so no
completed shard is ever recomputed) and the merged result stays
bit-identical to a single-node run.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import threading
import time
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from ..core.backend import backend_names
from ..engine import serialize
from ..engine.cache import ArtifactCache, resolve_cache_dir
from ..engine.runner import JobResult, JobSpec, RunReport, ShardedReport
from ..errors import ProtocolError, SaturatedError, UnknownWorkerError
from ..harness.experiment import ExperimentSettings, Workbench
from ..obs.context import format_traceparent, new_span_id
from ..obs.logging import get_logger, setup_logging
from ..obs.metrics import MetricsRegistry
from ..obs.options import ObsOptions
from ..obs.trace import Tracer
from ..service.jobqueue import Job, JobQueue, JobState, QueueFullError
from ..service.protocol import PROTOCOL_VERSION, parse_job_request
from .cost import estimate_job_cost
from .federation import MetricsFederation
from .registry import WorkerRegistry
from .router import Router, TaskRecord

__all__ = ["FleetCoordinator", "serve_fleet"]

_log = get_logger("fleet")

#: Submission bodies larger than this are rejected outright (matches the
#: single-node daemon).  Worker completions carry whole serialized results
#: and get a much larger allowance.
MAX_BODY_BYTES = 64 * 1024
MAX_WORKER_BODY_BYTES = 64 * 1024 * 1024

#: The artifact-cache kind under which finished job payloads are published
#: (the cluster-wide dedup-by-request-hash store).
RESULT_KIND = "service-result"

#: Server-side cap on lease long-polling.
MAX_LEASE_WAIT = 30.0


class FleetCoordinator:
    """One coordinator: queue + registry + router + asyncio front end."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        settings: Optional[ExperimentSettings] = None,
        cache_dir: Any = "auto",
        queue_capacity: int = 256,
        history: int = 1024,
        lease_ttl: float = 5.0,
        max_inflight: int = 2,
        lease_batch: int = 4,
        task_retries: int = 2,
        default_backend: str = "",
        obs: Optional[ObsOptions] = None,
    ) -> None:
        self.settings = settings or ExperimentSettings()
        self.cache_dir = cache_dir
        self.artifacts = ArtifactCache(resolve_cache_dir(cache_dir))
        self.queue = JobQueue(capacity=queue_capacity, history=history)
        self.registry = WorkerRegistry(lease_ttl=lease_ttl)
        self.router = Router(
            self.registry, max_inflight=max_inflight, retries=task_retries,
        )
        self.lease_batch = lease_batch
        self.default_backend = default_backend
        self.metrics = MetricsRegistry()
        self.federation = MetricsFederation(self.metrics)
        #: job id -> root span id of its coordinator-side "fleet_job" span
        #: (the parent every worker hangs its spans under via traceparent).
        self._job_spans: Dict[str, str] = {}
        self.obs = obs
        self._tracer: Optional[Tracer] = None
        if obs is not None and obs.trace_dir is not None:
            self._tracer = obs.open_tracer()
        self.draining = False
        self._stopping = False
        self._started_at: Optional[float] = None
        #: job id -> (job, ShardPlan or None); guards job assembly.
        self._assembly_lock = threading.Lock()
        self._plans: Dict[str, Any] = {}
        #: Completion-rate window for Retry-After: (monotonic, cost units).
        self._rate_lock = threading.Lock()
        self._completions: List[Tuple[float, float]] = []
        #: Planning bench (shard plans, sweep expansion); built lazily so a
        #: coordinator that only serves cached results never touches traces.
        self._bench: Optional[Workbench] = None
        self._bench_lock = threading.Lock()

        self._frontend = _AsyncFrontend(self, host, port)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="fleet-dispatcher", daemon=True,
        )
        self._evictor = threading.Thread(
            target=self._eviction_loop, name="fleet-evictor", daemon=True,
        )
        self._register_metrics()

    # ----------------------------------------------------------- lifecycle --

    @property
    def host(self) -> str:
        return self._frontend.host

    @property
    def port(self) -> int:
        return self._frontend.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "FleetCoordinator":
        self._started_at = time.time()
        self._frontend.start()
        self._dispatcher.start()
        self._evictor.start()
        return self

    def stop(self) -> None:
        self._stopping = True
        self.queue.close()
        self._frontend.stop()
        self._dispatcher.join(timeout=5.0)
        self._evictor.join(timeout=5.0)

    def begin_drain(self) -> None:
        """Stop accepting new submissions (503 + Retry-After)."""
        self.draining = True

    def drain(self, timeout: float = 30.0) -> int:
        """Drain: refuse new work, let workers finish the backlog.

        Returns the number of abandoned work items (jobs still queued or
        tasks still outstanding when the timeout expired) — ``0`` means a
        clean drain.  Workers are flagged to drain afterwards either way,
        so they finish in-flight tasks, deregister and exit.
        """
        self.begin_drain()
        deadline = time.monotonic() + max(0.0, timeout)
        while time.monotonic() < deadline:
            counts = self.router.counts()
            outstanding = (
                self.queue.depth()
                + self.queue.counts_by_state()["running"]
                + counts["pending"] + counts["leased"]
            )
            if outstanding == 0:
                break
            time.sleep(0.05)
        counts = self.router.counts()
        abandoned = (
            self.queue.depth()
            + self.queue.counts_by_state()["running"]
        )
        # running jobs already count their live tasks; don't double-count
        abandoned = max(abandoned, counts["pending"] + counts["leased"])
        self.registry.drain(None)
        return abandoned

    # ----------------------------------------------------------- admission --

    def _retry_after_hint(self) -> float:
        """Predicted seconds until the backlog has drained appreciably.

        Outstanding predicted cost divided by the observed completion rate
        (cost units/second over the recent completion window).  Before any
        completion has been observed the hint falls back to the lease TTL.
        """
        outstanding = self.router.outstanding_cost()
        with self._rate_lock:
            window = self._completions[-50:]
            if len(window) >= 2:
                elapsed = max(1e-6, window[-1][0] - window[0][0])
                rate = sum(units for _, units in window[1:]) / elapsed
            else:
                rate = 0.0
        if rate <= 0:
            return self.registry.lease_ttl
        return min(60.0, max(1.0, outstanding / rate))

    def submit(self, payload: Any) -> Tuple[Job, bool]:
        """Parse, admission-check and enqueue one submission."""
        request = parse_job_request(payload)
        if request.kind == "figure":
            raise ProtocolError(
                "figure jobs are not fleet-routable (their drivers run "
                "serially against one warm bench); submit them to a "
                "single-node daemon (mlpsim serve without --fleet)",
            )
        if request.kind == "tune":
            raise ProtocolError(
                "tune jobs are not fleet-routable (generations are "
                "sequential ask/tell rounds over one engine); submit them "
                "to a single-node daemon (mlpsim serve without --fleet)",
            )
        if request.kind == "estimate":
            # Pure arithmetic — resolved inline on the coordinator, no
            # worker lease, no queue wait.
            from ..service.executor import estimate_payload

            job, deduped = self.queue.submit(request)
            if not deduped:
                self.queue.resolve_queued(job.id, estimate_payload(request))
            self.metrics.inc("jobs_submitted_total")
            if deduped:
                self.metrics.inc("jobs_deduped_total")
            return job, deduped
        if self.draining or self._stopping:
            raise SaturatedError(
                "coordinator is draining; not accepting new jobs",
                status=503, retry_after=self._retry_after_hint(),
            )
        # Cluster-wide dedup: a completed payload for this exact request
        # signature short-circuits the whole fleet.
        signature = request.signature()
        sentinel = object()
        cached = self.artifacts.get(RESULT_KIND, signature, default=sentinel)
        if cached is not sentinel:
            job, deduped = self.queue.submit(request)
            if not deduped and self.queue.resolve_queued(job.id, cached):
                self.metrics.inc("fleet_result_cache_hits_total")
                _log.info(
                    "job %s served from the cluster result store", job.id,
                )
            self.metrics.inc("jobs_submitted_total")
            if deduped:
                self.metrics.inc("jobs_deduped_total")
            return job, deduped
        if not self.registry.live_workers():
            raise SaturatedError(
                "no live workers registered with the fleet",
                status=503, retry_after=self.registry.lease_ttl,
            )
        try:
            job, deduped = self.queue.submit(request)
        except QueueFullError:
            shed = self.queue.shed_lowest_below(request.priority)
            if shed is None:
                raise SaturatedError(
                    f"queue is full ({self.queue.capacity} jobs pending)",
                    status=429, retry_after=self._retry_after_hint(),
                ) from None
            self.metrics.inc("jobs_shed_total")
            _log.warning(
                "job %s shed (priority %d) for a priority-%d submission",
                shed.id, shed.priority, request.priority,
            )
            job, deduped = self.queue.submit(request)
        self.metrics.inc("jobs_submitted_total")
        if deduped:
            self.metrics.inc("jobs_deduped_total")
        else:
            self._begin_job_trace(job)
        return job, deduped

    def _begin_job_trace(self, job: Job) -> None:
        """Open the job's root span — the anchor of its cross-process tree.

        Emitted as explicit ``span_start``/``span_end`` event pairs (not
        ``Tracer.span``) because the span opens on the front-end thread
        and closes from whichever thread lands the last task.
        """
        if self._tracer is None:
            return
        root = new_span_id()
        self._job_spans[job.id] = root
        self._tracer.event(
            "span_start", "fleet_job", corr=job.id, span="", id=root,
            parent="", job=job.id, priority=job.priority,
        )

    def _end_job_trace(self, job: Job, state: str = "") -> None:
        root = self._job_spans.pop(job.id, None)
        if root is None or self._tracer is None:
            return
        finished = job.finished_at or time.time()
        self._tracer.event(
            "span_end", "fleet_job", corr=job.id, span="", id=root,
            parent="", job=job.id, dur=max(0.0, finished - job.submitted_at),
            state=state or job.state.value,
        )

    # ------------------------------------------------------------ expansion --

    def _planning_bench(self) -> Workbench:
        with self._bench_lock:
            if self._bench is None:
                self._bench = Workbench(
                    self.settings, artifacts=self.artifacts,
                )
            return self._bench

    def _expand_job(self, job: Job) -> List[TaskRecord]:
        """Expand one claimed job into leasable engine tasks."""
        request = job.request
        backend = request.backend or self.default_backend
        if request.kind == "sweep":
            assert request.sweep is not None
            specs = request.sweep.to_jobs()
            if backend:
                specs = [replace(spec, backend=backend) for spec in specs]
        else:
            assert request.job is not None
            spec = request.job
            if backend:
                spec = replace(spec, backend=backend)
            if request.shards > 1 or request.checkpoint_every > 0:
                plan = self._plan_shards(spec, max(1, request.shards))
                base = spec.describe()
                specs = [
                    replace(
                        spec,
                        shard_start=lo,
                        shard_stop=hi,
                        checkpoint_every=request.checkpoint_every,
                        label=f"{base} shard[{lo}:{hi})",
                    )
                    for lo, hi in plan.shards
                ]
                with self._assembly_lock:
                    self._plans[job.id] = (plan, spec)
            else:
                specs = [spec]
        return [
            TaskRecord(
                id=f"{job.id}.{index}",
                job_id=job.id,
                index=index,
                spec=spec,
                priority=job.priority,
                cost=estimate_job_cost(spec, self.settings),
                corr=job.id,
            )
            for index, spec in enumerate(specs)
        ]

    def _plan_shards(self, spec: JobSpec, shards: int) -> Any:
        from ..shard.execute import shard_plan_for

        return shard_plan_for(self._planning_bench(), spec, shards)

    def _dispatch_loop(self) -> None:
        """Claim queued jobs and hand their tasks to the router.

        Claiming is gated on router capacity: while every worker slot is
        covered by outstanding tasks, jobs stay queued and the bounded
        queue provides the admission-control backpressure.
        """
        while not self._stopping:
            if not self.router.wants_more():
                time.sleep(0.05)
                continue
            job = self.queue.next_job(timeout=0.1)
            if job is None:
                if self.queue._closed:  # closed and drained
                    return
                continue
            try:
                tasks = self._expand_job(job)
            except Exception as exc:
                import traceback as tb

                self.queue.finish(
                    job,
                    error=f"{type(exc).__name__}: {exc}",
                    tb=tb.format_exc(),
                )
                self._record_finish(job)
                _log.warning(
                    "job %s failed to expand: %s: %s",
                    job.id, type(exc).__name__, exc,
                )
                continue
            self.router.add_tasks(tasks)
            if self._tracer is not None:
                self._tracer.event(
                    "fleet_job_expanded", corr=job.id, job=job.id,
                    tasks=len(tasks),
                    cost_units=round(sum(t.cost.units for t in tasks), 1),
                )
            _log.info(
                "job %s expanded into %d task(s): %s",
                job.id, len(tasks), job.request.describe(),
            )

    def _eviction_loop(self) -> None:
        """Evict lease-expired workers and requeue their tasks."""
        interval = max(0.2, self.registry.lease_ttl / 3.0)
        while not self._stopping:
            time.sleep(interval)
            for worker in self.registry.evict_expired():
                released = self.router.release_worker(worker.id)
                self.federation.forget(worker.id)
                _log.warning(
                    "worker %s (%s) evicted after %.1fs without a "
                    "heartbeat; %d task(s) requeued",
                    worker.name, worker.id,
                    self.registry.lease_ttl * self.registry.grace,
                    len(released),
                )
                if self._tracer is not None:
                    self._tracer.event(
                        "fleet_worker_evicted", worker=worker.id,
                        name=worker.name, requeued=len(released),
                    )
                jobs = {task.job_id for task in released}
                for job_id in jobs:
                    self._maybe_finish_job(job_id)

    # ----------------------------------------------------------- completion --

    def _record_completion_rate(self, task: TaskRecord) -> None:
        with self._rate_lock:
            self._completions.append((time.monotonic(), task.cost.units))
            del self._completions[:-200]

    def complete_task(
        self, worker_id: str, task_id: str, result: JobResult,
    ) -> Optional[TaskRecord]:
        task = self.router.complete(worker_id, task_id, result)
        if task is None:
            # Stale: the task's job already finished or failed and its
            # table entries were forgotten while this worker was still
            # executing.  Harmless — acknowledge and move on.
            self.metrics.inc("fleet_tasks_stale_total")
            _log.info(
                "ignoring stale completion of %s from %s (job already "
                "settled)", task_id, worker_id,
            )
            return None
        if task.state == "done":
            self.metrics.inc("fleet_tasks_done_total")
            self.metrics.observe(
                "task_exec", max(0.0, time.monotonic() - task.leased_at),
            )
            self._record_completion_rate(task)
        elif task.state == "pending":
            self.metrics.inc("fleet_tasks_retried_total")
        elif task.state == "failed":
            self.metrics.inc("fleet_tasks_failed_total")
        if self._tracer is not None:
            self._tracer.event(
                "fleet_task_complete", corr=task.corr, task=task.id,
                worker=worker_id, state=task.state,
                resumed_pos=result.resumed_pos,
                checkpoints=result.checkpoints_written,
            )
        self._maybe_finish_job(task.job_id)
        return task

    def _maybe_finish_job(self, job_id: str) -> None:
        """Assemble and publish a job once its last task lands."""
        with self._assembly_lock:
            job = self.queue.get(job_id)
            if job is None or job.state is not JobState.RUNNING:
                return
            tasks = self.router.job_tasks(job_id)
            if not tasks:
                return
            failed = [t for t in tasks if t.state == "failed"]
            if failed:
                worst = failed[0]
                error = (
                    worst.result.error if worst.result is not None
                    else "task abandoned"
                )
                self.router.drop_job(job_id)
                self.queue.finish(
                    job,
                    error=(
                        f"{len(failed)} task(s) failed after "
                        f"{worst.attempts} attempt(s): {error}"
                    ),
                )
                self.router.forget_job(job_id)
                self._plans.pop(job_id, None)
                self._record_finish(job)
                _log.warning("job %s failed: %s", job_id, error)
                return
            if not all(t.state == "done" for t in tasks):
                return
            assemble_started = time.monotonic()
            try:
                payload = self._assemble(job, tasks)
                self.metrics.observe(
                    "job_assemble", time.monotonic() - assemble_started,
                )
            except Exception as exc:
                import traceback as tb

                self.queue.finish(
                    job,
                    error=f"{type(exc).__name__}: {exc}",
                    tb=tb.format_exc(),
                )
                self.router.forget_job(job_id)
                self._plans.pop(job_id, None)
                self._record_finish(job)
                return
            if self.artifacts.directory is not None:
                self.artifacts.put(RESULT_KIND, job.key, payload)
            self.queue.finish(job, result=payload)
            self.router.forget_job(job_id)
            self._plans.pop(job_id, None)
            self._record_finish(job)
            _log.info(
                "job %s done in %.3fs across %d task(s)",
                job_id,
                (job.finished_at or 0.0) - (job.started_at or 0.0),
                len(tasks),
            )

    def _assemble(self, job: Job, tasks: List[TaskRecord]) -> Dict[str, Any]:
        """Merge per-task results into the single-node payload shape.

        The payloads mirror :mod:`repro.service.executor` exactly, so a
        client cannot tell (and tests assert it cannot tell) whether a job
        ran on one node or across the fleet.
        """
        request = job.request
        results = [t.result for t in tasks]
        assert all(r is not None for r in results)
        wall = time.time() - (job.started_at or time.time())
        workers = max(1, len(self.registry.live_workers()))
        report = RunReport(jobs=list(results), wall_time=wall, workers=workers)

        if request.kind == "sweep":
            assert request.sweep is not None
            payload: Dict[str, Any] = {
                "kind": "sweep",
                "spec": request.sweep.to_dict(),
                "report": report.to_dict(),
                "summary": report.summary(),
            }
            if not report.failed:
                records = request.sweep.records(report)
                payload["records"] = [
                    {
                        "workload": record.workload,
                        "point": record.label(),
                        "epi_per_1000": record.epi_per_1000,
                        "mlp": record.mlp,
                        "store_mlp": record.store_mlp,
                        "store_bandwidth_overhead":
                            record.store_bandwidth_overhead,
                    }
                    for record in records
                ]
            return payload

        assert request.kind == "simulate" and request.job is not None
        planned = self._plans.get(job.id)
        if planned is None:
            payload = {
                "kind": "simulate",
                "report": report.to_dict(),
                "summary": report.summary(),
            }
            first = report.jobs[0]
            if first.ok and first.result is not None:
                payload["summary"] = first.result.summary()
            return payload

        from ..shard.merge import merge_results

        plan, base_spec = planned
        merged = merge_results([r.result for r in results])
        sharded = ShardedReport(
            spec=base_spec,
            plan=plan,
            jobs=list(results),
            rounds=max(t.attempts for t in tasks),
            wall_time=wall,
            workers=workers,
            merged=merged,
        )
        payload = {
            "kind": "simulate",
            "sharded": {
                "requested": request.shards,
                "shard_count": plan.shard_count,
                "plan": plan.describe(),
                "rounds": sharded.rounds,
                "resumed_shards": sharded.resumed_shards,
                "checkpoints_written": sharded.checkpoints_written,
                "tokens": [r.checkpoint_token for r in results],
            },
            "report": sharded.to_dict(),
            "summary": sharded.summary(),
        }
        if merged is not None:
            payload["summary"] = merged.summary()
        return payload

    def _record_finish(self, job: Job) -> None:
        self.metrics.inc(f"jobs_{job.state.value}_total")
        self._end_job_trace(job)
        if job.finished_at is None:
            return
        if job.started_at is not None:
            self.metrics.observe("job_exec", job.finished_at - job.started_at)
            self.metrics.observe(
                "job_queue_wait", job.started_at - job.submitted_at,
            )
        self.metrics.observe("job_latency", job.finished_at - job.submitted_at)

    # -------------------------------------------------------- worker wire --

    def register_worker(self, body: Dict[str, Any]) -> Dict[str, Any]:
        name = str(body.get("name", ""))
        pid = int(body.get("pid", 0) or 0)
        capabilities = body.get("capabilities") or {}
        worker = self.registry.register(
            name=name, pid=pid, capabilities=capabilities,
        )
        _log.info(
            "worker %s registered as %s (pid %d)",
            worker.name, worker.id, pid,
        )
        if self._tracer is not None:
            self._tracer.event(
                "fleet_worker_registered", worker=worker.id, name=worker.name,
            )
        directory = self.artifacts.directory
        return {
            "worker": worker.id,
            "name": worker.name,
            "lease_ttl": self.registry.lease_ttl,
            "lease_batch": self.lease_batch,
            "max_inflight": self.router.max_inflight,
            "settings": serialize.to_jsonable(self.settings),
            "cache_dir": str(directory) if directory is not None else None,
            "default_backend": self.default_backend,
        }

    def heartbeat_worker(self, body: Dict[str, Any]) -> Dict[str, Any]:
        worker = self.registry.heartbeat(str(body.get("worker", "")))
        reported = body.get("metrics")
        if isinstance(reported, dict) and reported:
            self.federation.report(worker.id, worker.name, reported)
        return {
            "ok": True,
            "draining": worker.draining or self.draining,
            "shutdown": self._stopping,
        }

    def _backlog_drained(self) -> bool:
        """No runnable work anywhere: queued, running, pending or leased."""
        counts = self.router.counts()
        return (
            self.queue.depth() == 0
            and self.queue.counts_by_state()["running"] == 0
            and counts["pending"] == 0
            and counts["leased"] == 0
        )

    async def lease_tasks(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """Long-poll lease: waits up to ``wait`` seconds for work.

        A coordinator-level drain does NOT send workers away while backlog
        remains — draining means "finish what's accepted, refuse what
        isn't", so workers keep leasing until the backlog is gone.  A
        per-worker drain flag sends that worker away immediately.
        """
        worker_id = str(body.get("worker", ""))
        max_tasks = max(1, int(body.get("max", 1)))
        wait = min(float(body.get("wait", 0.0)), MAX_LEASE_WAIT)
        deadline = time.monotonic() + wait
        granted: List[TaskRecord] = []
        while True:
            worker = self.registry.heartbeat(worker_id)  # a lease renews too
            granted = self.router.lease(worker_id, max_tasks)
            if (
                granted
                or worker.draining
                or self._stopping
                or (self.draining and self._backlog_drained())
                or time.monotonic() >= deadline
            ):
                break
            await asyncio.sleep(0.02)
        for task in granted:
            self.metrics.observe(
                "task_lease_wait",
                max(0.0, task.leased_at - task.queued_at),
            )
            if self._tracer is not None:
                self._tracer.event(
                    "fleet_task_leased", corr=task.corr, task=task.id,
                    worker=worker_id, attempt=task.attempts,
                    cost_units=round(task.cost.units, 1),
                )
        return {
            "tasks": [
                {
                    "task": task.id,
                    "corr": task.corr,
                    # The W3C-traceparent-style context the worker restores
                    # before executing, so its spans join the job's tree.
                    "traceparent": format_traceparent(
                        task.corr, self._job_spans.get(task.job_id, ""),
                    ),
                    "attempt": task.attempts,
                    "priority": task.priority,
                    "spec": serialize.to_jsonable(task.spec),
                }
                for task in granted
            ],
            "draining": worker.draining or (
                self.draining and self._backlog_drained()
            ),
            "shutdown": self._stopping,
        }

    def complete_tasks(self, body: Dict[str, Any]) -> Dict[str, Any]:
        worker_id = str(body.get("worker", ""))
        self.registry.heartbeat(worker_id)
        results = body.get("results")
        if not isinstance(results, list) or not results:
            raise ProtocolError("'results' must be a non-empty list")
        # Validate the whole batch BEFORE applying any of it: a malformed
        # entry mid-list must not leave the worker holding an error answer
        # for a partially-accepted batch.
        parsed: List[Tuple[str, JobResult]] = []
        for position, entry in enumerate(results):
            if not isinstance(entry, dict) or "task" not in entry:
                raise ProtocolError(
                    f"results[{position}] needs 'task' and 'result' fields"
                )
            try:
                result = JobResult.from_dict(entry.get("result"))
            except Exception as exc:
                raise ProtocolError(
                    f"results[{position}] ({entry.get('task')!r}) does not "
                    f"decode as a JobResult: {exc}"
                ) from None
            parsed.append((str(entry["task"]), result))
        accepted = 0
        stale = 0
        for task_id, result in parsed:
            task = self.complete_task(worker_id, task_id, result)
            if task is None:
                stale += 1
            elif task.state in ("done", "failed", "pending"):
                accepted += 1
        return {"ok": True, "accepted": accepted, "stale": stale}

    def leave_worker(self, body: Dict[str, Any]) -> Dict[str, Any]:
        worker_id = str(body.get("worker", ""))
        worker = self.registry.deregister(worker_id)
        released = self.router.release_worker(worker_id)
        self.federation.forget(worker_id)
        for job_id in {task.job_id for task in released}:
            self._maybe_finish_job(job_id)
        if worker is not None:
            _log.info("worker %s (%s) left", worker.name, worker.id)
        return {"ok": True, "released": len(released)}

    def drain_worker(self, body: Dict[str, Any]) -> Dict[str, Any]:
        raw = body.get("worker")
        self.registry.drain(str(raw) if raw else None)
        return {"ok": True}

    def fleet_status(self) -> Dict[str, Any]:
        counts = self.router.counts()
        return {
            "workers": self.registry.status_payload(),
            "tasks": counts,
            "task_table": self.router.status_payload()[:200],
            "queue_depth": self.queue.depth(),
            "jobs": self.queue.counts_by_state(),
            "outstanding_cost_units": round(
                self.router.outstanding_cost(), 1,
            ),
            "retry_after_hint": round(self._retry_after_hint(), 1),
            "draining": self.draining,
        }

    # -------------------------------------------------------------- health --

    def health_payload(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self.draining else "ok",
            "mode": "fleet",
            "uptime_seconds": (
                time.time() - self._started_at if self._started_at else 0.0
            ),
            "queue_depth": self.queue.depth(),
            "jobs": self.queue.counts_by_state(),
            "backends": list(backend_names()),
            "fleet": {
                "workers": len(self.registry.live_workers()),
                "accepting_workers": len(self.registry.accepting_workers()),
                "tasks": self.router.counts(),
            },
            "dispatcher_alive": self._dispatcher.is_alive(),
            "settings": {
                "warmup": self.settings.warmup,
                "measure": self.settings.measure,
                "seed": self.settings.seed,
                "calibrate": self.settings.calibrate,
            },
            "workers": len(self.registry.live_workers()),
        }

    # -------------------------------------------------------------- metrics --

    def _register_metrics(self) -> None:
        self.metrics.gauge(
            "queue_depth", self.queue.depth, help="jobs waiting to run",
        )
        for state in JobState:
            self.metrics.gauge(
                f"jobs_{state.value}",
                lambda s=state.value: self.queue.counts_by_state()[s],
                help=f"jobs currently in state {state.value}",
            )
        self.metrics.gauge(
            "fleet_workers", lambda: len(self.registry.live_workers()),
            help="workers holding a fresh lease",
        )
        self.metrics.gauge(
            "fleet_workers_draining",
            lambda: sum(
                1 for w in self.registry.live_workers() if w.draining
            ),
            help="live workers flagged to drain",
        )
        self.metrics.gauge(
            "fleet_workers_evicted_total",
            lambda: self.registry.evicted_total,
            help="workers evicted after missed heartbeats",
        )
        for state in ("pending", "leased", "done", "failed"):
            self.metrics.gauge(
                f"fleet_tasks_{state}",
                lambda s=state: self.router.counts()[s],
                help=f"fleet tasks currently {state}",
            )
        self.metrics.gauge(
            "fleet_tasks_requeued_total",
            lambda: self.router.requeued_total,
            help="task leases returned to the pending pool",
        )
        self.metrics.gauge(
            "fleet_outstanding_cost_units",
            lambda: self.router.outstanding_cost(),
            help="predicted cost units pending or leased",
        )
        self.metrics.gauge(
            "fleet_lease_age_oldest_seconds",
            lambda: max(
                (age for ages in self.router.lease_ages().values()
                 for age in ages),
                default=0.0,
            ),
            help="age of the oldest live lease across the fleet",
        )
        self.artifacts.stats.register_metrics(self.metrics)
        self.metrics.describe(
            "jobs_submitted_total", "job submissions accepted",
        )
        self.metrics.describe(
            "jobs_deduped_total",
            "submissions attached to an identical in-flight job",
        )
        self.metrics.describe(
            "fleet_result_cache_hits_total",
            "submissions served from the cluster result store",
        )
        self.metrics.describe(
            "jobs_shed_total",
            "queued jobs shed for higher-priority submissions",
        )
        self.metrics.describe("http_requests_total", "HTTP requests served")
        self.metrics.describe(
            "fleet_tasks_done_total", "tasks completed successfully",
        )
        self.metrics.describe(
            "fleet_tasks_retried_total", "failed task attempts requeued",
        )
        self.metrics.describe(
            "fleet_tasks_failed_total", "tasks that exhausted their retries",
        )
        self.metrics.describe(
            "fleet_tasks_stale_total",
            "late completions ignored because their job already settled",
        )
        self.metrics.describe(
            "task_exec", "task execution time (lease to completion)",
        )
        self.metrics.describe(
            "task_lease_wait", "time tasks spent pending before a lease",
        )
        self.metrics.describe(
            "job_assemble", "time merging/serializing finished job payloads",
        )
        self.metrics.describe(
            "job_exec", "job execution time (dispatch to finish)",
        )
        self.metrics.describe(
            "job_queue_wait", "time jobs spent queued before dispatch",
        )
        self.metrics.describe(
            "job_latency", "end-to-end job latency (submit to finish)",
        )

    def refresh_fleet_gauges(self) -> None:
        """Materialize per-worker labeled gauges for a ``/metrics`` scrape.

        Point-in-time state (inflight leases, oldest lease age) is rebuilt
        from the router/registry on every scrape, so series for departed
        workers disappear instead of freezing at a stale value.  Federated
        *counter* series (``fleet_worker_*_total``) are the opposite —
        retained forever by :class:`MetricsFederation` — because counters
        must never step backward.
        """
        inflight = self.router.inflight_by_worker()
        ages = self.router.lease_ages()
        for family in ("fleet_worker_inflight", "fleet_worker_lease_age_oldest"):
            self.metrics.remove_labeled(family)
        for worker in self.registry.live_workers():
            labels = {"worker": worker.name}
            self.metrics.set_labeled(
                "fleet_worker_inflight", labels,
                float(inflight.get(worker.id, 0)),
                help="tasks currently leased, by worker",
            )
            self.metrics.set_labeled(
                "fleet_worker_lease_age_oldest", labels,
                max(ages.get(worker.id, [0.0]), default=0.0),
                help="age in seconds of the worker's oldest live lease",
            )


# ------------------------------------------------------------ HTTP front --


class _AsyncFrontend:
    """Minimal asyncio HTTP/1.1 server bound to one coordinator.

    Runs its own event loop on a daemon thread so the coordinator embeds
    in tests and the CLI the same way :class:`ReproService` does.  Replaces
    the thread-per-request blocking accept loop: every connection is a
    coroutine, so hundreds of concurrent clients (and long-polling
    workers) cost one thread total.
    """

    def __init__(
        self, coordinator: FleetCoordinator, host: str, port: int,
    ) -> None:
        self.coordinator = coordinator
        self.host = host
        self.port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="fleet-http", daemon=True,
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise self._startup_error

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._handle_conn, self.host, self.port)
            )
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._server = server
        sockname = server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    # ------------------------------------------------------------ protocol --

    @staticmethod
    async def _offload(func: Any, *args: Any) -> Any:
        """Run blocking work on the default executor.

        Anything that can take more than a few milliseconds — parsing a
        multi-MB worker completion, merging shard results, serializing a
        finished job payload — must leave the event-loop thread, or every
        heartbeat and lease long-poll stalls behind it and a long enough
        stall (lease_ttl * grace) mass-evicts perfectly healthy workers.
        """
        return await asyncio.get_running_loop().run_in_executor(
            None, func, *args,
        )

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line in (b"\r\n", b"\n"):
                    break
                try:
                    method, target, version = (
                        request_line.decode("latin-1").split()
                    )
                except ValueError:
                    await self._write(
                        writer, 400, {"error": "malformed request line"},
                        close=True,
                    )
                    break
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = line.decode("latin-1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length") or 0)
                    if length < 0:
                        raise ValueError(length)
                except ValueError:
                    await self._write(
                        writer, 400,
                        {"error": "invalid Content-Length header"},
                        close=True,
                    )
                    break
                limit = (
                    MAX_WORKER_BODY_BYTES
                    if target.startswith("/v1/fleet/") else MAX_BODY_BYTES
                )
                if length > limit:
                    await self._write(
                        writer, 413,
                        {"error": f"request body exceeds {limit} bytes"},
                        close=True,
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                status, payload, extra, is_text = await self._dispatch(
                    method, target, body,
                )
                keep = (
                    version == "HTTP/1.1"
                    and headers.get("connection", "").lower() != "close"
                )
                await self._write(
                    writer, status, payload, extra_headers=extra,
                    is_text=is_text, close=not keep,
                )
                if not keep:
                    break
        except (
            asyncio.IncompleteReadError, ConnectionError, TimeoutError,
        ):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        extra_headers: Optional[Dict[str, str]] = None,
        is_text: bool = False,
        close: bool = False,
    ) -> None:
        if is_text:
            body = str(payload).encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            if isinstance(payload, dict):
                payload = {"v": PROTOCOL_VERSION, **payload}
            # Serialized off-loop: a finished sharded job's payload can be
            # tens of MB, and dumps of that size on the loop thread would
            # stall every heartbeat behind it.
            body = await self._offload(self._encode_json, payload)
            content_type = "application/json"
        reason = {
            200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            409: "Conflict", 410: "Gone", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable",
        }.get(status, "OK")
        head = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Server: repro-fleet/1.0",
        ]
        for key, value in (extra_headers or {}).items():
            head.append(f"{key}: {value}")
        if close:
            head.append("Connection: close")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
        )
        await writer.drain()

    @staticmethod
    def _encode_json(payload: Any) -> bytes:
        return json.dumps(payload, indent=2).encode("utf-8")

    async def _dispatch(
        self, method: str, target: str, body: bytes,
    ) -> Tuple[int, Any, Optional[Dict[str, str]], bool]:
        """Route one request; never raises (errors become JSON answers)."""
        coord = self.coordinator
        coord.metrics.inc("http_requests_total")
        path, _, query = target.partition("?")
        path = path.rstrip("/") or "/"
        try:
            payload: Any = None
            if body:
                try:
                    if len(body) > MAX_BODY_BYTES:
                        # Worker completion bodies run to tens of MB;
                        # parse them off-loop (see _offload).
                        payload = await self._offload(json.loads, body)
                    else:
                        payload = json.loads(body)
                except json.JSONDecodeError as exc:
                    raise ProtocolError(f"invalid JSON: {exc}") from None
            if method == "GET":
                return await self._get(path, query)
            if method == "POST":
                return await self._post(path, payload)
            if method == "DELETE":
                return self._delete(path)
            return 404, {"error": f"unsupported method {method}"}, None, False
        except ProtocolError as exc:
            return (
                exc.status,
                {"error": str(exc), "code": exc.code},
                None, False,
            )
        except SaturatedError as exc:
            return (
                exc.status,
                {
                    "error": str(exc),
                    "code": exc.code,
                    "retry_after": exc.retry_after,
                },
                {"Retry-After": str(exc.retry_after)},
                False,
            )
        except UnknownWorkerError as exc:
            return 410, {"error": str(exc), "code": exc.code}, None, False
        except QueueFullError as exc:
            hint = max(1, int(round(coord._retry_after_hint())))
            return (
                429,
                {"error": str(exc), "code": "saturated",
                 "retry_after": hint},
                {"Retry-After": str(hint)},
                False,
            )
        except Exception as exc:  # never leak a traceback as a reset socket
            return (
                500,
                {
                    "error": f"{type(exc).__name__}: {exc}",
                    "code": getattr(exc, "code", "internal-error"),
                },
                None, False,
            )

    async def _get(
        self, path: str, query: str,
    ) -> Tuple[int, Any, Optional[Dict[str, str]], bool]:
        coord = self.coordinator
        if path == "/healthz":
            return 200, coord.health_payload(), None, False
        if path == "/metrics":
            coord.refresh_fleet_gauges()
            if "format=json" in query:
                return 200, coord.metrics.to_dict(), None, False
            return 200, coord.metrics.render_prometheus(), None, True
        if path == "/v1/fleet/status":
            return 200, coord.fleet_status(), None, False
        if path == "/v1/jobs":
            jobs = [
                {
                    "id": job.id,
                    "kind": job.request.kind,
                    "description": job.request.describe(),
                    "state": job.state.value,
                    "priority": job.priority,
                }
                for job in coord.queue.list_jobs()
            ]
            return 200, {"jobs": jobs}, None, False
        if path.startswith("/v1/jobs/"):
            job = coord.queue.get(path.rsplit("/", 1)[1])
            if job is None:
                return 404, {"error": "unknown job id"}, None, False
            return 200, job.status_payload(), None, False
        return 404, {"error": f"unknown path {path}"}, None, False

    async def _post(
        self, path: str, payload: Any,
    ) -> Tuple[int, Any, Optional[Dict[str, str]], bool]:
        coord = self.coordinator
        if path == "/v1/jobs":
            if payload is None:
                raise ProtocolError("request body must be JSON")
            job, deduped = coord.submit(payload)
            return (
                202,
                {
                    "id": job.id,
                    "state": job.state.value,
                    "deduped": deduped,
                    "description": job.request.describe(),
                },
                None, False,
            )
        if path.startswith("/v1/fleet/"):
            if payload is None:
                payload = {}
            verb = path.rsplit("/", 1)[1]
            if verb == "register":
                return 200, coord.register_worker(payload), None, False
            if verb == "heartbeat":
                return 200, coord.heartbeat_worker(payload), None, False
            if verb == "lease":
                return 200, await coord.lease_tasks(payload), None, False
            if verb == "complete":
                # Decoding JobResults, job assembly and shard merging are
                # seconds of work for big jobs — run them off-loop so
                # heartbeats and lease polls keep flowing.
                answer = await self._offload(coord.complete_tasks, payload)
                return 200, answer, None, False
            if verb == "leave":
                # Can trigger job assembly via _maybe_finish_job.
                answer = await self._offload(coord.leave_worker, payload)
                return 200, answer, None, False
            if verb == "drain":
                return 200, coord.drain_worker(payload), None, False
        return 404, {"error": f"unknown path {path}"}, None, False

    def _delete(
        self, path: str,
    ) -> Tuple[int, Any, Optional[Dict[str, str]], bool]:
        coord = self.coordinator
        if not path.startswith("/v1/jobs/"):
            return 404, {"error": f"unknown path {path}"}, None, False
        job_id = path.rsplit("/", 1)[1]
        job = coord.queue.get(job_id)
        if job is None:
            return 404, {"error": "unknown job id"}, None, False
        outcome = coord.queue.cancel(job_id)
        if outcome:
            coord.metrics.inc("jobs_cancelled_total")
            coord._end_job_trace(job, state="cancelled")
            return (
                200,
                {
                    "id": job_id,
                    "cancelled": True,
                    "detached": outcome == "detached",
                },
                None, False,
            )
        return (
            409,
            {
                "error": (
                    f"job {job_id} is {job.state.value}; only queued jobs "
                    f"can be cancelled"
                ),
            },
            None, False,
        )


# ----------------------------------------------------------------- serve --


def serve_fleet(
    host: str = "127.0.0.1",
    port: int = 8137,
    settings: Optional[ExperimentSettings] = None,
    cache_dir: Any = "auto",
    queue_capacity: int = 256,
    lease_ttl: float = 5.0,
    max_inflight: int = 2,
    lease_batch: int = 4,
    drain_timeout: float = 30.0,
    log_level: str = "info",
    log_format: str = "text",
    obs: Optional[ObsOptions] = None,
    default_backend: str = "",
) -> int:
    """Run a fleet coordinator in the foreground until interrupted.

    SIGTERM (and Ctrl-C) triggers a graceful drain: stop accepting, let
    workers finish or checkpoint in-flight work within *drain_timeout*,
    then exit — nonzero when work had to be abandoned.
    """
    setup_logging(level=log_level, fmt=log_format)
    log = get_logger("fleet")
    coordinator = FleetCoordinator(
        host=host,
        port=port,
        settings=settings,
        cache_dir=cache_dir,
        queue_capacity=queue_capacity,
        lease_ttl=lease_ttl,
        max_inflight=max_inflight,
        lease_batch=lease_batch,
        obs=obs,
        default_backend=default_backend,
    )
    stop_event = threading.Event()

    def _signalled(signum: int, frame: Any) -> None:
        stop_event.set()

    signal.signal(signal.SIGTERM, _signalled)
    signal.signal(signal.SIGINT, _signalled)
    coordinator.start()
    log.info("repro fleet coordinator listening on %s", coordinator.url)
    if obs is not None and obs.trace_dir is not None:
        log.info("tracing to %s", obs.trace_dir)
    stop_event.wait()
    log.info("draining (timeout %.1fs)", drain_timeout)
    abandoned = coordinator.drain(timeout=drain_timeout)
    # Give workers one heartbeat round to observe the drain flag and leave.
    deadline = time.monotonic() + coordinator.registry.lease_ttl
    while coordinator.registry.count() and time.monotonic() < deadline:
        time.sleep(0.05)
    coordinator.stop()
    log.info("shutting down (%d work item(s) abandoned)", abandoned)
    return 1 if abandoned else 0
