"""Analytical per-job cost estimation for fleet routing and admission.

The router and the admission controller need a cost signal *before* a job
runs — simulating to find out how expensive a simulation is would defeat
the point.  Following the ECM (Execution-Cache-Memory) modelling style
(see PAPERS.md), the estimate is assembled additively from workload
statistics the repo already owns: each :class:`~repro.workloads.profiles
.WorkloadProfile` publishes its instruction mix and off-chip miss rates
(Table 1 of the source paper), and the simulator's work per instruction
decomposes into

- a base per-instruction charge (dispatch/commit bookkeeping),
- an epoch charge: epochs close on serializing instructions and on
  store-buffer pressure, so predicted epochs/instruction follows the lock
  density plus the store-miss rate divided by the mean store burst length
  (a burst of clustered store misses shares one epoch),
- a miss charge for the memory-system work of the load/store/instruction
  misses themselves.

The absolute unit is arbitrary ("cost units" ~ predicted relative wall
time); routing only needs *ordering* and *proportions* to balance workers,
and admission control divides outstanding cost by the observed completion
rate (units/second) to compute a defensible ``Retry-After``.

Backends scale the estimate down by their measured speedups over the
reference loop; shard spans scale it by the fraction of the trace they
cover.  Speedups come from the committed ``BENCH_backends.json`` when it
is readable (``$REPRO_BENCH_BACKENDS`` overrides the path) and degrade
gracefully to the documented defaults in :data:`_BACKEND_SPEEDUP` when
the file is absent or malformed; a backend known to neither gets the
reference charge of 1.0 — overestimating is the safe direction for both
admission control and the tuner's pruning, which now also builds on this
module's epoch model (:func:`epochs_per_inst`).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional

from ..estimate import epochs_per_inst
from ..workloads import WORKLOADS, WorkloadProfile

if TYPE_CHECKING:
    from ..engine.runner import JobSpec
    from ..harness.experiment import ExperimentSettings

__all__ = [
    "CostEstimate",
    "backend_speedup",
    "backend_speedups",
    "epochs_per_inst",
    "estimate_job_cost",
]

#: Relative per-instruction charges (dimensionless; calibrated so one
#: reference-backend instruction ~ 1 unit on an average profile).
_BASE_PER_INST = 0.55
_EPOCH_CHARGE = 14.0
_MISS_CHARGE = 6.0
_LOCK_CHARGE = 3.0

#: Documented default throughput multipliers by effective backend
#: (reference = 1), used whenever BENCH_backends.json is absent or
#: unreadable.  Unknown backends fall back to the reference charge —
#: overestimating is the safe direction for admission control.
_BACKEND_SPEEDUP: Dict[str, float] = {
    "reference": 1.0,
    "event": 3.6,
    "batch": 4.8,
}

#: Environment override for the benchmark report the speedups load from.
_BENCH_ENV = "REPRO_BENCH_BACKENDS"

#: Cache of (path, loaded speedups); invalidated by :func:`_reset_speedups`.
_SPEEDUP_CACHE: Dict[str, Dict[str, float]] = {}


def _reset_speedups() -> None:
    """Drop the loaded-speedup cache (tests poke the path/env)."""
    _SPEEDUP_CACHE.clear()


def backend_speedups(path: "str | Path | None" = None) -> Dict[str, float]:
    """Per-backend speedups vs the reference loop, measured if possible.

    Reads the committed ``BENCH_backends.json`` matrix report (*path*,
    else ``$REPRO_BENCH_BACKENDS``, else ``BENCH_backends.json`` in the
    working directory) and derives each backend's speedup as the ratio of
    its aggregate instructions/sec geomean to the reference backend's.
    Every failure mode — file absent, unparseable JSON, missing
    aggregates, zero reference throughput — degrades to the documented
    defaults in :data:`_BACKEND_SPEEDUP`; backends the file does not
    report keep their default (or are simply absent, in which case
    :func:`backend_speedup` charges them as reference).
    """
    resolved = str(
        path if path is not None
        else os.environ.get(_BENCH_ENV) or "BENCH_backends.json"
    )
    cached = _SPEEDUP_CACHE.get(resolved)
    if cached is not None:
        return cached
    speedups = dict(_BACKEND_SPEEDUP)
    try:
        with open(resolved, "r", encoding="utf-8") as handle:
            report = json.load(handle)
        backends = report["backends"]
        reference = float(
            backends["reference"]["aggregate"]["instructions_per_sec_geomean"]
        )
        if reference <= 0:
            raise ValueError("non-positive reference throughput")
        for name, entry in backends.items():
            rate = float(entry["aggregate"]["instructions_per_sec_geomean"])
            if rate > 0:
                speedups[name] = rate / reference
    except (OSError, ValueError, KeyError, TypeError):
        speedups = dict(_BACKEND_SPEEDUP)
    _SPEEDUP_CACHE[resolved] = speedups
    return speedups


def backend_speedup(backend: str, path: "str | Path | None" = None) -> float:
    """The speedup for one *backend*; 1.0 (reference charge) if unknown."""
    return backend_speedups(path).get(backend, 1.0)


@dataclass(frozen=True)
class CostEstimate:
    """Predicted resource demand of one engine job.

    ``units`` is the scalar the router balances on; the component fields
    exist so ``mlpsim fleet status`` and tests can explain *why* a job was
    judged expensive.
    """

    units: float
    instructions: int
    predicted_epochs: float
    predicted_misses: float
    backend: str = "reference"

    def scaled(self, factor: float) -> "CostEstimate":
        return CostEstimate(
            units=self.units * factor,
            instructions=int(self.instructions * factor),
            predicted_epochs=self.predicted_epochs * factor,
            predicted_misses=self.predicted_misses * factor,
            backend=self.backend,
        )


# The epoch model itself is canonical in repro.estimate (the `estimate`
# verb); the top-of-module import above re-exports it so cost callers
# and tests keep their import path.

#: Backwards-compatible alias (pre-tune internal name).
_epochs_per_inst = epochs_per_inst


def _misses_per_inst(profile: WorkloadProfile) -> float:
    return (
        profile.store_miss_per_100
        + profile.load_miss_per_100
        + profile.inst_miss_per_100
    ) / 100.0


def estimate_job_cost(
    spec: "JobSpec",
    settings: "ExperimentSettings",
    profile: Optional[WorkloadProfile] = None,
) -> CostEstimate:
    """Estimate the cost of executing *spec* under *settings*.

    Pure arithmetic on published workload statistics — no trace is read,
    no simulation runs.  Shard spans (``shard_start``/``shard_stop``)
    prorate the whole-trace estimate by the span's share of the trace.
    """
    if profile is None:
        profile = WORKLOADS.get(spec.workload)
    total = max(1, settings.total)
    if profile is None:
        # Unknown workload (custom profile not registered here): charge a
        # neutral average so routing still balances by span length.
        per_inst = _BASE_PER_INST + _EPOCH_CHARGE * 0.004 + _MISS_CHARGE * 0.02
        epochs = 0.004 * total
        misses = 0.02 * total
    else:
        epi = epochs_per_inst(profile)
        mpi = _misses_per_inst(profile)
        per_inst = (
            _BASE_PER_INST
            + _EPOCH_CHARGE * epi
            + _MISS_CHARGE * mpi
            + _LOCK_CHARGE * (profile.locks_per_1000 / 1000.0)
        )
        epochs = epi * total
        misses = mpi * total

    backend = spec.effective_backend()
    speedup = backend_speedup(backend)
    if spec.action == "annotate":
        # Cache warming is generation + annotation, no simulation loop:
        # charge the base bookkeeping only.
        units = _BASE_PER_INST * total
        return CostEstimate(
            units=units, instructions=total,
            predicted_epochs=0.0, predicted_misses=misses, backend=backend,
        )
    estimate = CostEstimate(
        units=per_inst * total / speedup,
        instructions=total,
        predicted_epochs=epochs,
        predicted_misses=misses,
        backend=backend,
    )
    start = spec.shard_start if spec.shard_start >= 0 else 0
    stop = spec.shard_stop if spec.shard_stop >= 0 else total
    span = max(0, min(stop, total) - start)
    if span and span < total:
        estimate = estimate.scaled(span / total)
    return estimate
