"""Metrics federation: fold worker-reported totals into labeled series.

Workers piggyback their cumulative engine/simulation counters on every
heartbeat; the coordinator publishes them on its own ``/metrics`` as

- ``fleet_worker_<metric>{worker="<name>"}`` — one labeled counter series
  per worker *name*, and
- ``fleet_<metric>`` — the fleet-wide total, a gauge sampled at scrape
  (skipped when the coordinator already owns a metric of that name, e.g.
  its own ``fleet_tasks_done_total`` counter — one exposition family per
  name).

Federation protocol
-------------------

Reports are **absolute cumulative totals within one registration epoch**,
not deltas.  A worker snapshots a baseline when it (re)joins and reports
``current − baseline`` on each heartbeat, so:

- reports are idempotent — a heartbeat retried after a lost response, or
  applied twice, cannot double-count (the coordinator *sets* the series,
  it never adds),
- an evicted worker loses nothing it already reported: on evict/leave the
  coordinator folds the worker's last reported totals into a retained
  bucket keyed by worker *name*, so fleet totals never step backward,
- a worker rejoining under the same name continues its labeled series
  monotonically: ``series = retained[name] + live[new registration]``,
  and the rejoining worker's fresh baseline guarantees the live half
  starts at zero.

Only the coordinator's registry knows worker *ids* (one per
registration); metric labels use worker *names* (stable across restarts)
so dashboards and the scrape-and-parse tests key on something humans
chose.
"""

from __future__ import annotations

import threading
from typing import Dict, Set

from ..obs.metrics import MetricsRegistry

__all__ = ["MetricsFederation"]


class MetricsFederation:
    """Per-worker counter federation over one :class:`MetricsRegistry`."""

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.metrics = metrics
        self._lock = threading.Lock()
        #: worker id -> totals reported on the latest heartbeat (this
        #: registration epoch only).
        self._live: Dict[str, Dict[str, float]] = {}
        #: worker id -> the worker *name* its series are labeled with.
        self._names: Dict[str, str] = {}
        #: worker name -> totals folded in from past registrations.
        self._retained: Dict[str, Dict[str, float]] = {}
        #: metric names for which a fleet-total gauge is registered.
        self._published: Set[str] = set()

    def report(
        self, worker_id: str, name: str, totals: Dict[str, float],
    ) -> None:
        """Apply one heartbeat's totals for *worker_id* (labeled *name*)."""
        clean = {
            str(metric): float(value)
            for metric, value in totals.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        if not clean:
            return
        with self._lock:
            self._live[worker_id] = clean
            self._names[worker_id] = name
            retained = self._retained.get(name, {})
            to_set = {
                metric: retained.get(metric, 0.0) + value
                for metric, value in clean.items()
            }
            for metric in clean:
                if metric in self._published:
                    continue
                self._published.add(metric)
                # The coordinator may already own ``fleet_<metric>`` (its
                # own fleet_tasks_done_total counter, say); registering a
                # gauge over the same name would render two conflicting
                # exposition families.  The name is taken — skip the
                # convenience total, the labeled series still carry the
                # per-worker values.
                if self.metrics.has_metric(f"fleet_{metric}"):
                    continue
                self.metrics.gauge(
                    f"fleet_{metric}",
                    lambda m=metric: self.fleet_total(m),
                    help=f"fleet-wide total of worker-reported {metric}",
                )
        for metric, value in to_set.items():
            self.metrics.set_labeled(
                f"fleet_worker_{metric}",
                {"worker": name},
                value,
                kind="counter",
                help=f"worker-reported {metric}, federated by worker name",
            )

    def forget(self, worker_id: str) -> None:
        """Fold a departing/evicted worker's live totals into retention.

        Its labeled series stay on ``/metrics`` at their last value (a
        counter must never disappear and reappear lower); a successor
        registration under the same name resumes them monotonically.
        """
        with self._lock:
            live = self._live.pop(worker_id, None)
            name = self._names.pop(worker_id, "")
            if not live or not name:
                return
            retained = self._retained.setdefault(name, {})
            for metric, value in live.items():
                retained[metric] = retained.get(metric, 0.0) + value

    def fleet_total(self, metric: str) -> float:
        """Current fleet-wide total for *metric* (retained + live)."""
        with self._lock:
            total = sum(
                totals.get(metric, 0.0) for totals in self._retained.values()
            )
            total += sum(
                totals.get(metric, 0.0) for totals in self._live.values()
            )
            return total

    def worker_names(self) -> Set[str]:
        """Names with a live or retained series (for gauge refresh)."""
        with self._lock:
            return set(self._retained) | set(self._names.values())
