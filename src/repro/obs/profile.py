"""Sampling wall-time profiler for engine phases.

The engine pipeline has a handful of coarse phases per job — calibrate,
generate, annotate, simulate, encode — whose relative cost explains where a
sweep's wall time went.  :class:`PhaseProfiler` times them with a
deterministic sampling policy (every N-th entry of each phase, derived from
``sample_rate``) so always-on profiling of a million-job service costs a
counter increment on unsampled entries and two clock reads on sampled ones.

Sampled durations accumulate per phase (count/total/max) and, when a
:class:`~repro.obs.trace.Tracer` is attached, each sample is also emitted
as a ``phase`` trace event.  :meth:`register_metrics` exposes the
aggregates as gauges on a :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from .metrics import MetricsRegistry
from .trace import Tracer

__all__ = ["PhaseProfiler"]


class _PhaseStats:
    __slots__ = ("entries", "sampled", "total", "max")

    def __init__(self) -> None:
        self.entries = 0
        self.sampled = 0
        self.total = 0.0
        self.max = 0.0


class PhaseProfiler:
    """Deterministic sampling profiler (``sample_rate`` of entries timed)."""

    def __init__(
        self,
        sample_rate: float = 1.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        #: Time every ``stride``-th entry of each phase.
        self.stride = max(1, round(1.0 / sample_rate))
        self.tracer = tracer
        self._stats: Dict[str, _PhaseStats] = {}

    @contextmanager
    def phase(self, name: str, **attrs: Any) -> Iterator[None]:
        """Time (every N-th entry of) one phase."""
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = _PhaseStats()
        stats.entries += 1
        if (stats.entries - 1) % self.stride:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - start
            stats.sampled += 1
            stats.total += duration
            if duration > stats.max:
                stats.max = duration
            if self.tracer is not None:
                self.tracer.event("phase", name, dur=duration, **attrs)

    # ----------------------------------------------------------- exports --

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-phase aggregates over the sampled entries."""
        return {
            name: {
                "entries": stats.entries,
                "sampled": stats.sampled,
                "total_seconds": stats.total,
                "mean_seconds": (
                    stats.total / stats.sampled if stats.sampled else 0.0
                ),
                "max_seconds": stats.max,
            }
            for name, stats in sorted(self._stats.items())
        }

    def register_metrics(
        self, registry: MetricsRegistry, prefix: str = "engine_phase",
    ) -> None:
        """Expose each phase's sampled mean/max as gauges on *registry*."""
        for name in self._stats:
            stats = self._stats[name]
            registry.gauge(
                f"{prefix}_{name}_mean_seconds",
                lambda s=stats: s.total / s.sampled if s.sampled else 0.0,
                help=f"mean sampled wall time of the {name} phase",
            )
            registry.gauge(
                f"{prefix}_{name}_max_seconds",
                lambda s=stats: s.max,
                help=f"max sampled wall time of the {name} phase",
            )
