"""Fleet job timelines: phase decomposition and critical paths.

The fleet writes one logical trace per job spread across many processes:
the coordinator emits the job's root span (``fleet_job``) plus the task
lifecycle events (``fleet_job_expanded``, ``fleet_task_leased``,
``fleet_task_complete``, ``fleet_worker_evicted``), and every worker's
engine/simulator spans parent into that root via the ``traceparent``
field on the wire (:mod:`repro.obs.context`).  This module joins those
pieces back together:

- :func:`span_tree` / :func:`connected_roots` — rebuild the span tree for
  one correlation ID and check it is a *single* connected tree (the fleet
  smoke's cross-worker assertion),
- :func:`job_timeline` — decompose one job's wall time into phases,
- :func:`critical_path` — the backbone segments behind that decomposition,
- :func:`aggregate_phases` — per-phase median/p99 across many jobs (the
  load-test's BENCH columns).

Phase model
-----------

A job's wall time (submit → finish) is tiled *exactly* by five phases, so
the phase sum always reconciles with measured wall time:

=============== ========================================================
``queued``      submit accepted → job claimed and expanded into tasks
``lease_wait``  backbone task expanded/requeued → leased by a worker
``recovery``    a backbone lease that died (worker evicted mid-shard) →
                the next lease's completion of the re-run; covers the
                lost execution tail, eviction detection and checkpoint
                resume
``executing``   backbone lease → that lease's own completion
``merging``     last task completion → job payload assembled/published
=============== ========================================================

The *backbone* is the chain that determines the finish time: the task
whose completion lands last.  Its lease/complete event sequence is cut
into contiguous segments — every moment between expansion and the last
completion belongs to exactly one phase.  All timestamps come from
coordinator-side events, so the decomposition needs no cross-machine
clock agreement; worker spans enrich the tree but never shift phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from .metrics import percentile

__all__ = [
    "JobTimeline",
    "PHASES",
    "Segment",
    "aggregate_phases",
    "connected_roots",
    "critical_path",
    "fleet_job_ids",
    "job_timeline",
    "render_timeline_report",
    "span_tree",
]

#: Phase names in presentation (and causal) order.
PHASES: Tuple[str, ...] = (
    "queued", "lease_wait", "recovery", "executing", "merging",
)


@dataclass
class Segment:
    """One contiguous slice of a job's wall time on the critical path."""

    phase: str
    start: float
    end: float
    detail: str = ""

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)


@dataclass
class JobTimeline:
    """One fleet job's reconstructed lifecycle."""

    job_id: str
    submitted: float = 0.0
    expanded: float = 0.0
    finished: float = 0.0
    state: str = ""
    task_count: int = 0
    backbone_task: str = ""
    workers: List[str] = field(default_factory=list)
    resumes: int = 0
    checkpoints: int = 0
    segments: List[Segment] = field(default_factory=list)

    @property
    def wall(self) -> float:
        return max(0.0, self.finished - self.submitted)

    @property
    def phases(self) -> Dict[str, float]:
        totals = {phase: 0.0 for phase in PHASES}
        for segment in self.segments:
            totals[segment.phase] += segment.duration
        return totals

    @property
    def phase_sum(self) -> float:
        return sum(segment.duration for segment in self.segments)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job": self.job_id,
            "state": self.state,
            "wall_seconds": self.wall,
            "phase_sum_seconds": self.phase_sum,
            "phases": self.phases,
            "tasks": self.task_count,
            "backbone_task": self.backbone_task,
            "workers": list(self.workers),
            "resumes": self.resumes,
            "checkpoints": self.checkpoints,
            "segments": [
                {
                    "phase": s.phase,
                    "start": s.start,
                    "end": s.end,
                    "seconds": s.duration,
                    "detail": s.detail,
                }
                for s in self.segments
            ],
        }


# -------------------------------------------------------------- span tree --


def span_tree(
    events: Iterable[Dict[str, Any]], corr: str,
) -> Dict[str, Dict[str, Any]]:
    """Spans of correlation *corr* keyed by span id.

    Each node is ``{"name", "parent", "start", "end", "dur", "children"}``
    — assembled from ``span_start`` / ``span_end`` pairs; a span whose end
    was lost (SIGKILLed worker) keeps ``end=None``.
    """
    nodes: Dict[str, Dict[str, Any]] = {}
    for event in events:
        if event.get("corr") != corr:
            continue
        kind = event.get("kind")
        if kind not in ("span_start", "span_end"):
            continue
        span_id = str(event.get("id", ""))
        if not span_id:
            continue
        node = nodes.setdefault(
            span_id,
            {
                "name": event.get("name", ""),
                "parent": str(event.get("parent", "")),
                "start": None,
                "end": None,
                "dur": None,
                "children": [],
            },
        )
        if kind == "span_start":
            node["start"] = event.get("ts")
        else:
            node["end"] = event.get("ts")
            node["dur"] = event.get("dur")
            node["name"] = event.get("name", node["name"])
            node["parent"] = str(event.get("parent", node["parent"]))
    for span_id, node in nodes.items():
        parent = nodes.get(node["parent"])
        if parent is not None:
            parent["children"].append(span_id)
    return nodes


def connected_roots(
    events: Iterable[Dict[str, Any]], corr: str,
) -> Set[str]:
    """Span ids acting as tree roots for *corr*.

    A fully propagated fleet job has exactly one root — the coordinator's
    ``fleet_job`` span; more than one means a process failed to restore
    its trace context and its spans float disconnected.
    """
    nodes = span_tree(events, corr)
    return {
        span_id
        for span_id, node in nodes.items()
        if node["parent"] not in nodes
    }


def fleet_job_ids(events: Iterable[Dict[str, Any]]) -> List[str]:
    """Correlation IDs with a ``fleet_job`` root span, in submit order."""
    seen: List[str] = []
    for event in events:
        if (
            event.get("kind") == "span_start"
            and event.get("name") == "fleet_job"
        ):
            corr = str(event.get("corr", ""))
            if corr and corr not in seen:
                seen.append(corr)
    return seen


# ----------------------------------------------------------- phase model --


def _job_events(
    events: Iterable[Dict[str, Any]], job_id: str,
) -> List[Dict[str, Any]]:
    picked = [e for e in events if e.get("corr") == job_id]
    picked.sort(key=lambda e: float(e.get("ts", 0.0)))
    return picked


def job_timeline(
    events: Iterable[Dict[str, Any]], job_id: str,
) -> Optional[JobTimeline]:
    """Reconstruct one job's phase decomposition (see the module docs).

    Returns ``None`` when the trace holds no ``fleet_job`` span for
    *job_id* (not a fleet job, or the coordinator was not tracing).
    """
    picked = _job_events(events, job_id)
    timeline = JobTimeline(job_id=job_id)
    saw_root = False
    saw_expanded = False
    saw_finish = False
    leases: Dict[str, List[Dict[str, Any]]] = {}
    completes: Dict[str, List[Dict[str, Any]]] = {}
    workers: List[str] = []
    for event in picked:
        kind = event.get("kind")
        name = event.get("name")
        ts = float(event.get("ts", 0.0))
        if kind == "span_start" and name == "fleet_job":
            timeline.submitted = ts
            saw_root = True
        elif kind == "span_end" and name == "fleet_job":
            timeline.finished = ts
            timeline.state = str(event.get("state", ""))
            saw_finish = True
        elif kind == "fleet_job_expanded":
            timeline.expanded = ts
            timeline.task_count = int(event.get("tasks", 0))
            saw_expanded = True
        elif kind == "fleet_task_leased":
            leases.setdefault(str(event.get("task", "")), []).append(event)
            worker = str(event.get("worker", ""))
            if worker and worker not in workers:
                workers.append(worker)
        elif kind == "fleet_task_complete":
            completes.setdefault(str(event.get("task", "")), []).append(event)
            if int(event.get("resumed_pos", -1)) >= 0:
                timeline.resumes += 1
            timeline.checkpoints += int(event.get("checkpoints", 0))
    if not saw_root:
        return None
    timeline.workers = workers
    if not saw_expanded:
        # Never expanded (cache hit or failed in expansion): the whole
        # wall is queue-side.
        timeline.expanded = (
            timeline.finished if saw_finish else timeline.submitted
        )
    if not saw_finish:
        # Job still in flight: decompose up to the last event seen.
        timeline.finished = max(
            (float(e.get("ts", 0.0)) for e in picked), default=0.0,
        )
        timeline.state = timeline.state or "running"

    timeline.segments.append(
        Segment("queued", timeline.submitted, timeline.expanded),
    )

    # The backbone task: the one whose terminal completion lands last.
    last_complete = timeline.expanded
    backbone = ""
    for task_id, done in completes.items():
        final = [e for e in done if e.get("state") in ("done", "failed")]
        tail = final[-1] if final else done[-1]
        ts = float(tail.get("ts", 0.0))
        if ts >= last_complete:
            last_complete = ts
            backbone = task_id
    timeline.backbone_task = backbone

    if backbone:
        marks: List[Tuple[float, str, Dict[str, Any]]] = []
        for event in leases.get(backbone, []):
            marks.append((float(event.get("ts", 0.0)), "lease", event))
        for event in completes.get(backbone, []):
            marks.append((float(event.get("ts", 0.0)), "complete", event))
        marks.sort(key=lambda m: m[0])
        cursor = timeline.expanded
        open_lease: Optional[Dict[str, Any]] = None
        for ts, what, event in marks:
            if ts > last_complete:
                break
            if what == "lease":
                if open_lease is None:
                    # pending → leased: the wait for a worker slot.
                    timeline.segments.append(
                        Segment(
                            "lease_wait", cursor, ts,
                            detail=f"attempt {event.get('attempt', '?')}",
                        ),
                    )
                else:
                    # Re-leased with no completion in between: the prior
                    # worker died.  Everything from the dead lease to the
                    # re-lease is recovery (lost tail + eviction + wait).
                    timeline.segments.append(
                        Segment(
                            "recovery", cursor, ts,
                            detail=(
                                f"worker {open_lease.get('worker', '?')} "
                                f"died; re-leased to "
                                f"{event.get('worker', '?')}"
                            ),
                        ),
                    )
                cursor = ts
                open_lease = event
            else:  # complete
                phase = "executing" if open_lease is not None else "recovery"
                timeline.segments.append(
                    Segment(
                        phase, cursor, ts,
                        detail=(
                            f"worker {event.get('worker', '?')}"
                            + (
                                f" resumed@{event.get('resumed_pos')}"
                                if int(event.get("resumed_pos", -1)) >= 0
                                else ""
                            )
                        ),
                    ),
                )
                cursor = ts
                open_lease = None
        if cursor < last_complete:
            timeline.segments.append(
                Segment("executing", cursor, last_complete),
            )

    timeline.segments.append(
        Segment("merging", last_complete, timeline.finished),
    )
    return timeline


def critical_path(
    events: Iterable[Dict[str, Any]], job_id: str,
) -> List[Segment]:
    """The backbone segments of *job_id* (empty when unknown)."""
    timeline = job_timeline(events, job_id)
    return timeline.segments if timeline is not None else []


def aggregate_phases(
    timelines: Iterable[JobTimeline],
) -> Dict[str, Dict[str, float]]:
    """Per-phase distribution across jobs: median/p99/mean seconds."""
    samples: Dict[str, List[float]] = {phase: [] for phase in PHASES}
    walls: List[float] = []
    for timeline in timelines:
        walls.append(timeline.wall)
        for phase, seconds in timeline.phases.items():
            samples[phase].append(seconds)
    out: Dict[str, Dict[str, float]] = {}
    for phase, values in samples.items():
        if not values:
            continue
        out[phase] = {
            "count": float(len(values)),
            "mean": sum(values) / len(values),
            "p50": percentile(values, 0.50),
            "p99": percentile(values, 0.99),
        }
    if walls:
        out["wall"] = {
            "count": float(len(walls)),
            "mean": sum(walls) / len(walls),
            "p50": percentile(walls, 0.50),
            "p99": percentile(walls, 0.99),
        }
    return out


# --------------------------------------------------------------- rendering --


def render_timeline_report(
    timeline: JobTimeline,
    events: Optional[Iterable[Dict[str, Any]]] = None,
) -> str:
    """Console rendering behind ``mlpsim obs critical-path``."""
    lines: List[str] = []
    lines.append(f"job {timeline.job_id}  [{timeline.state or 'unknown'}]")
    lines.append(
        f"  wall {timeline.wall:.3f}s across {timeline.task_count} task(s)"
        f" on {len(timeline.workers)} worker(s)"
        + (f"; {timeline.resumes} resume(s)" if timeline.resumes else "")
        + (
            f", {timeline.checkpoints} checkpoint(s)"
            if timeline.checkpoints else ""
        )
    )
    phases = timeline.phases
    wall = timeline.wall or 1.0
    lines.append("  phases:")
    for phase in PHASES:
        seconds = phases.get(phase, 0.0)
        bar = "#" * min(40, int(round(40.0 * seconds / wall)))
        lines.append(f"    {phase:<10} {seconds:9.3f}s  {bar}")
    lines.append(
        f"    {'sum':<10} {timeline.phase_sum:9.3f}s"
        f"  (wall {timeline.wall:.3f}s)"
    )
    if timeline.backbone_task:
        lines.append(f"  critical path (task {timeline.backbone_task}):")
        for segment in timeline.segments:
            if segment.duration < 1e-9 and not segment.detail:
                continue
            lines.append(
                f"    {segment.phase:<10} {segment.duration:9.3f}s"
                + (f"  {segment.detail}" if segment.detail else "")
            )
    if events is not None:
        roots = connected_roots(events, timeline.job_id)
        lines.append(
            f"  trace tree: {'connected' if len(roots) == 1 else 'SPLIT'}"
            f" ({len(roots)} root(s))"
        )
    return "\n".join(lines)
