"""Observability options threaded from the API/CLI down to workers.

:class:`ObsOptions` is the one knob bundle every layer understands: the
API and CLI build it, :class:`~repro.engine.runner.EngineRunner` carries
it, and — because it is a small frozen dataclass of plain values — it
pickles straight through ``ProcessPoolExecutor`` initargs so each worker
process can open its own per-process trace file.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional, Union

from .trace import Tracer, default_trace_file

__all__ = ["ObsOptions"]


@dataclass(frozen=True)
class ObsOptions:
    """What to observe and where to put it.

    Attributes
    ----------
    trace_dir:
        Directory for JSONL trace files (one ``trace-<pid>.jsonl`` per
        process).  ``None`` disables tracing entirely — the zero-overhead
        default.
    trace_epochs:
        Attach an :class:`~repro.obs.recorder.EpochTimelineRecorder` to
        every simulator run so each epoch close / termination / store
        stall becomes a trace event.
    profile_phases:
        Time engine phases with a sampling
        :class:`~repro.obs.profile.PhaseProfiler`.
    sample_rate:
        Fraction of phase entries the profiler times (deterministic
        every-N-th stride).
    trace_max_bytes:
        Size-based rotation threshold for trace files (0 disables
        rotation).  When a process's ``trace-<pid>.jsonl`` would exceed
        this, it is shifted to ``.1`` (``.N`` → ``.N+1``) and a fresh
        segment starts; readers span segments transparently.
    """

    trace_dir: Optional[str] = None
    trace_epochs: bool = True
    profile_phases: bool = False
    sample_rate: float = 1.0
    trace_max_bytes: int = 0

    @classmethod
    def for_trace(cls, trace_dir: Union[str, Path], **kwargs: object) -> "ObsOptions":
        """Options with tracing into *trace_dir* (the common case)."""
        return cls(trace_dir=str(trace_dir), **kwargs)  # type: ignore[arg-type]

    @property
    def enabled(self) -> bool:
        """Whether any observation is requested at all."""
        return self.trace_dir is not None or self.profile_phases

    def with_trace_dir(self, trace_dir: Union[str, Path]) -> "ObsOptions":
        return replace(self, trace_dir=str(trace_dir))

    def open_tracer(self) -> Optional[Tracer]:
        """A tracer on this process's per-PID file, or ``None`` if off."""
        if self.trace_dir is None:
            return None
        return Tracer(
            default_trace_file(self.trace_dir),
            max_bytes=self.trace_max_bytes,
        )
