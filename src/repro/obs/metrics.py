"""Thread-safe metrics shared by the core, engine and service layers.

Originally this registry was private to the HTTP service; it lives here
(its canonical and, since v2.0, only home — the ``repro.service.metrics``
shim was removed per the DESIGN.md timeline) so the engine (cache
hits/misses/evictions, batch retries, worker utilization) and the simulator
(epochs per 1k instructions, termination histogram, SB/SQ occupancy
high-water marks) report into the same ``/metrics`` endpoint as the
service's own counters.  Three metric kinds:

- **counters** — monotonic event counts (``jobs_submitted_total``,
  ``engine_batches_total``, HTTP requests),
- **gauges** — sampled-at-read callbacks (queue depth, cache tiers,
  telemetry aggregates),
- **latency summaries** — bounded reservoirs of observed durations with
  p50/p95/p99 computed on demand,
- **labeled series** — counter/gauge families keyed by a label set
  (``fleet_worker_inflight{worker="w0"}``), the substrate of fleet
  metrics federation: the coordinator materializes one series per worker
  plus a fleet total, and Prometheus-side aggregation works unchanged.

Two export formats: :meth:`MetricsRegistry.to_dict` (JSON) and
:meth:`MetricsRegistry.render_prometheus` (text exposition format 0.0.4,
with ``# HELP`` / ``# TYPE`` annotations on **every** metric, not just
summaries).  Help strings attach via :meth:`MetricsRegistry.describe` or
the ``help`` argument of the mutators; undescribed metrics get a generated
placeholder so scrapers that require HELP lines never choke.

Every mutator takes the registry lock, so handler threads, the dispatcher
and batch threads may all record concurrently.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

__all__ = ["MetricsRegistry", "percentile"]


def percentile(samples: Sequence[float], fraction: float) -> float:
    """The *fraction*-quantile of *samples* by linear interpolation."""
    if not samples:
        return 0.0
    if len(samples) == 1:
        return samples[0]
    ordered = sorted(samples)
    position = fraction * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def _escape_label(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Render a sample value: integral counts stay integral."""
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.6f}"


class MetricsRegistry:
    """Counters + gauges + latency reservoirs behind one lock."""

    #: Quantiles exported for every latency series, as
    #: (prometheus label, summary key, fraction).
    QUANTILES: Tuple[Tuple[str, str, float], ...] = (
        ("0.5", "p50", 0.50), ("0.95", "p95", 0.95), ("0.99", "p99", 0.99),
    )

    def __init__(self, namespace: str = "repro", reservoir: int = 2048) -> None:
        if reservoir < 1:
            raise ValueError("reservoir must hold at least one sample")
        self.namespace = namespace
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, Callable[[], float]] = {}
        #: name -> (count, sum, bounded sample window)
        self._latency: Dict[str, Tuple[int, float, Deque[float]]] = {}
        #: family name -> frozen label tuple -> value
        self._labeled: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
        #: family name -> "counter" | "gauge"
        self._labeled_kind: Dict[str, str] = {}
        self._help: Dict[str, str] = {}
        self._reservoir = reservoir

    # ------------------------------------------------------------ mutators --

    def describe(self, name: str, help_text: str) -> None:
        """Attach a Prometheus ``# HELP`` string to metric *name*."""
        with self._lock:
            self._help[name] = help_text

    def inc(self, name: str, delta: int = 1, help: Optional[str] = None) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta
            if help is not None:
                self._help[name] = help

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def has_metric(self, name: str) -> bool:
        """True if *name* is registered or described in any family.

        A described-but-not-yet-incremented counter counts as taken: it
        will materialize under that name, so registering a different
        kind against it would produce a duplicate exposition family.
        """
        with self._lock:
            return (
                name in self._counters
                or name in self._gauges
                or name in self._latency
                or name in self._labeled
                or name in self._help
            )

    def observe(
        self, name: str, seconds: float, help: Optional[str] = None,
    ) -> None:
        """Record one duration into the *name* latency series."""
        with self._lock:
            count, total, window = self._latency.get(
                name, (0, 0.0, deque(maxlen=self._reservoir)),
            )
            window.append(seconds)
            self._latency[name] = (count + 1, total + seconds, window)
            if help is not None:
                self._help[name] = help

    def gauge(
        self,
        name: str,
        sample: Callable[[], float],
        help: Optional[str] = None,
    ) -> None:
        """Register a gauge sampled at every export."""
        with self._lock:
            self._gauges[name] = sample
            if help is not None:
                self._help[name] = help

    # ----------------------------------------------------- labeled series --

    @staticmethod
    def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
        return tuple(sorted((str(k), str(v)) for k, v in labels.items()))

    def _labeled_family(
        self, name: str, kind: str, help: Optional[str],
    ) -> Dict[Tuple[Tuple[str, str], ...], float]:
        family = self._labeled.setdefault(name, {})
        known = self._labeled_kind.setdefault(name, kind)
        if known != kind:
            raise ValueError(
                f"labeled metric {name!r} is a {known}, not a {kind}"
            )
        if help is not None:
            self._help[name] = help
        return family

    def inc_labeled(
        self,
        name: str,
        labels: Dict[str, str],
        delta: float = 1,
        help: Optional[str] = None,
    ) -> None:
        """Increment one series of the labeled counter family *name*."""
        key = self._label_key(labels)
        with self._lock:
            family = self._labeled_family(name, "counter", help)
            family[key] = family.get(key, 0.0) + delta

    def set_labeled(
        self,
        name: str,
        labels: Dict[str, str],
        value: float,
        kind: str = "gauge",
        help: Optional[str] = None,
    ) -> None:
        """Set one series of labeled family *name* to an absolute value.

        ``kind="counter"`` is for federated totals: the coordinator learns
        absolute cumulative counts from worker heartbeats and installs
        them verbatim rather than replaying increments.
        """
        key = self._label_key(labels)
        with self._lock:
            family = self._labeled_family(name, kind, help)
            family[key] = float(value)

    def remove_labeled(
        self, name: str, labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """Drop one series (or, with ``labels=None``, the whole family)."""
        with self._lock:
            if labels is None:
                self._labeled.pop(name, None)
                self._labeled_kind.pop(name, None)
                return
            family = self._labeled.get(name)
            if family is not None:
                family.pop(self._label_key(labels), None)

    def labeled_value(self, name: str, labels: Dict[str, str]) -> float:
        with self._lock:
            return self._labeled.get(name, {}).get(self._label_key(labels), 0.0)

    def labeled_series(self, name: str) -> Dict[Tuple[Tuple[str, str], ...], float]:
        """All series of family *name* (frozen label tuple -> value)."""
        with self._lock:
            return dict(self._labeled.get(name, {}))

    # ------------------------------------------------------------- exports --

    def latency_summary(self, name: str) -> Dict[str, float]:
        with self._lock:
            count, total, window = self._latency.get(name, (0, 0.0, deque()))
            samples = list(window)
        summary: Dict[str, float] = {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
        }
        for _, key, fraction in self.QUANTILES:
            summary[key] = percentile(samples, fraction)
        return summary

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            counters = dict(self._counters)
            gauges = list(self._gauges.items())
            latency_names = list(self._latency)
            labeled = {
                name: [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(family.items())
                ]
                for name, family in sorted(self._labeled.items())
            }
        return {
            "counters": counters,
            "gauges": {name: float(sample()) for name, sample in gauges},
            "latency": {
                name: self.latency_summary(name) for name in latency_names
            },
            "labeled": labeled,
        }

    def _help_for(self, name: str) -> str:
        return self._help.get(name, f"repro metric {name}")

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4).

        Every counter, gauge and summary carries ``# HELP`` and ``# TYPE``
        lines, so strict parsers (and the scrape-and-parse unit test)
        accept the whole exposition.
        """
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            latency: Dict[str, Tuple[int, float, List[float]]] = {
                name: (count, total, list(window))
                for name, (count, total, window) in self._latency.items()
            }
            labeled = {
                name: (self._labeled_kind.get(name, "gauge"), sorted(family.items()))
                for name, family in sorted(self._labeled.items())
            }
            help_texts = dict(self._help)
        lines: List[str] = []

        def annotate(name: str, metric: str, kind: str) -> None:
            text = help_texts.get(name, f"repro metric {name}")
            lines.append(f"# HELP {metric} {text}")
            lines.append(f"# TYPE {metric} {kind}")

        for name, value in counters:
            metric = f"{self.namespace}_{name}"
            annotate(name, metric, "counter")
            lines.append(f"{metric} {value}")
        for name, sample in gauges:
            metric = f"{self.namespace}_{name}"
            annotate(name, metric, "gauge")
            lines.append(f"{metric} {float(sample()):g}")
        for name, (kind, series) in labeled.items():
            metric = f"{self.namespace}_{name}"
            annotate(name, metric, kind)
            for key, value in series:
                rendered = ",".join(
                    f'{k}="{_escape_label(v)}"' for k, v in key
                )
                lines.append(f"{metric}{{{rendered}}} {_format_value(value)}")
        for name, (count, total, samples) in sorted(latency.items()):
            metric = f"{self.namespace}_{name}_seconds"
            annotate(name, metric, "summary")
            for label, _, fraction in self.QUANTILES:
                value = percentile(samples, fraction)
                lines.append(
                    f'{metric}{{quantile="{label}"}} {value:.6f}'
                )
            lines.append(f"{metric}_count {count}")
            lines.append(f"{metric}_sum {total:.6f}")
        return "\n".join(lines) + "\n"
