"""Rendering of JSONL traces: the epoch timeline and the obs report.

The write side (:mod:`repro.obs.trace`, :mod:`repro.obs.recorder`) leaves
behind a directory of ``trace-<pid>.jsonl`` files; this module is the read
side that ``mlpsim trace`` and ``mlpsim obs report`` call:

- :func:`summarize` folds a stream of events into one digest (event counts
  by kind, per-correlation epoch counts, the termination-condition
  breakdown, span aggregates),
- :func:`render_timeline` draws the per-epoch rows with a miss-composition
  bar,
- :func:`render_report` prints the full digest as aligned text tables.

Everything here consumes plain decoded event dicts, so the functions work
equally on a live tracer's in-memory buffer and on files read back with
:func:`repro.obs.trace.load_events`.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Iterable, List

__all__ = ["render_report", "render_timeline", "summarize"]

#: Cap on the miss-composition bar so one pathological epoch cannot blow
#: up the table width.
_BAR_WIDTH = 24


def summarize(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold trace *events* into the digest :func:`render_report` prints."""
    kind_counts: Counter = Counter()
    termination_counts: Counter = Counter()
    epochs_by_corr: Counter = Counter()
    epoch_rows: List[Dict[str, Any]] = []
    store_stalls = 0
    instructions = 0
    sb_hwm = 0
    sq_hwm = 0
    spans: Dict[str, Dict[str, float]] = {}
    checkpoints = 0
    shard_resumes: List[Dict[str, Any]] = []
    checkpoint_corruptions = 0

    for event in events:
        kind = event.get("kind", "")
        kind_counts[kind] += 1
        if kind == "epoch":
            epoch_rows.append(event)
            epochs_by_corr[event.get("corr", "")] += 1
            instructions += int(event.get("instructions", 0))
            sb_hwm = max(sb_hwm, int(event.get("sb_occ", 0)))
            sq_hwm = max(sq_hwm, int(event.get("sq_occ", 0)))
        elif kind == "termination":
            termination_counts[event.get("condition", "?")] += 1
        elif kind == "store_stall":
            store_stalls += 1
        elif kind == "checkpoint":
            checkpoints += 1
        elif kind == "shard_resume":
            shard_resumes.append(event)
        elif kind == "checkpoint_corrupt":
            checkpoint_corruptions += 1
        elif kind == "span_end":
            name = event.get("name", "?")
            stats = spans.setdefault(
                name, {"count": 0, "total": 0.0, "max": 0.0},
            )
            duration = float(event.get("dur", 0.0))
            stats["count"] += 1
            stats["total"] += duration
            if duration > stats["max"]:
                stats["max"] = duration

    epochs = len(epoch_rows)
    return {
        "events": sum(kind_counts.values()),
        "kinds": dict(sorted(kind_counts.items())),
        "epochs": epochs,
        "epochs_by_corr": dict(sorted(epochs_by_corr.items())),
        "instructions": instructions,
        "epochs_per_1k_insts": (
            1000.0 * epochs / instructions if instructions else 0.0
        ),
        "store_stalls": store_stalls,
        "sb_occupancy_hwm": sb_hwm,
        "sq_occupancy_hwm": sq_hwm,
        "terminations": dict(sorted(termination_counts.items())),
        "spans": {name: spans[name] for name in sorted(spans)},
        "checkpoints": checkpoints,
        "shard_resumes": [
            {
                "job": str(event.get("job", "?")),
                "pos": int(event.get("pos", -1)),
            }
            for event in shard_resumes
        ],
        "checkpoint_corruptions": checkpoint_corruptions,
        "epoch_rows": epoch_rows,
    }


def _miss_bar(row: Dict[str, Any]) -> str:
    """``S``/``L``/``I`` glyphs per miss kind, capped at the bar width."""
    bar = (
        "S" * int(row.get("store_misses", 0))
        + "L" * int(row.get("load_misses", 0))
        + "I" * int(row.get("inst_misses", 0))
    )
    if len(bar) > _BAR_WIDTH:
        return bar[: _BAR_WIDTH - 1] + ">"
    return bar


def render_timeline(
    events: Iterable[Dict[str, Any]], limit: int = 40,
) -> str:
    """The per-epoch timeline table, eliding the middle of long traces.

    *limit* bounds the number of epoch rows printed; when the trace has
    more, the head and tail are shown around an elision marker.
    """
    rows = [e for e in events if e.get("kind") == "epoch"]
    if not rows:
        return "no epoch events in trace\n"

    header = (
        f"{'epoch':>6} {'insts':>7} {'trigger':<14} {'termination':<26}"
        f" {'S':>3} {'L':>3} {'I':>3}  misses"
    )
    lines = [header, "-" * len(header)]

    if limit and len(rows) > limit:
        head = rows[: limit // 2]
        tail = rows[-(limit - limit // 2):]
        elided = len(rows) - len(head) - len(tail)
        shown: List[Any] = head + [elided] + tail
    else:
        shown = list(rows)

    for row in shown:
        if isinstance(row, int):
            lines.append(f"{'...':>6}  ({row} epochs elided)")
            continue
        lines.append(
            f"{row.get('index', '?'):>6}"
            f" {row.get('instructions', 0):>7}"
            f" {str(row.get('trigger', '')):<14}"
            f" {str(row.get('termination', '') or '-'):<26}"
            f" {row.get('store_misses', 0):>3}"
            f" {row.get('load_misses', 0):>3}"
            f" {row.get('inst_misses', 0):>3}"
            f"  {_miss_bar(row)}"
        )
    lines.append("")
    lines.append(f"{len(rows)} epochs")
    return "\n".join(lines) + "\n"


def render_report(events: Iterable[Dict[str, Any]]) -> str:
    """The full obs report: counts, termination breakdown, span table."""
    digest = summarize(events)
    lines: List[str] = []

    lines.append("trace summary")
    lines.append("-------------")
    lines.append(f"events:            {digest['events']}")
    for kind, count in digest["kinds"].items():
        lines.append(f"  {kind:<16} {count}")
    lines.append(f"epochs:            {digest['epochs']}")
    lines.append(f"instructions:      {digest['instructions']}")
    lines.append(
        f"epochs/1k insts:   {digest['epochs_per_1k_insts']:.3f}"
    )
    lines.append(f"store stalls:      {digest['store_stalls']}")
    lines.append(f"SB occupancy HWM:  {digest['sb_occupancy_hwm']}")
    lines.append(f"SQ occupancy HWM:  {digest['sq_occupancy_hwm']}")

    if (
        digest["checkpoints"]
        or digest["shard_resumes"]
        or digest["checkpoint_corruptions"]
    ):
        lines.append("")
        lines.append("checkpointing")
        lines.append(f"  checkpoints written {digest['checkpoints']}")
        lines.append(
            f"  corrupt discarded   {digest['checkpoint_corruptions']}"
        )
        for resume in digest["shard_resumes"]:
            lines.append(
                f"  resumed @ {resume['pos']:<10} {resume['job']}"
            )

    if len(digest["epochs_by_corr"]) > 1:
        lines.append("")
        lines.append("epochs by correlation id")
        for corr, count in digest["epochs_by_corr"].items():
            lines.append(f"  {corr or '(none)':<16} {count}")

    if digest["terminations"]:
        lines.append("")
        lines.append("termination conditions")
        total = sum(digest["terminations"].values())
        for condition, count in sorted(
            digest["terminations"].items(), key=lambda kv: -kv[1],
        ):
            share = 100.0 * count / total if total else 0.0
            lines.append(f"  {condition:<28} {count:>6}  {share:5.1f}%")

    if digest["spans"]:
        lines.append("")
        lines.append(
            f"{'span':<20} {'count':>6} {'total_s':>9} {'mean_s':>9}"
            f" {'max_s':>9}"
        )
        for name, stats in digest["spans"].items():
            count = int(stats["count"])
            mean = stats["total"] / count if count else 0.0
            lines.append(
                f"{name:<20} {count:>6} {stats['total']:>9.4f}"
                f" {mean:>9.4f} {stats['max']:>9.4f}"
            )

    return "\n".join(lines) + "\n"
