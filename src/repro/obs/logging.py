"""Structured logging for the service daemon (and anything else).

``mlpsim serve`` historically announced itself with ad-hoc ``print``s and
swallowed request logs entirely.  This module gives the whole package one
configurable logging setup:

- ``setup_logging(level, fmt)`` configures the ``"repro"`` logger tree —
  ``fmt="text"`` for human-readable lines, ``fmt="json"`` for JSON-lines
  records (one object per line: ``ts``, ``level``, ``logger``, ``msg``,
  ``corr``) that load straight into log pipelines.
- Every record automatically carries the current correlation ID (see
  :mod:`repro.obs.context`), so one service job's dispatch, engine batch
  and completion lines grep together by job ID.

Setup is idempotent: re-running replaces the handler this module installed
rather than stacking duplicates, and the root logger is never touched.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, Optional, TextIO

from .context import correlation_id

__all__ = ["JsonFormatter", "get_logger", "setup_logging"]

#: Logger namespace everything in this package logs under.
ROOT_LOGGER = "repro"

_HANDLER_MARK = "_repro_obs_handler"

LOG_LEVELS = ("debug", "info", "warning", "error", "critical")


class _CorrelationFilter(logging.Filter):
    """Stamp the current correlation ID onto every record."""

    def filter(self, record: logging.LogRecord) -> bool:
        corr = correlation_id()
        record.corr = corr
        record.corr_suffix = f" [{corr}]" if corr else ""
        return True


class JsonFormatter(logging.Formatter):
    """One JSON object per line; ``corr`` included only when set."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        corr = getattr(record, "corr", "")
        if corr:
            payload["corr"] = corr
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, separators=(",", ":"))


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the package namespace (``repro`` or ``repro.<name>``)."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}" if name else ROOT_LOGGER)


def setup_logging(
    level: str = "info",
    fmt: str = "text",
    stream: Optional[TextIO] = None,
) -> logging.Logger:
    """Configure the package logger; returns it.

    *level* is a standard level name (case-insensitive); *fmt* is
    ``"text"`` or ``"json"``; *stream* defaults to stderr.
    """
    level_no = logging.getLevelName(level.upper())
    if not isinstance(level_no, int):
        raise ValueError(
            f"unknown log level {level!r}; expected one of {LOG_LEVELS}"
        )
    if fmt not in ("text", "json"):
        raise ValueError(f"unknown log format {fmt!r}; expected text or json")

    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(level_no)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            logger.removeHandler(handler)

    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    setattr(handler, _HANDLER_MARK, True)
    handler.addFilter(_CorrelationFilter())
    if fmt == "json":
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)-7s %(name)s%(corr_suffix)s %(message)s",
            datefmt="%Y-%m-%d %H:%M:%S",
        ))
    logger.addHandler(handler)
    logger.propagate = False
    return logger
