"""Correlation-ID propagation for cross-layer observability.

A correlation ID names one logical unit of work end to end: the service
stamps it when a job starts executing, the engine carries it into batch
threads and worker processes, and every trace event and log record emitted
while it is set carries it automatically.  That is what lets ``mlpsim obs
report`` group a service job's epoch events with its HTTP lifecycle, and a
``grep`` over JSON logs reconstruct one request's path through the stack.

Implemented over :mod:`contextvars` so the ID follows the logical flow of
control (threads started with a copied context, async tasks) rather than a
global.  Worker processes do not inherit context; the engine passes the
current ID explicitly through the pool initializer and re-installs it
there.
"""

from __future__ import annotations

import contextvars
import uuid
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "correlation",
    "correlation_id",
    "new_correlation_id",
    "set_correlation_id",
]

_CORRELATION: contextvars.ContextVar[str] = contextvars.ContextVar(
    "repro_correlation_id", default="",
)


def correlation_id() -> str:
    """The current correlation ID (empty string when none is set)."""
    return _CORRELATION.get()


def set_correlation_id(value: str) -> contextvars.Token:
    """Install *value* as the current correlation ID; returns a reset token."""
    return _CORRELATION.set(value)


def new_correlation_id() -> str:
    """A fresh 12-hex-digit correlation ID (same shape as service job IDs)."""
    return uuid.uuid4().hex[:12]


@contextmanager
def correlation(value: str) -> Iterator[str]:
    """Scope *value* (or a fresh ID when empty) as the correlation ID."""
    token = _CORRELATION.set(value or new_correlation_id())
    try:
        yield _CORRELATION.get()
    finally:
        _CORRELATION.reset(token)
