"""Correlation-ID propagation for cross-layer observability.

A correlation ID names one logical unit of work end to end: the service
stamps it when a job starts executing, the engine carries it into batch
threads and worker processes, and every trace event and log record emitted
while it is set carries it automatically.  That is what lets ``mlpsim obs
report`` group a service job's epoch events with its HTTP lifecycle, and a
``grep`` over JSON logs reconstruct one request's path through the stack.

Implemented over :mod:`contextvars` so the ID follows the logical flow of
control (threads started with a copied context, async tasks) rather than a
global.  Worker processes do not inherit context; the engine passes the
current ID explicitly through the pool initializer and re-installs it
there.

Cross-process span trees
------------------------

The fleet extends the same idea one level up: a coordinator and N worker
*processes* (possibly on N machines) must produce one connected span tree
per job.  The wire carries a ``traceparent``-style field::

    00-<correlation id>-<parent span id>

``00`` is the format version, the correlation ID names the job (the
tree's root), and the parent span ID is the coordinator-side span the
receiving process should hang its own spans under.  The receiving side
installs both halves with :func:`trace_context`; a
:class:`~repro.obs.trace.Tracer` whose thread has no open span of its own
falls back to :func:`parent_span_id` — so a worker's ``engine_batch`` /
``job`` spans parent to the coordinator's job span and ``mlpsim obs
critical-path`` can join the segments written by every process into a
single tree, including the resume-on-another-worker hop.
"""

from __future__ import annotations

import contextvars
import uuid
from contextlib import contextmanager
from typing import Iterator, Tuple

__all__ = [
    "correlation",
    "correlation_id",
    "current_traceparent",
    "format_traceparent",
    "new_correlation_id",
    "new_span_id",
    "parent_span_id",
    "parse_traceparent",
    "set_correlation_id",
    "set_parent_span_id",
    "trace_context",
]

#: Version prefix of the ``traceparent`` wire field.
TRACEPARENT_VERSION = "00"

_CORRELATION: contextvars.ContextVar[str] = contextvars.ContextVar(
    "repro_correlation_id", default="",
)

_PARENT_SPAN: contextvars.ContextVar[str] = contextvars.ContextVar(
    "repro_parent_span_id", default="",
)


def correlation_id() -> str:
    """The current correlation ID (empty string when none is set)."""
    return _CORRELATION.get()


def set_correlation_id(value: str) -> contextvars.Token:
    """Install *value* as the current correlation ID; returns a reset token."""
    return _CORRELATION.set(value)


def new_correlation_id() -> str:
    """A fresh 12-hex-digit correlation ID (same shape as service job IDs)."""
    return uuid.uuid4().hex[:12]


@contextmanager
def correlation(value: str) -> Iterator[str]:
    """Scope *value* (or a fresh ID when empty) as the correlation ID."""
    token = _CORRELATION.set(value or new_correlation_id())
    try:
        yield _CORRELATION.get()
    finally:
        _CORRELATION.reset(token)


# -------------------------------------------------------------- span tree --


def new_span_id() -> str:
    """A fresh 12-hex-digit span ID (same shape as Tracer span IDs)."""
    return uuid.uuid4().hex[:12]


def parent_span_id() -> str:
    """The inherited cross-process parent span ID ("" when none is set)."""
    return _PARENT_SPAN.get()


def set_parent_span_id(value: str) -> contextvars.Token:
    """Install *value* as the inherited parent span; returns a reset token."""
    return _PARENT_SPAN.set(value)


def format_traceparent(corr: str, span_id: str) -> str:
    """Encode (correlation ID, parent span ID) for the wire."""
    return f"{TRACEPARENT_VERSION}-{corr}-{span_id}"


def parse_traceparent(value: str) -> Tuple[str, str]:
    """Decode a ``traceparent`` field into (correlation ID, span ID).

    Tolerant by design — observability metadata must never fail a work
    request — so malformed or future-versioned values decode to
    ``("", "")`` and the receiver simply starts a fresh context.
    """
    if not isinstance(value, str):
        return "", ""
    parts = value.split("-")
    if len(parts) != 3 or parts[0] != TRACEPARENT_VERSION:
        return "", ""
    _, corr, span_id = parts
    if not corr:
        return "", ""
    # An empty span half is legal: a coordinator that is not tracing still
    # propagates the correlation ID, just with no span to parent under.
    return corr, span_id


def current_traceparent() -> str:
    """The current context encoded for the wire ("" when no correlation).

    The span half is the inherited parent (a process forwarding work it
    did not originate passes its own inherited parent along unless it
    opened a span of its own and encodes that explicitly).
    """
    corr = _CORRELATION.get()
    if not corr:
        return ""
    return format_traceparent(corr, _PARENT_SPAN.get())


@contextmanager
def trace_context(traceparent: str) -> Iterator[Tuple[str, str]]:
    """Scope the correlation ID and parent span decoded from *traceparent*.

    The receiving half of cross-process propagation: a fleet worker wraps
    each leased batch in ``trace_context(entry["traceparent"])`` so every
    span and event it emits joins the coordinator's tree.  Malformed
    values scope a fresh correlation with no parent.
    """
    corr, span_id = parse_traceparent(traceparent)
    corr_token = _CORRELATION.set(corr or new_correlation_id())
    span_token = _PARENT_SPAN.set(span_id)
    try:
        yield _CORRELATION.get(), span_id
    finally:
        _PARENT_SPAN.reset(span_token)
        _CORRELATION.reset(corr_token)
