"""repro.obs — the unified observability layer.

One package shared by the simulator core, the engine and the service:

- :mod:`repro.obs.trace` — structured spans/events exported as JSONL,
- :mod:`repro.obs.context` — correlation IDs threaded from a service job
  through engine batches down to individual simulator runs,
- :mod:`repro.obs.metrics` — the canonical counters/gauges/latency
  registry behind ``/metrics`` (JSON and Prometheus),
- :mod:`repro.obs.recorder` — :class:`EpochTimelineRecorder`, the
  ``WindowObserver`` that streams per-epoch events,
- :mod:`repro.obs.profile` — deterministic sampling profiler for engine
  phases,
- :mod:`repro.obs.report` — renderers behind ``mlpsim trace`` and
  ``mlpsim obs report``,
- :mod:`repro.obs.timeline` — fleet job phase decomposition and
  critical-path analysis behind ``mlpsim obs critical-path``,
- :mod:`repro.obs.logging` — structured (text or JSON-lines) logging with
  correlation IDs,
- :mod:`repro.obs.options` — :class:`ObsOptions`, the knob bundle the
  API/CLI thread down to worker processes.

Everything is standard library only, and everything is pay-for-what-you-
use: with no tracer, recorder or profiler attached the hot paths keep
their existing ``is None`` fast checks and golden results stay
bit-identical.
"""

from .context import (
    correlation,
    correlation_id,
    current_traceparent,
    format_traceparent,
    new_correlation_id,
    new_span_id,
    parent_span_id,
    parse_traceparent,
    set_correlation_id,
    set_parent_span_id,
    trace_context,
)
from .logging import get_logger, setup_logging
from .metrics import MetricsRegistry, percentile
from .options import ObsOptions
from .profile import PhaseProfiler
from .recorder import STALL_CONDITIONS, EpochTimelineRecorder
from .report import render_report, render_timeline, summarize
from .timeline import (
    PHASES,
    JobTimeline,
    aggregate_phases,
    connected_roots,
    critical_path,
    fleet_job_ids,
    job_timeline,
    render_timeline_report,
    span_tree,
)
from .trace import (
    Span,
    Tracer,
    default_trace_file,
    load_events,
    read_events,
    trace_files,
)

__all__ = [
    "EpochTimelineRecorder",
    "JobTimeline",
    "MetricsRegistry",
    "ObsOptions",
    "PHASES",
    "PhaseProfiler",
    "STALL_CONDITIONS",
    "Span",
    "Tracer",
    "aggregate_phases",
    "connected_roots",
    "correlation",
    "correlation_id",
    "critical_path",
    "current_traceparent",
    "default_trace_file",
    "fleet_job_ids",
    "format_traceparent",
    "get_logger",
    "job_timeline",
    "load_events",
    "new_correlation_id",
    "new_span_id",
    "parent_span_id",
    "parse_traceparent",
    "percentile",
    "read_events",
    "render_report",
    "render_timeline",
    "render_timeline_report",
    "set_correlation_id",
    "set_parent_span_id",
    "setup_logging",
    "span_tree",
    "summarize",
    "trace_context",
    "trace_files",
]
