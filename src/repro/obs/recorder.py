"""Simulation instrumentation: the epoch-timeline recorder.

:class:`EpochTimelineRecorder` is a :class:`~repro.core.window
.WindowObserver` that turns the simulator's observer callbacks into the
per-epoch record the paper's analysis needs — which termination condition
closed each window, how many misses of each kind overlapped, and where the
store buffer / store queue saturated — and, when given a
:class:`~repro.obs.trace.Tracer`, streams the same data as JSONL trace
events:

- ``epoch`` — one per epoch close (exactly ``result.epoch_count`` of them
  per run, the invariant the obs smoke test asserts),
- ``termination`` — one per window termination, including zero-miss
  windows,
- ``store_stall`` — emitted when a store-buffer/store-queue saturation
  condition terminated the window.

Attaching a recorder never perturbs the simulation: the observer-neutrality
tests pin bit-identical results across every mechanism (PC/WC, SMAC,
scout, SLE) with and without a recorder attached, and the unobserved hot
path still pays only ``is None`` checks.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..core.epoch import EpochRecord, TerminationCondition
from ..core.window import WindowObserver
from .trace import Tracer

if TYPE_CHECKING:
    from ..core.store_unit import StoreEntry
    from ..core.window import WindowState

__all__ = ["EpochTimelineRecorder", "STALL_CONDITIONS"]

#: Termination conditions that mean the store path itself saturated.
STALL_CONDITIONS = frozenset({
    TerminationCondition.STORE_BUFFER_FULL,
    TerminationCondition.STORE_QUEUE_STORE_BUFFER_FULL,
    TerminationCondition.STORE_QUEUE_WINDOW_FULL,
})


class EpochTimelineRecorder(WindowObserver):
    """Records the epoch timeline of one (or more) simulator runs.

    Parameters
    ----------
    tracer:
        Optional event sink; when given, every epoch close / termination /
        store stall becomes one JSONL event.  Without it the recorder is a
        pure in-memory accumulator (``rows``, ``termination_counts``, the
        occupancy high-water marks).
    label:
        Stamped on every emitted event — callers use it to tell jobs of one
        sweep apart inside a shared trace file.
    """

    def __init__(
        self, tracer: Optional[Tracer] = None, label: str = "",
    ) -> None:
        self.tracer = tracer
        self.label = label
        #: One dict per closed epoch, in order (the timeline).
        self.rows: List[Dict[str, Any]] = []
        self.termination_counts: Counter = Counter()
        self.trigger_counts: Counter = Counter()
        self.store_stalls = 0
        self.store_miss_events = 0
        self.epochs_closed = 0
        self.terminations_seen = 0
        #: Occupancies sampled at each epoch begin (post-pump), and their
        #: high-water marks across the run.
        self.sb_occupancy_hwm = 0
        self.sq_occupancy_hwm = 0
        self.rob_occupancy_hwm = 0
        self._sb_occ = 0
        self._sq_occ = 0
        self._rob_occ = 0

    # ------------------------------------------------------------- hooks --

    def on_epoch_begin(self, state: "WindowState") -> None:
        """Sample SB/SQ/ROB occupancy as the new epoch's window opens."""
        self._sb_occ = len(state.store_unit.sb)
        self._sq_occ = len(state.store_unit.sq)
        self._rob_occ = state.rob_occ
        if self._sb_occ > self.sb_occupancy_hwm:
            self.sb_occupancy_hwm = self._sb_occ
        if self._sq_occ > self.sq_occupancy_hwm:
            self.sq_occupancy_hwm = self._sq_occ
        if self._rob_occ > self.rob_occupancy_hwm:
            self.rob_occupancy_hwm = self._rob_occ

    def on_epoch(self, record: EpochRecord) -> None:
        self.epochs_closed += 1
        self.termination_counts[record.termination] += 1
        self.trigger_counts[record.trigger] += 1
        row = {
            "index": record.index,
            "trigger": record.trigger.value,
            "termination": (
                record.termination.value if record.termination else ""
            ),
            "store_misses": record.store_misses,
            "load_misses": record.load_misses,
            "inst_misses": record.inst_misses,
            "instructions": record.instructions,
            "scouted": record.scouted,
            "sb_occ": self._sb_occ,
            "sq_occ": self._sq_occ,
        }
        self.rows.append(row)
        if self.tracer is not None:
            self.tracer.event("epoch", self.label, **row)

    def on_termination(
        self,
        condition: TerminationCondition,
        pos: int,
        epoch: int,
    ) -> None:
        self.terminations_seen += 1
        if self.tracer is not None:
            self.tracer.event(
                "termination", self.label,
                condition=condition.value, pos=pos, epoch=epoch,
            )
        if condition in STALL_CONDITIONS:
            self.store_stalls += 1
            if self.tracer is not None:
                self.tracer.event(
                    "store_stall", self.label,
                    condition=condition.value, pos=pos, epoch=epoch,
                    sb_occ=self._sb_occ, sq_occ=self._sq_occ,
                )

    def on_store_event(
        self, entry: "StoreEntry", pos: int, epoch: int
    ) -> None:
        self.store_miss_events += 1

    # ----------------------------------------------------------- summary --

    def termination_histogram(self) -> Dict[str, int]:
        """Condition-name -> epochs closed under it (miss epochs only)."""
        return {
            cond.value: count
            for cond, count in sorted(
                self.termination_counts.items(), key=lambda kv: kv[0].value,
            )
        }

    def summary(self) -> Dict[str, Any]:
        """The run digest ``mlpsim obs report`` renders for live recorders."""
        instructions = sum(row["instructions"] for row in self.rows)
        return {
            "epochs": self.epochs_closed,
            "terminations": self.terminations_seen,
            "store_stalls": self.store_stalls,
            "store_miss_events": self.store_miss_events,
            "instructions": instructions,
            "epochs_per_1k_insts": (
                1000.0 * self.epochs_closed / instructions
                if instructions else 0.0
            ),
            "sb_occupancy_hwm": self.sb_occupancy_hwm,
            "sq_occupancy_hwm": self.sq_occupancy_hwm,
            "rob_occupancy_hwm": self.rob_occupancy_hwm,
            "termination_histogram": self.termination_histogram(),
        }
