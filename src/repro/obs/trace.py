"""Structured tracing: spans and events exported as JSONL.

One :class:`Tracer` writes one stream of events, either to an append-mode
JSONL file (one JSON object per line — greppable, streamable, safe to
concatenate across worker processes) or to an in-memory buffer for tests
and interactive use.

Event schema (every event is one flat JSON object):

========== ==============================================================
``ts``     wall-clock seconds (``time.time``)
``kind``   event kind: ``span_start`` / ``span_end``, or a domain kind —
           ``epoch`` (one per epoch close), ``termination`` (one per
           window termination), ``store_stall`` (store buffer/queue
           saturation ended the window), ``phase`` (profiler sample), ...
``name``   human-readable event/span name
``corr``   correlation ID (from :mod:`repro.obs.context`; ties a service
           job to its engine batches and simulator runs)
``span``   ID of the enclosing span, or ``""`` outside any span
``...``    kind-specific attributes, inlined
========== ==============================================================

``span_end`` events additionally carry ``dur`` — the span's wall time in
seconds measured on a monotonic clock.  Span nesting is tracked per
thread, so concurrent batch threads sharing one tracer attribute their
events correctly.

Readers: :func:`read_events` streams events back from a JSONL file, a
directory of ``*.jsonl`` files, or an iterable of lines; it is the input
side of ``mlpsim trace`` / ``mlpsim obs report``.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

from .context import correlation_id

__all__ = [
    "Span",
    "Tracer",
    "default_trace_file",
    "load_events",
    "read_events",
    "trace_files",
]


class Span:
    """One timed region of a :class:`Tracer` stream (context manager)."""

    __slots__ = ("tracer", "name", "id", "parent", "_start", "attrs")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent: str,
        attrs: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.id = uuid.uuid4().hex[:12]
        self.parent = parent
        self.attrs = attrs
        self._start = time.perf_counter()

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.tracer._end_span(self, time.perf_counter() - self._start)


class Tracer:
    """Writes spans and events as JSONL (file, file-like, or in-memory).

    *sink* is a path (opened in append mode, so many tracers — or many
    processes — may share a directory of per-process files), an open
    file-like object, or ``None`` for an in-memory buffer exposed as
    :attr:`events` (already-decoded dicts).  All writes take a lock; one
    event is one line, flushed immediately, so a crashed run still leaves
    a parseable prefix.
    """

    def __init__(
        self,
        sink: Union[str, Path, Any, None] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex[:12]
        self._lock = threading.Lock()
        self._local = threading.local()
        self._owns_file = False
        self._file: Optional[Any] = None
        self.path: Optional[Path] = None
        self.events: List[Dict[str, Any]] = []
        if sink is None:
            pass
        elif isinstance(sink, (str, Path)):
            self.path = Path(sink)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = sink

    # ------------------------------------------------------------- events --

    def _current_span(self) -> str:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else ""

    def event(self, kind: str, name: str = "", **attrs: Any) -> Dict[str, Any]:
        """Emit one event; returns the written record."""
        record: Dict[str, Any] = {
            "ts": time.time(),
            "kind": kind,
            "name": name,
            "corr": correlation_id() or self.trace_id,
            "span": self._current_span(),
        }
        record.update(attrs)
        self._write(record)
        return record

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span: ``with tracer.span("simulate", job=...):``."""
        span = Span(self, name, self._current_span(), attrs)
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        self.event("span_start", name, id=span.id, parent=span.parent, **attrs)
        stack.append(span.id)
        return span

    def _end_span(self, span: Span, duration: float) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] == span.id:
            stack.pop()
        record: Dict[str, Any] = {
            "ts": time.time(),
            "kind": "span_end",
            "name": span.name,
            "corr": correlation_id() or self.trace_id,
            "span": self._current_span(),
            "id": span.id,
            "parent": span.parent,
            "dur": duration,
        }
        record.update(span.attrs)
        self._write(record)

    def _write(self, record: Dict[str, Any]) -> None:
        with self._lock:
            if self._file is None:
                self.events.append(record)
                return
            self._file.write(
                json.dumps(record, separators=(",", ":"), sort_keys=True)
                + "\n"
            )
            self._file.flush()

    # ---------------------------------------------------------- lifecycle --

    def flush(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self._owns_file and self._file is not None:
                self._file.close()
            self._file = None if self._owns_file else self._file
            self._owns_file = False

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ------------------------------------------------------------------ reading --


def trace_files(path: Union[str, Path]) -> List[Path]:
    """The JSONL files behind *path* (a file, or a directory of traces)."""
    root = Path(path)
    if root.is_dir():
        return sorted(root.glob("*.jsonl"))
    return [root]


def read_events(
    source: Union[str, Path, Iterable[str]],
    strict: bool = True,
) -> Iterator[Dict[str, Any]]:
    """Stream trace events back from a JSONL file, directory, or lines.

    With ``strict=False`` undecodable lines are skipped (a process killed
    mid-write can truncate its final line); by default they raise
    ``ValueError`` naming the offending location.
    """
    if isinstance(source, (str, Path)):
        for file in trace_files(source):
            with open(file, "r", encoding="utf-8") as handle:
                yield from _decode_lines(handle, str(file), strict)
    else:
        yield from _decode_lines(source, "<lines>", strict)


def _decode_lines(
    lines: Iterable[str], origin: str, strict: bool
) -> Iterator[Dict[str, Any]]:
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if strict:
                raise ValueError(
                    f"{origin}:{number}: invalid trace event: {exc}"
                ) from None
            continue
        if isinstance(record, dict):
            yield record
        elif strict:
            raise ValueError(
                f"{origin}:{number}: trace event is not an object"
            )


def load_events(
    source: Union[str, Path, Iterable[str]],
    strict: bool = True,
) -> List[Dict[str, Any]]:
    """:func:`read_events`, materialized."""
    return list(read_events(source, strict=strict))


def default_trace_file(directory: Union[str, Path]) -> Path:
    """The per-process trace file convention: ``<dir>/trace-<pid>.jsonl``."""
    return Path(directory) / f"trace-{os.getpid()}.jsonl"
