"""Structured tracing: spans and events exported as JSONL.

One :class:`Tracer` writes one stream of events, either to an append-mode
JSONL file (one JSON object per line — greppable, streamable, safe to
concatenate across worker processes) or to an in-memory buffer for tests
and interactive use.

Event schema (every event is one flat JSON object):

========== ==============================================================
``ts``     wall-clock seconds (``time.time``)
``kind``   event kind: ``span_start`` / ``span_end``, or a domain kind —
           ``epoch`` (one per epoch close), ``termination`` (one per
           window termination), ``store_stall`` (store buffer/queue
           saturation ended the window), ``phase`` (profiler sample), ...
``name``   human-readable event/span name
``corr``   correlation ID (from :mod:`repro.obs.context`; ties a service
           job to its engine batches and simulator runs)
``span``   ID of the enclosing span, or ``""`` outside any span
``...``    kind-specific attributes, inlined
========== ==============================================================

``span_end`` events additionally carry ``dur`` — the span's wall time in
seconds measured on a monotonic clock.  Span nesting is tracked per
thread, so concurrent batch threads sharing one tracer attribute their
events correctly.  A thread with no open span of its own inherits the
cross-process parent installed by :func:`repro.obs.context.trace_context`
— that is what stitches a fleet worker's spans under the coordinator's
job span into one tree.

Rotation: a file-backed tracer with ``max_bytes > 0`` rotates its output
once the current segment would exceed the cap — ``trace-<pid>.jsonl``
shifts to ``trace-<pid>.jsonl.1`` (older segments shift to ``.2``, ``.3``,
...), so long fleet soaks and tune runs stay bounded per segment.  With
``max_segments > 0`` the oldest segments beyond the cap are deleted.

Readers: :func:`read_events` streams events back from a JSONL file, a
directory of ``*.jsonl`` files, or an iterable of lines — transparently
spanning rotated segments in chronological order.  Strict mode raises on
*interior* corruption but reports-and-skips a truncated final line (a
process SIGKILLed mid-write leaves a partial tail; that is expected crash
debris, not a corrupt trace).
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

from .context import correlation_id, parent_span_id

__all__ = [
    "Span",
    "Tracer",
    "default_trace_file",
    "load_events",
    "read_events",
    "trace_files",
]


class Span:
    """One timed region of a :class:`Tracer` stream (context manager)."""

    __slots__ = ("tracer", "name", "id", "parent", "_start", "attrs")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent: str,
        attrs: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.id = uuid.uuid4().hex[:12]
        self.parent = parent
        self.attrs = attrs
        self._start = time.perf_counter()

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.tracer._end_span(self, time.perf_counter() - self._start)


class Tracer:
    """Writes spans and events as JSONL (file, file-like, or in-memory).

    *sink* is a path (opened in append mode, so many tracers — or many
    processes — may share a directory of per-process files), an open
    file-like object, or ``None`` for an in-memory buffer exposed as
    :attr:`events` (already-decoded dicts).  All writes take a lock; one
    event is one line, flushed immediately, so a crashed run still leaves
    a parseable prefix.

    ``max_bytes > 0`` enables size-based rotation for path-backed sinks
    (see the module docstring); ``max_segments`` caps how many rotated
    segments are retained (0 keeps all).
    """

    def __init__(
        self,
        sink: Union[str, Path, Any, None] = None,
        trace_id: Optional[str] = None,
        max_bytes: int = 0,
        max_segments: int = 0,
    ) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex[:12]
        self.max_bytes = max(0, int(max_bytes))
        self.max_segments = max(0, int(max_segments))
        self._lock = threading.Lock()
        self._local = threading.local()
        self._owns_file = False
        self._file: Optional[Any] = None
        self._bytes = 0
        self.path: Optional[Path] = None
        self.events: List[Dict[str, Any]] = []
        if sink is None:
            pass
        elif isinstance(sink, (str, Path)):
            self.path = Path(sink)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")
            self._owns_file = True
            try:
                self._bytes = self.path.stat().st_size
            except OSError:
                self._bytes = 0
        else:
            self._file = sink

    # ------------------------------------------------------------- events --

    def _current_span(self) -> str:
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1]
        # No span open on this thread: inherit the cross-process parent a
        # fleet worker's trace_context installed, so its events and root
        # spans hang under the coordinator's job span.
        return parent_span_id()

    def event(self, kind: str, name: str = "", **attrs: Any) -> Dict[str, Any]:
        """Emit one event; returns the written record."""
        record: Dict[str, Any] = {
            "ts": time.time(),
            "kind": kind,
            "name": name,
            "corr": correlation_id() or self.trace_id,
            "span": self._current_span(),
        }
        record.update(attrs)
        self._write(record)
        return record

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span: ``with tracer.span("simulate", job=...):``."""
        span = Span(self, name, self._current_span(), attrs)
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        self.event("span_start", name, id=span.id, parent=span.parent, **attrs)
        stack.append(span.id)
        return span

    def _end_span(self, span: Span, duration: float) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] == span.id:
            stack.pop()
        record: Dict[str, Any] = {
            "ts": time.time(),
            "kind": "span_end",
            "name": span.name,
            "corr": correlation_id() or self.trace_id,
            "span": self._current_span(),
            "id": span.id,
            "parent": span.parent,
            "dur": duration,
        }
        record.update(span.attrs)
        self._write(record)

    def _write(self, record: Dict[str, Any]) -> None:
        with self._lock:
            if self._file is None:
                self.events.append(record)
                return
            line = (
                json.dumps(record, separators=(",", ":"), sort_keys=True)
                + "\n"
            )
            if (
                self.max_bytes
                and self._owns_file
                and self.path is not None
                and self._bytes > 0
                and self._bytes + len(line) > self.max_bytes
            ):
                self._rotate()
            self._file.write(line)
            self._file.flush()
            self._bytes += len(line)

    def _rotate(self) -> None:
        """Shift the current segment to ``.1`` (``.N`` -> ``.N+1``)."""
        assert self.path is not None and self._file is not None
        self._file.close()
        rotated = _rotated_segments(self.path)  # oldest (highest N) first
        for old in rotated:
            index = int(old.suffix[1:])
            if self.max_segments and index >= self.max_segments:
                old.unlink(missing_ok=True)
            else:
                old.rename(old.with_suffix(f".{index + 1}"))
        self.path.rename(self.path.with_name(self.path.name + ".1"))
        self._file = open(self.path, "a", encoding="utf-8")
        self._bytes = 0

    # ---------------------------------------------------------- lifecycle --

    def flush(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self._owns_file and self._file is not None:
                self._file.close()
            self._file = None if self._owns_file else self._file
            self._owns_file = False

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ------------------------------------------------------------------ reading --

#: Rotated-segment suffix: ``trace-123.jsonl.2`` etc.
_ROTATED = re.compile(r"\.jsonl\.(\d+)$")


def _rotated_segments(base: Path) -> List[Path]:
    """Rotated segments of *base*, oldest (highest ``.N``) first."""
    found = []
    for sibling in base.parent.glob(base.name + ".*"):
        match = _ROTATED.search(sibling.name)
        if match:
            found.append((int(match.group(1)), sibling))
    return [path for _, path in sorted(found, reverse=True)]


def trace_files(path: Union[str, Path]) -> List[Path]:
    """The JSONL files behind *path* (a file, or a directory of traces).

    Rotated segments (``trace-<pid>.jsonl.N``) are included automatically
    and ordered oldest-first before their base file, so readers span a
    rotated stream in chronological order without knowing about rotation.
    """
    root = Path(path)
    if root.is_dir():
        files: List[Path] = []
        for base in sorted(root.glob("*.jsonl")):
            files.extend(_rotated_segments(base))
            files.append(base)
        return files
    return _rotated_segments(root) + [root]


def read_events(
    source: Union[str, Path, Iterable[str]],
    strict: bool = True,
) -> Iterator[Dict[str, Any]]:
    """Stream trace events back from a JSONL file, directory, or lines.

    With ``strict=False`` undecodable lines are skipped silently.  With
    ``strict=True`` (the default) *interior* corruption raises
    ``ValueError`` naming the offending location, but an undecodable
    **final** line is reported (a warning log) and skipped: a process
    killed mid-write — as fleet workers routinely are — truncates its last
    line, and that expected crash debris must not make the rest of the
    trace unreadable.
    """
    if isinstance(source, (str, Path)):
        for file in trace_files(source):
            with open(file, "r", encoding="utf-8") as handle:
                yield from _decode_lines(handle, str(file), strict)
    else:
        yield from _decode_lines(source, "<lines>", strict)


def _decode_lines(
    lines: Iterable[str], origin: str, strict: bool
) -> Iterator[Dict[str, Any]]:
    pending_error: Optional[str] = None
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        if pending_error is not None:
            # The bad line was not the tail after all: that is interior
            # corruption, which strict mode refuses to paper over.
            raise ValueError(pending_error)
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if strict:
                pending_error = f"{origin}:{number}: invalid trace event: {exc}"
            continue
        if isinstance(record, dict):
            yield record
        elif strict:
            pending_error = f"{origin}:{number}: trace event is not an object"
    if pending_error is not None:
        from .logging import get_logger

        get_logger("obs.trace").warning(
            "skipping truncated trace tail (%s)", pending_error,
        )


def load_events(
    source: Union[str, Path, Iterable[str]],
    strict: bool = True,
) -> List[Dict[str, Any]]:
    """:func:`read_events`, materialized."""
    return list(read_events(source, strict=strict))


def default_trace_file(directory: Union[str, Path]) -> Path:
    """The per-process trace file convention: ``<dir>/trace-<pid>.jsonl``."""
    return Path(directory) / f"trace-{os.getpid()}.jsonl"
