"""Digest-verified checkpoint persistence and fault-injection hooks.

A checkpoint is a :class:`~repro.core.snapshot.SimulatorSnapshot` wrapped
in a :class:`CheckpointRecord` that also carries the job spec and
experiment settings that produced it — self-contained enough that
``mlpsim resume <token>`` can rebuild the whole run from the token alone.
Records live in the shared :class:`~repro.engine.cache.ArtifactCache`
under the ``checkpoint`` kind; the record key (the *resume token*) is the
content hash of (spec, settings), so a retried or resubmitted job finds its
own latest checkpoint with no coordination.

Integrity: the record stores a SHA-256 digest of the snapshot's canonical
wire encoding.  :meth:`CheckpointStore.load` recomputes and compares it,
raising :class:`~repro.errors.CheckpointCorruptError` on mismatch — a
corrupt checkpoint is discarded and the shard restarts from its beginning,
never resumed into a silently wrong state.

:class:`FaultInjector` interprets ``JobSpec.fault`` strings for the
recovery tests and the CI fault-injection smoke:

- ``"kill@M"`` — at the first checkpoint at or past position *M*, persist
  the checkpoint, then kill the executing attempt (``os._exit`` in a pool
  worker, an exception on the serial path).
- ``"corrupt@M"`` — same trigger, but the persisted record is tampered
  first, so the retry's resume attempt must detect the corruption.

Both fire once per cache directory (a marker file records the firing), so
the retry that follows demonstrates real recovery instead of dying again.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, replace
from typing import Optional, Tuple, TYPE_CHECKING

from ..core.snapshot import SimulatorSnapshot
from ..core.store_unit import StoreEntry, StoreUnitStats
from ..core.window import DeferredLoad
from ..engine import serialize
from ..engine.cache import ArtifactCache, content_key
from ..errors import CheckpointCorruptError, FaultInjectedError

if TYPE_CHECKING:
    from ..engine.runner import JobSpec
    from ..harness.experiment import ExperimentSettings

__all__ = [
    "CheckpointRecord",
    "CheckpointStore",
    "FaultInjector",
    "snapshot_digest",
]

#: Checkpoint record schema version.
CHECKPOINT_VERSION = 1


def snapshot_digest(snapshot: SimulatorSnapshot) -> str:
    """SHA-256 of the snapshot's canonical wire encoding."""
    payload = json.dumps(
        serialize.to_jsonable(snapshot), sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CheckpointRecord:
    """One persisted checkpoint: snapshot + provenance + integrity digest."""

    version: int
    spec: "JobSpec"
    settings: "ExperimentSettings"
    snapshot: SimulatorSnapshot
    digest: str

    def verify(self) -> SimulatorSnapshot:
        """The snapshot, after recomputing and checking its digest."""
        if self.version != CHECKPOINT_VERSION:
            raise CheckpointCorruptError(
                f"checkpoint record version {self.version} != "
                f"{CHECKPOINT_VERSION}"
            )
        actual = snapshot_digest(self.snapshot)
        if actual != self.digest:
            raise CheckpointCorruptError(
                f"checkpoint digest mismatch (stored {self.digest[:12]}..., "
                f"recomputed {actual[:12]}...); discarding checkpoint"
            )
        return self.snapshot


class CheckpointStore:
    """Checkpoint persistence over the shared artifact cache."""

    KIND = "checkpoint"

    def __init__(self, cache: ArtifactCache) -> None:
        self.cache = cache

    @staticmethod
    def token(spec: "JobSpec", settings: "ExperimentSettings") -> str:
        """The resume token: content hash of the work the checkpoint is for.

        The fault-injection field is excluded so a clean resubmission of
        the same job finds checkpoints written by a faulted attempt.
        """
        clean = replace(spec, fault="")
        return content_key("checkpoint", clean, settings)

    def save(
        self,
        spec: "JobSpec",
        settings: "ExperimentSettings",
        snapshot: SimulatorSnapshot,
    ) -> str:
        """Persist *snapshot* (replacing any older checkpoint); returns the
        resume token."""
        record = CheckpointRecord(
            version=CHECKPOINT_VERSION,
            spec=spec,
            settings=settings,
            snapshot=snapshot,
            digest=snapshot_digest(snapshot),
        )
        key = self.token(spec, settings)
        self.cache.put(self.KIND, key, record)
        return key

    def load_record(self, token: str) -> Optional[CheckpointRecord]:
        """The stored record for *token*, unverified; ``None`` if absent."""
        record = self.cache.get(self.KIND, token)
        if record is None:
            return None
        if not isinstance(record, CheckpointRecord):
            raise CheckpointCorruptError(
                f"checkpoint entry {token[:12]}... holds a "
                f"{type(record).__name__}, not a CheckpointRecord"
            )
        return record

    def load(
        self, spec: "JobSpec", settings: "ExperimentSettings",
    ) -> Optional[SimulatorSnapshot]:
        """The latest verified snapshot for (spec, settings), or ``None``.

        Raises :class:`CheckpointCorruptError` when a record exists but
        fails verification; callers discard it (:meth:`discard`) and
        restart the shard.
        """
        record = self.load_record(self.token(spec, settings))
        if record is None:
            return None
        return record.verify()

    def discard(self, spec: "JobSpec", settings: "ExperimentSettings") -> None:
        """Drop the checkpoint for (spec, settings) from both cache tiers."""
        token = self.token(spec, settings)
        self.cache._memory.pop((self.KIND, token), None)
        if self.cache.directory is not None:
            try:
                self.cache._path(self.KIND, token).unlink()
            except OSError:
                pass


# ---------------------------------------------------------------- faults --

#: In-memory fired-marker fallback for cache-less (memory-only) runs.
_FIRED_IN_PROCESS: set = set()


class FaultInjector:
    """Interprets a ``JobSpec.fault`` string at checkpoint time.

    Grammar: ``""`` (no fault), ``"kill@M"`` or ``"corrupt@M"`` with *M* a
    trace position.  The fault fires at the first checkpoint whose snapshot
    position is at or past *M*, exactly once per (fault, token) — the
    marker file lives next to the cache so the firing survives the worker's
    death.
    """

    def __init__(
        self, fault: str, cache: ArtifactCache, token: str,
    ) -> None:
        self.kind, self.at = self._parse(fault)
        self.cache = cache
        self.token = token

    @staticmethod
    def _parse(fault: str) -> Tuple[str, int]:
        if not fault:
            return "", 0
        kind, sep, raw = fault.partition("@")
        if kind not in ("kill", "corrupt") or not sep:
            raise ValueError(
                f"unknown fault spec {fault!r}; expected 'kill@M' or "
                f"'corrupt@M'"
            )
        try:
            position = int(raw)
        except ValueError:
            raise ValueError(
                f"fault position in {fault!r} must be an integer"
            ) from None
        return kind, position

    @property
    def armed(self) -> bool:
        return bool(self.kind)

    def _marker(self) -> Optional[str]:
        if self.cache.directory is None:
            return None
        return str(
            self.cache.directory / "faults" / f"{self.kind}-{self.token}.fired"
        )

    def _fire_once(self) -> bool:
        """Atomically claim the right to fire; False if already fired."""
        marker = self._marker()
        if marker is None:
            key = (self.kind, self.token)
            if key in _FIRED_IN_PROCESS:
                return False
            _FIRED_IN_PROCESS.add(key)
            return True
        os.makedirs(os.path.dirname(marker), exist_ok=True)
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def corrupts_next_save(self, snapshot: SimulatorSnapshot) -> bool:
        """True when this checkpoint save should be tampered (claims the
        firing; the caller must follow up with :meth:`terminate`)."""
        return (
            self.kind == "corrupt"
            and snapshot.pos >= self.at
            and self._fire_once()
        )

    def should_kill(self, snapshot: SimulatorSnapshot) -> bool:
        """True when the attempt should die after this checkpoint save."""
        return (
            self.kind == "kill"
            and snapshot.pos >= self.at
            and self._fire_once()
        )

    def terminate(self, in_worker: bool) -> None:
        """Kill the current attempt: hard exit in a pool worker (the
        process is disposable), an exception on the serial path (the
        caller's process must survive to retry)."""
        if in_worker:
            os._exit(17)
        raise FaultInjectedError(
            f"fault injection: {self.kind}@{self.at} fired"
        )


serialize.register(
    SimulatorSnapshot, DeferredLoad, StoreEntry, StoreUnitStats,
    CheckpointRecord,
)
