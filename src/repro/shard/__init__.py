"""Shardable, checkpointable simulation execution.

The epoch MLP model is an additive accounting over a linear instruction
stream, so a long MLPsim run can be cut into segments and merged exactly —
provided the cuts land where the machine carries no state across them.
This package supplies the three pieces:

- :mod:`repro.shard.plan` — the deterministic segmenter.  A probe run
  records every *quiescent* epoch boundary (store buffer/queue drained, no
  in-flight serializer or deferred work, no speculative prefetch beyond the
  cursor); :func:`~repro.shard.plan.build_plan` picks cuts nearest the
  requested even split.  Probes are cached by (configuration, trace
  fingerprint) in the artifact cache.
- :mod:`repro.shard.checkpoint` — digest-verified persistence of
  :class:`~repro.core.snapshot.SimulatorSnapshot` records in the
  :class:`~repro.engine.cache.ArtifactCache`, plus the fault-injection
  hooks (``kill@M``, ``corrupt@M``) the recovery tests drive.
- :mod:`repro.shard.merge` — exact whole-run reconstruction from per-shard
  :class:`~repro.core.results.SimulationResult` parts.
- :mod:`repro.shard.execute` — one shard as an engine job: slice, resume
  from the latest checkpoint if one exists, run to the planned boundary,
  checkpoint every K instructions along the way.

Reachable through the facade as :func:`repro.api.shard_plan`,
``api.run(..., shards=N, checkpoint_every=K)`` and :func:`repro.api.resume`.
"""

from .checkpoint import CheckpointRecord, CheckpointStore, FaultInjector
from .merge import merge_results
from .plan import ShardPlan, build_plan, probe_quiescent_points, trace_fingerprint
from .execute import ShardOutcome, run_shard_job, shard_plan_for

__all__ = [
    "CheckpointRecord",
    "CheckpointStore",
    "FaultInjector",
    "ShardOutcome",
    "ShardPlan",
    "build_plan",
    "merge_results",
    "probe_quiescent_points",
    "run_shard_job",
    "shard_plan_for",
    "trace_fingerprint",
]
