"""Exact reconstruction of a whole-run result from per-shard parts.

Each shard runs with a fresh accountant, so its
:class:`~repro.core.results.SimulationResult` is a pure *delta* over its
span: epoch records for the epochs it closed (indices restarting at zero),
counter totals for the work it did, occupancy high-water marks over its own
lifetime.  The epoch model makes the merge exact rather than approximate —
epochs concatenate in shard order with indices renumbered, additive
counters sum, and high-water marks take the max.  Every derived metric
(EPI, MLP, distributions) is a function of those fields, so the merged
result compares ``==`` to the unsharded run's, bit for bit.

The one structural invariant worth guarding: only the *final* shard may
contain an ``END_OF_TRACE`` epoch.  An earlier part ending that way means
the shard ran off the end of the trace instead of stopping at its planned
boundary — merging it would double-count the tail — so
:func:`merge_results` raises :class:`~repro.errors.ShardBoundaryError`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from ..core.epoch import TerminationCondition
from ..core.results import SimulationResult
from ..errors import ShardBoundaryError

__all__ = ["merge_results"]


def merge_results(parts: Sequence[SimulationResult]) -> SimulationResult:
    """Merge per-shard result deltas (in shard order) into one whole-run
    result."""
    if not parts:
        raise ShardBoundaryError("cannot merge zero shard results")
    for i, part in enumerate(parts[:-1]):
        stray = sum(
            1 for e in part.epochs
            if e.termination is TerminationCondition.END_OF_TRACE
        )
        if stray:
            raise ShardBoundaryError(
                f"shard {i} of {len(parts)} recorded {stray} END_OF_TRACE "
                f"epoch(s) but is not the final shard; it overran its "
                f"planned boundary"
            )
    merged = SimulationResult(instructions=0)
    for part in parts:
        offset = len(merged.epochs)
        merged.epochs.extend(
            replace(e, index=offset + j) for j, e in enumerate(part.epochs)
        )
        merged.instructions += part.instructions
        merged.fully_overlapped_stores += part.fully_overlapped_stores
        merged.accelerated_stores += part.accelerated_stores
        merged.scout_episodes += part.scout_episodes
        merged.stores_committed += part.stores_committed
        merged.store_prefetch_requests += part.store_prefetch_requests
        merged.stores_coalesced += part.stores_coalesced
        merged.sb_occupancy_hwm = max(merged.sb_occupancy_hwm, part.sb_occupancy_hwm)
        merged.sq_occupancy_hwm = max(merged.sq_occupancy_hwm, part.sq_occupancy_hwm)
    return merged
