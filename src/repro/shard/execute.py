"""Shard planning and execution against a Workbench.

:func:`shard_plan_for` turns an engine :class:`~repro.engine.runner.JobSpec`
into a :class:`~repro.shard.plan.ShardPlan`: it resolves the job's effective
configuration and annotated trace exactly the way the simulation path does,
then probes (or cache-hits) the quiescent boundary log and picks cuts.

:func:`run_shard_job` executes one shard (or a whole-trace checkpointed
run — a "shard" spanning ``[0:n)``):

1. slice nothing — the shard runs the trace **suffix** from its start
   position with an explicit stop, so lookahead near the boundary sees the
   same instructions the unsharded run saw;
2. resume from the latest verified checkpoint when one exists (a corrupt
   one is discarded and the shard restarts from its beginning);
3. checkpoint every K instructions through the
   :class:`~repro.shard.checkpoint.CheckpointStore`, firing any armed
   fault injector at save time;
4. stop exactly at the planned boundary (the simulator refuses a
   non-quiescent overshoot) and return the result delta plus resume
   metadata.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from ..core.backend import resolve_backend
from ..core.results import SimulationResult
from ..core.snapshot import SimulatorSnapshot
from ..engine.cache import content_key
from ..errors import CheckpointCorruptError, ShardBoundaryError
from .checkpoint import CheckpointStore, FaultInjector
from .plan import (
    ShardPlan,
    build_plan,
    plan_cache_key,
    probe_quiescent_points,
    trace_fingerprint,
)

if TYPE_CHECKING:
    from ..core.window import WindowObserver
    from ..engine.runner import JobSpec
    from ..harness.experiment import Workbench
    from ..obs.profile import PhaseProfiler
    from ..obs.trace import Tracer

__all__ = ["ShardOutcome", "run_shard_job", "shard_plan_for"]


@dataclass
class ShardOutcome:
    """What one shard execution produced, beyond the result itself.

    ``resumed_pos`` is the *absolute* trace position the run restarted
    from (``-1`` when it started fresh) — the recovery tests assert on it
    to prove completed work was not redone.  ``checkpoint_token`` is the
    cache key a later ``mlpsim resume <token>`` can use.
    """

    result: SimulationResult
    resumed_pos: int = -1
    checkpoints_written: int = 0
    checkpoint_token: str = ""


def shard_plan_for(
    bench: "Workbench", spec: "JobSpec", shards: int,
) -> ShardPlan:
    """A deterministic shard plan for the run *spec* describes.

    The probe (one serial simulation logging quiescent boundaries) is
    cached in the bench's artifact cache by (configuration, trace
    fingerprint); replanning at a different shard count reuses it.
    """
    annotated = bench.annotated(
        spec.workload, spec.variant, spec.memory_config, spec.sharing,
        spec.tag,
    )
    config = bench.resolved_config(
        spec.workload, spec.variant, spec.config, **dict(spec.core_changes),
    )
    config_key = content_key("simconfig", config)
    fingerprint = trace_fingerprint(annotated)
    points = bench.artifacts.get_or_create(
        "shard-probe",
        plan_cache_key(config_key, fingerprint),
        lambda: probe_quiescent_points(annotated, config),
    )
    return build_plan(
        len(annotated), points, shards,
        config_key=config_key, fingerprint=fingerprint,
    )


def _in_pool_worker() -> bool:
    from ..engine import runner
    return runner._WORKER_BENCH is not None


def run_shard_job(
    bench: "Workbench",
    spec: "JobSpec",
    observer: Optional["WindowObserver"] = None,
    profiler: Optional["PhaseProfiler"] = None,
    tracer: Optional["Tracer"] = None,
) -> ShardOutcome:
    """Execute one shard/checkpointed simulate job against *bench*."""
    annotated = bench.annotated(
        spec.workload, spec.variant, spec.memory_config, spec.sharing,
        spec.tag,
    )
    config = bench.resolved_config(
        spec.workload, spec.variant, spec.config, **dict(spec.core_changes),
    )
    n = len(annotated)
    start = spec.shard_start if spec.shard_start >= 0 else 0
    stop = spec.shard_stop if spec.shard_stop >= 0 else n
    if not (0 <= start < stop <= n):
        raise ShardBoundaryError(
            f"shard span [{start}:{stop}) is invalid for a trace of "
            f"{n} instructions"
        )
    suffix = annotated[start:] if start else annotated
    stop_rel: Optional[int] = (stop - start) if stop < n else None

    store = CheckpointStore(bench.artifacts)
    token = store.token(spec, bench.settings)
    checkpointing = spec.checkpoint_every > 0

    resume: Optional[SimulatorSnapshot] = None
    resumed_pos = -1
    if checkpointing:
        try:
            resume = store.load(spec, bench.settings)
        except CheckpointCorruptError:
            if tracer is not None:
                tracer.event(
                    "checkpoint_corrupt", job=spec.describe(), token=token,
                )
            store.discard(spec, bench.settings)
            resume = None
        if resume is not None:
            resumed_pos = start + resume.pos
            if tracer is not None:
                tracer.event(
                    "shard_resume", job=spec.describe(),
                    pos=resumed_pos, token=token,
                )

    injector = (
        FaultInjector(spec.fault, bench.artifacts, token)
        if spec.fault else None
    )
    written = 0

    def sink(snapshot: SimulatorSnapshot) -> None:
        nonlocal written
        key = store.save(spec, bench.settings, snapshot)
        written += 1
        if tracer is not None:
            tracer.event(
                "checkpoint", job=spec.describe(),
                pos=start + snapshot.pos, token=key,
            )
        if injector is None:
            return
        if injector.corrupts_next_save(snapshot):
            record = store.load_record(key)
            assert record is not None
            bench.artifacts.put(
                CheckpointStore.KIND, key,
                dataclasses.replace(record, digest="0" * 64),
            )
            injector.terminate(_in_pool_worker())
        elif injector.should_kill(snapshot):
            injector.terminate(_in_pool_worker())

    # Every backend honours the shard hooks (resume/stop/checkpoint) and is
    # bit-identical to the reference loop, so shard merging stays exact
    # regardless of which one runs the segment.
    backend = resolve_backend(spec.backend or None)
    kwargs = dict(
        observer=observer,
        resume=resume,
        stop=stop_rel,
        checkpoint_every=spec.checkpoint_every,
        checkpoint_sink=sink if checkpointing else None,
    )
    if profiler is not None:
        with profiler.phase("simulate"):
            result = backend.simulate(config, suffix, **kwargs)
    else:
        result = backend.simulate(config, suffix, **kwargs)
    return ShardOutcome(
        result=result,
        resumed_pos=resumed_pos,
        checkpoints_written=written,
        checkpoint_token=token if checkpointing else "",
    )
