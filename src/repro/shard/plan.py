"""Deterministic trace segmentation at epoch-safe boundaries.

A shard boundary must be a position the simulation passes through with no
machine state carried across it — otherwise a fresh simulator started on
the suffix would diverge.  Statically such positions cannot be recognized
(whether the store buffer is drained at position *p* depends on the whole
dynamics up to *p*), so the segmenter runs one instrumented *probe*
simulation that logs every quiescent epoch boundary (see
:func:`repro.core.snapshot.is_quiescent`), and cuts are chosen from that
log.  The probe costs one serial run per (configuration, trace) pair and is
cached as a ``shard-probe`` artifact, so a sweep of sharded runs — or a
re-run after a crash — pays it once.

Exactness argument: at a quiescent boundary every comparison the simulator
will make from then on is either positional (and all recorded state is
strictly behind the cursor) or epoch-relative (and every register is usable
*now*, exactly like a fresh scoreboard).  A shard therefore runs a fresh
simulator over the **suffix** of the trace starting at its boundary — not a
truncated slice, so window-termination checks and scout lookahead near the
next boundary see the same instructions the unsharded run saw — and stops
at the next planned boundary.  Per-shard epoch records then equal the
unsharded run's records over the same span, field for field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..config import SimulationConfig
from ..core.mlpsim import MlpSimulator
from ..engine import serialize
from ..engine.cache import content_key, stable_token
from ..errors import ShardBoundaryError
from ..memory.annotate import AnnotatedTrace

__all__ = [
    "ShardPlan",
    "build_plan",
    "probe_quiescent_points",
    "trace_fingerprint",
]


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic segmentation of one (trace, configuration) pair.

    ``cuts`` are strictly increasing positions in ``(0, instructions)``; the
    plan yields ``len(cuts) + 1`` shards.  When the trace offers fewer
    quiescent boundaries than ``requested - 1``, the plan degrades to the
    boundaries that exist (never to an unsafe cut): ``shard_count`` may be
    smaller than ``requested``.  ``config_key``/``trace_fingerprint``
    identify what was probed, so executing a plan against different inputs
    fails loudly instead of merging garbage.
    """

    instructions: int
    requested: int
    cuts: Tuple[int, ...]
    config_key: str = ""
    trace_fingerprint: str = ""

    @property
    def bounds(self) -> Tuple[int, ...]:
        return (0,) + self.cuts + (self.instructions,)

    @property
    def shards(self) -> Tuple[Tuple[int, int], ...]:
        """``(start, stop)`` half-open spans, in trace order."""
        bounds = self.bounds
        return tuple(
            (bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)
        )

    @property
    def shard_count(self) -> int:
        return len(self.cuts) + 1

    def describe(self) -> str:
        spans = " ".join(f"[{a}:{b})" for a, b in self.shards)
        return (
            f"{self.shard_count} shard(s) over {self.instructions} "
            f"insts: {spans}"
        )

    def validate(self) -> None:
        last = 0
        for cut in self.cuts:
            if not (last < cut < self.instructions):
                raise ShardBoundaryError(
                    f"shard plan cuts {self.cuts} are not strictly "
                    f"increasing within (0, {self.instructions})"
                )
            last = cut


def probe_quiescent_points(
    trace: AnnotatedTrace, config: SimulationConfig,
) -> List[Tuple[int, int]]:
    """Every quiescent epoch boundary of one simulation, as (pos, cur).

    One full serial simulation of *trace* under *config* — the cacheable
    half of shard planning.
    """
    log: List[Tuple[int, int]] = []
    MlpSimulator(config).run(trace, quiescent_log=log)
    return log


def build_plan(
    instructions: int,
    points: List[Tuple[int, int]],
    shards: int,
    config_key: str = "",
    fingerprint: str = "",
) -> ShardPlan:
    """Choose cuts from probed quiescent *points* nearest an even split.

    Deterministic: for each interior target ``i * n / shards`` the nearest
    quiescent position wins (ties break low); duplicates collapse, so
    boundary-starved traces yield fewer shards rather than unsafe cuts.
    """
    if shards < 1:
        raise ShardBoundaryError(f"shard count must be >= 1, got {shards}")
    candidates = sorted({pos for pos, _ in points if 0 < pos < instructions})
    cuts: List[int] = []
    if shards > 1 and candidates:
        chosen = set()
        for i in range(1, shards):
            target = i * instructions // shards
            best = min(candidates, key=lambda pos: (abs(pos - target), pos))
            chosen.add(best)
        cuts = sorted(chosen)
    plan = ShardPlan(
        instructions=instructions,
        requested=shards,
        cuts=tuple(cuts),
        config_key=config_key,
        trace_fingerprint=fingerprint,
    )
    plan.validate()
    return plan


def trace_fingerprint(trace: AnnotatedTrace) -> str:
    """A cheap, stable identity for an annotated trace.

    Hashes the length plus a deterministic sample of (instruction,
    annotation) pairs — enough to tell traces apart without tokenizing
    hundreds of thousands of entries.
    """
    n = len(trace)
    if n == 0:
        return content_key("trace-fp", 0)
    step = max(1, n // 64)
    sample = [trace[i] for i in range(0, n, step)]
    sample.append(trace[-1])
    return content_key("trace-fp", n, stable_token(sample))


def plan_cache_key(
    config_key: str, fingerprint: str, extra: Optional[str] = None,
) -> str:
    """Artifact-cache key for a probe of one (configuration, trace) pair."""
    return content_key("shard-probe", config_key, fingerprint, extra)


serialize.register(ShardPlan)
