"""Register name space for trace instructions.

The trace ISA exposes a flat file of integer registers.  Register 0 is the
hard-wired zero register (SPARC ``%g0``): writes to it are discarded and
reads from it carry no dependence, mirroring how real traces use it.
"""

from __future__ import annotations

import itertools

#: Number of architectural registers in the trace ISA.
NUM_REGISTERS = 64

#: Sentinel meaning "no register" (e.g. a store has no destination).
REG_NONE = -1

#: The hard-wired zero register; never creates a dependence.
REG_ZERO = 0


class RegisterAllocator:
    """Round-robin allocator of scratch registers for trace generators.

    Workload generators need plausible register dependences without tracking
    real live ranges.  This allocator hands out registers ``1..NUM_REGISTERS-1``
    in rotation, which yields short dependence chains similar to compiled
    code, while guaranteeing the zero register is never allocated.
    """

    def __init__(self, reserve: int = 8) -> None:
        if not 0 <= reserve < NUM_REGISTERS - 1:
            raise ValueError(f"cannot reserve {reserve} of {NUM_REGISTERS} registers")
        self._reserved = range(1, 1 + reserve)
        self._rotation = itertools.cycle(range(1 + reserve, NUM_REGISTERS))

    @property
    def reserved(self) -> range:
        """Registers excluded from rotation (for long-lived values like locks)."""
        return self._reserved

    def fresh(self) -> int:
        """Return the next scratch register in rotation."""
        return next(self._rotation)
