"""Abstract trace instruction set.

The simulator is trace driven: it consumes streams of
:class:`~repro.isa.instruction.Instruction` records whose semantics are the
subset of SPARC V9 (TSO) and PowerPC Book E behaviour that matters to the
epoch MLP model — memory operations, control flow, atomics and memory
barriers.  Everything else is an opaque ALU operation with register
dependences.
"""

from .instruction import Instruction
from .opcodes import (
    InstructionClass,
    is_load_like,
    is_memory_access,
    is_serializing,
    is_store_like,
)
from .registers import NUM_REGISTERS, REG_NONE, RegisterAllocator

__all__ = [
    "Instruction",
    "InstructionClass",
    "NUM_REGISTERS",
    "REG_NONE",
    "RegisterAllocator",
    "is_load_like",
    "is_memory_access",
    "is_serializing",
    "is_store_like",
]
