"""Instruction classes and their ordering semantics.

The epoch MLP model cares about a small taxonomy of instruction behaviour:
whether an instruction reads memory, writes memory, transfers control, or
serializes the pipeline under a given memory consistency model.  This module
defines that taxonomy and the predicates the simulator uses.

The SPARC TSO flavour contributes ``CAS`` (``casa``: an atomic load+store
used for lock acquisition) and ``MEMBAR``.  The PowerPC weak-consistency
flavour contributes ``LOAD_LOCKED``/``STORE_COND`` (``lwarx``/``stwcx``),
``ISYNC`` and ``LWSYNC``; these appear in traces after the lock rewriter has
converted TSO lock sequences into their WC equivalents.
"""

from __future__ import annotations

import enum

from ..config import ConsistencyModel


class InstructionClass(enum.Enum):
    """Dynamic instruction classes recognised by the simulator."""

    ALU = "alu"
    NOP = "nop"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    CALL = "call"
    RETURN = "return"
    CAS = "cas"                  # SPARC casa: atomic load+store, TSO-serializing
    MEMBAR = "membar"            # SPARC membar #StoreLoad etc.
    LOAD_LOCKED = "load_locked"  # PowerPC lwarx
    STORE_COND = "store_cond"    # PowerPC stwcx.
    ISYNC = "isync"              # PowerPC context-synchronizing barrier
    LWSYNC = "lwsync"            # PowerPC lightweight sync
    PREFETCH = "prefetch"        # software prefetch hint


_LOAD_LIKE = frozenset({
    InstructionClass.LOAD,
    InstructionClass.CAS,
    InstructionClass.LOAD_LOCKED,
})

_STORE_LIKE = frozenset({
    InstructionClass.STORE,
    InstructionClass.CAS,
    InstructionClass.STORE_COND,
})

_MEMORY = _LOAD_LIKE | _STORE_LIKE | {InstructionClass.PREFETCH}

_CONTROL = frozenset({
    InstructionClass.BRANCH,
    InstructionClass.CALL,
    InstructionClass.RETURN,
})

# Instructions that terminate the window under processor consistency because
# they require the store buffer and store queue to drain before executing.
_PC_SERIALIZING = frozenset({
    InstructionClass.CAS,
    InstructionClass.MEMBAR,
})

# Under weak consistency, the casa/membar idiom is replaced by
# lwarx/stwcx/isync: isync waits only for the lock acquisition itself, and
# lwsync merely orders stores across it.  Neither drains the store queue, so
# neither is a *store*-serializing window termination.  ``stwcx`` still
# synchronizes the lock word, and ``isync`` discards speculative fetch; we
# model isync as serializing execution (but not store-queue drain).
_WC_SERIALIZING = frozenset({
    InstructionClass.ISYNC,
})


def is_load_like(kind: InstructionClass) -> bool:
    """True when the instruction reads memory (loads, atomics, lwarx)."""
    return kind in _LOAD_LIKE


def is_store_like(kind: InstructionClass) -> bool:
    """True when the instruction writes memory (stores, atomics, stwcx)."""
    return kind in _STORE_LIKE


def is_memory_access(kind: InstructionClass) -> bool:
    """True when the instruction accesses data memory at all."""
    return kind in _MEMORY


def is_control(kind: InstructionClass) -> bool:
    """True when the instruction redirects fetch."""
    return kind in _CONTROL


def is_serializing(kind: InstructionClass, model: ConsistencyModel) -> bool:
    """True when *kind* drains/serializes the pipeline under *model*.

    Under PC (TSO), ``casa`` and ``membar`` force all earlier stores to be
    performed before they execute.  Under WC, only ``isync`` serializes
    execution, and it does **not** wait for the store queue to drain — the
    distinction at the heart of the paper's PC-vs-WC gap.
    """
    if model is ConsistencyModel.PC:
        return kind in _PC_SERIALIZING
    return kind in _WC_SERIALIZING


def drains_store_queue(kind: InstructionClass, model: ConsistencyModel) -> bool:
    """True when *kind* must wait for every earlier store to commit.

    This is the property that exposes store-miss latency: under PC both
    ``casa`` and ``membar`` drain the store buffer and store queue, while
    under WC no barrier in the lock idiom does (``lwsync`` orders stores but
    the pipeline continues past it).
    """
    if model is ConsistencyModel.PC:
        return kind in _PC_SERIALIZING
    return False
