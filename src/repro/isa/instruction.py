"""The dynamic trace instruction record.

A trace is a sequence of :class:`Instruction` values.  The record is
deliberately small (slots, no dict) because simulations stream hundreds of
thousands of them; it carries exactly what the epoch MLP model needs:

- the instruction class and PC (for the I-cache and branch predictor),
- the effective address and size (for the data caches),
- source/destination registers (for dependence tracking),
- branch outcome (for misprediction modelling), and
- lock-role annotations produced by the lock detector / workload generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .opcodes import InstructionClass, is_load_like, is_memory_access, is_store_like
from .registers import REG_NONE


@dataclass(slots=True)
class Instruction:
    """One dynamic instruction in a trace.

    ``address`` is the data effective address for memory instructions and
    zero otherwise.  ``taken``/``target`` are meaningful only for control
    transfers.  ``lock_acquire``/``lock_release`` mark the instructions a
    lock detector identified as the acquire (``casa``/``stwcx``) and release
    (plain store) of a critical section; Speculative Lock Elision keys off
    these flags.
    """

    kind: InstructionClass
    pc: int
    address: int = 0
    size: int = 0
    dest: int = REG_NONE
    srcs: tuple[int, ...] = field(default=())
    taken: bool = False
    target: int = 0
    lock_acquire: bool = False
    lock_release: bool = False

    @property
    def is_load(self) -> bool:
        """True when this instruction reads data memory."""
        return is_load_like(self.kind)

    @property
    def is_store(self) -> bool:
        """True when this instruction writes data memory."""
        return is_store_like(self.kind)

    @property
    def is_memory(self) -> bool:
        """True when this instruction touches data memory."""
        return is_memory_access(self.kind)

    def reads(self) -> tuple[int, ...]:
        """Source registers that create dependences (zero register excluded)."""
        return tuple(r for r in self.srcs if r > 0)

    def address_reads(self) -> tuple[int, ...]:
        """Source registers feeding the *address* computation.

        Convention: for stores the first source is the address base and any
        further sources carry data; loads and atomics use all sources for
        the address.  Prefetch-for-write only needs the address, so scout
        passes use this narrower set for stores.
        """
        if self.kind in (InstructionClass.STORE, InstructionClass.STORE_COND):
            return tuple(r for r in self.srcs[:1] if r > 0)
        return self.reads()

    def line_address(self, line_bytes: int) -> int:
        """Data address truncated to a cache-line boundary."""
        return self.address & ~(line_bytes - 1)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{self.kind.value}@{self.pc:#x}"]
        if self.is_memory:
            parts.append(f"[{self.address:#x}+{self.size}]")
        if self.dest != REG_NONE:
            parts.append(f"->r{self.dest}")
        if self.lock_acquire:
            parts.append("(acq)")
        if self.lock_release:
            parts.append("(rel)")
        return " ".join(parts)
