"""Content-addressed artifact cache: in-memory LRU over a pickle store.

Every expensive pipeline stage (calibrated profiles, generated traces,
annotated traces) is keyed by a SHA-256 hash of the *content* that produced
it — the workload profile, experiment settings, trace variant and
memory-side configuration — so a key can never serve a stale artifact: any
input change changes the key.  Values flow through two tiers:

1. an in-memory LRU (object identity preserved within a process), and
2. an optional on-disk pickle store (shared between processes and runs).

Disk writes are atomic (temp file + ``os.replace``), so parallel workers
racing to fill the same key are safe: last writer wins and every reader
sees either nothing or a complete artifact.  Unreadable or truncated
entries are treated as misses and deleted.

``SCHEMA_SALT`` versions the key space; bump it whenever the pipeline's
semantics change so old cache directories are ignored rather than trusted.
"""

from __future__ import annotations

import enum
import hashlib
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, fields, is_dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Bump when trace generation / annotation semantics change incompatibly.
SCHEMA_SALT = "repro-artifacts-v1"

#: Internal miss marker: distinguishes "no entry" from a cached ``None``
#: (a ``None``-returning factory is a legitimate artifact and must not be
#: recomputed on every lookup).
_MISS = object()


def stable_token(obj: Any) -> str:
    """A canonical, process-independent string rendering of *obj*.

    Supports the value types configuration objects are made of: scalars,
    strings, enums, (frozen) dataclasses and the standard containers.
    Anything else raises ``TypeError`` — an unstable ``repr`` silently
    corrupting cache keys is far worse than a loud failure.
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return repr(obj)
    if isinstance(obj, float):
        return repr(obj)  # repr round-trips floats exactly
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if is_dataclass(obj) and not isinstance(obj, type):
        inner = ",".join(
            f"{f.name}={stable_token(getattr(obj, f.name))}"
            for f in fields(obj)
        )
        return f"{type(obj).__name__}({inner})"
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(stable_token(item) for item in obj) + "]"
    if isinstance(obj, (set, frozenset)):
        return "{" + ",".join(sorted(stable_token(item) for item in obj)) + "}"
    if isinstance(obj, dict):
        items = sorted(
            (stable_token(key), stable_token(value))
            for key, value in obj.items()
        )
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    raise TypeError(
        f"cannot build a stable cache token for {type(obj).__name__}"
    )


def content_key(kind: str, *parts: Any) -> str:
    """SHA-256 content hash identifying one artifact."""
    token = stable_token((SCHEMA_SALT, kind) + parts)
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting, split by tier."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def snapshot(self) -> Tuple[int, int]:
        """(hits, misses) — for computing per-job deltas."""
        return (self.hits, self.misses)

    def register_metrics(self, registry: Any, prefix: str = "cache") -> None:
        """Expose this cache's tiers as gauges on a
        :class:`repro.obs.metrics.MetricsRegistry`."""
        registry.gauge(
            f"{prefix}_memory_hits", lambda: self.memory_hits,
            help="artifact cache hits served from the in-memory LRU",
        )
        registry.gauge(
            f"{prefix}_disk_hits", lambda: self.disk_hits,
            help="artifact cache hits served from the on-disk store",
        )
        registry.gauge(
            f"{prefix}_misses", lambda: self.misses,
            help="artifact cache misses (artifact recomputed)",
        )
        registry.gauge(
            f"{prefix}_writes", lambda: self.writes,
            help="artifacts written to the on-disk store",
        )
        registry.gauge(
            f"{prefix}_evictions", lambda: self.evictions,
            help="in-memory LRU evictions",
        )


class ArtifactCache:
    """Two-tier content-addressed cache for pipeline artifacts.

    ``directory=None`` disables the persistent tier: the cache degrades to a
    plain in-memory LRU, which is exactly the old Workbench behaviour.
    """

    def __init__(
        self,
        directory: str | Path | None,
        memory_entries: int = 128,
    ) -> None:
        if memory_entries < 1:
            raise ValueError("memory_entries must be positive")
        self.directory: Optional[Path] = (
            Path(directory) if directory is not None else None
        )
        self.memory_entries = memory_entries
        self.stats = CacheStats()
        self._memory: "OrderedDict[Tuple[str, str], Any]" = OrderedDict()
        #: Per-key writer locks: publish (put) and eviction (prune) of the
        #: same key serialize, so a prune working from a stale directory
        #: listing can never unlink an entry a concurrent writer just
        #: republished.
        self._key_locks: Dict[Tuple[str, str], threading.Lock] = {}
        self._key_locks_guard = threading.Lock()

    def _lock_for(self, kind: str, key: str) -> threading.Lock:
        with self._key_locks_guard:
            return self._key_locks.setdefault((kind, key), threading.Lock())

    # ------------------------------------------------------------ lookup --

    def get(self, kind: str, key: str, default: Any = None) -> Any:
        """The cached value, consulting memory then disk."""
        mem_key = (kind, key)
        if mem_key in self._memory:
            self._memory.move_to_end(mem_key)
            self.stats.memory_hits += 1
            return self._memory[mem_key]
        value = self._read_disk(kind, key)
        if value is not _MISS:
            self._remember(mem_key, value)
            self.stats.disk_hits += 1
            return value
        self.stats.misses += 1
        return default

    def get_or_create(
        self, kind: str, key: str, factory: Callable[[], Any]
    ) -> Any:
        """The cached value, computing and storing it on a miss."""
        sentinel = object()
        value = self.get(kind, key, default=sentinel)
        if value is not sentinel:
            return value
        value = factory()
        self.put(kind, key, value)
        return value

    def put(self, kind: str, key: str, value: Any) -> None:
        """Insert into the LRU and (when persistent) write through to disk."""
        self._remember((kind, key), value)
        self.stats.writes += 1
        if self.directory is None:
            return
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish: writers never expose a partial pickle.  The
        # per-key lock additionally orders this publish against a
        # concurrent prune of the same key.
        with self._lock_for(kind, key):
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".pkl"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(
                        value, handle, protocol=pickle.HIGHEST_PROTOCOL,
                    )
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise

    # ---------------------------------------------------------- internals --

    def _remember(self, mem_key: Tuple[str, str], value: Any) -> None:
        self._memory[mem_key] = value
        self._memory.move_to_end(mem_key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _read_disk(self, kind: str, key: str) -> Any:
        """The stored value, or the ``_MISS`` marker — never conflated."""
        if self.directory is None:
            return _MISS
        path = self._path(kind, key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return _MISS
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError):
            # Truncated or stale entry: drop it and treat as a miss.
            try:
                path.unlink()
            except OSError:
                pass
            return _MISS

    def _path(self, kind: str, key: str) -> Path:
        assert self.directory is not None
        return self.directory / kind / key[:2] / f"{key}.pkl"

    # -------------------------------------------------------------- admin --

    def clear_memory(self) -> None:
        """Drop the in-memory tier (persistent artifacts survive)."""
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)

    # ---------------------------------------------------- disk-tier admin --

    def _disk_entries(self) -> List["DiskEntry"]:
        """Every persisted artifact, with its size and mtime.

        Temp files mid-publish (``.tmp-*``) are skipped; entries that vanish
        while being statted (a concurrent prune or replace) are skipped too.
        """
        if self.directory is None or not self.directory.is_dir():
            return []
        entries: List[DiskEntry] = []
        for kind_dir in sorted(self.directory.iterdir()):
            if not kind_dir.is_dir():
                continue
            for path in sorted(kind_dir.glob("*/*.pkl")):
                if path.name.startswith(".tmp-"):
                    continue
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append(DiskEntry(
                    kind=kind_dir.name,
                    key=path.stem,
                    path=path,
                    bytes=stat.st_size,
                    mtime=stat.st_mtime,
                ))
        return entries

    def disk_stats(self) -> "DiskTierStats":
        """Entry count and footprint of the persistent tier, by kind."""
        stats = DiskTierStats()
        for entry in self._disk_entries():
            stats.entries += 1
            stats.total_bytes += entry.bytes
            kind_entries, kind_bytes = stats.by_kind.get(entry.kind, (0, 0))
            stats.by_kind[entry.kind] = (
                kind_entries + 1, kind_bytes + entry.bytes,
            )
        return stats

    def prune(
        self,
        max_bytes: Optional[int] = None,
        older_than: Optional[float] = None,
        now: Optional[float] = None,
    ) -> "PruneResult":
        """Evict persistent entries, oldest-mtime first.

        ``older_than`` removes every entry whose mtime is more than that many
        seconds in the past; ``max_bytes`` then evicts the oldest remaining
        entries (LRU by mtime — reads do not touch mtime, so this is really
        least-recently-*written*) until the tier fits.  Both criteria may be
        combined; with neither, nothing is removed.  The in-memory tier is
        untouched: evicted artifacts may survive there until process exit.
        """
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        if older_than is not None and older_than < 0:
            raise ValueError("older_than must be non-negative")
        entries = sorted(self._disk_entries(), key=lambda e: e.mtime)
        total = sum(entry.bytes for entry in entries)
        cutoff = (
            (now if now is not None else time.time()) - older_than
            if older_than is not None else None
        )
        result = PruneResult(
            remaining_entries=len(entries), remaining_bytes=total,
        )
        for index, entry in enumerate(entries):
            stale = cutoff is not None and entry.mtime < cutoff
            over = (
                max_bytes is not None and result.remaining_bytes > max_bytes
            )
            if not stale and not over:
                if max_bytes is None:
                    break  # mtime-sorted: nothing later is stale either
                continue
            # Under the key's writer lock, re-stat before unlinking: the
            # listing above may be stale, and a writer may have republished
            # this key since — its fresh entry must survive the prune.
            with self._lock_for(entry.kind, entry.key):
                try:
                    current_mtime = entry.path.stat().st_mtime
                except FileNotFoundError:
                    # Concurrent removal: already gone, still count it out.
                    result.removed_entries += 1
                    result.removed_bytes += entry.bytes
                    result.remaining_entries -= 1
                    result.remaining_bytes -= entry.bytes
                    continue
                except OSError:
                    continue  # unstattable entry stays in remaining totals
                if current_mtime != entry.mtime:
                    continue  # republished since the listing: keep it
                try:
                    entry.path.unlink()
                except FileNotFoundError:
                    pass
                except OSError:
                    continue  # unremovable entry stays in remaining totals
            result.removed_entries += 1
            result.removed_bytes += entry.bytes
            result.remaining_entries -= 1
            result.remaining_bytes -= entry.bytes
        return result


@dataclass(frozen=True)
class DiskEntry:
    """One persisted artifact on disk."""

    kind: str
    key: str
    path: Path
    bytes: int
    mtime: float


@dataclass
class DiskTierStats:
    """Footprint of the persistent tier."""

    entries: int = 0
    total_bytes: int = 0
    #: kind -> (entry count, bytes)
    by_kind: Dict[str, Tuple[int, int]] = field(default_factory=dict)


@dataclass
class PruneResult:
    """Outcome of one :meth:`ArtifactCache.prune` pass."""

    removed_entries: int = 0
    removed_bytes: int = 0
    remaining_entries: int = 0
    remaining_bytes: int = 0


def resolve_cache_dir(cache_dir: str | Path | None) -> Optional[Path]:
    """Resolve the Workbench/runner ``cache_dir`` convention.

    ``"auto"`` means: honour the ``REPRO_CACHE_DIR`` environment variable,
    defaulting to ``.repro-cache`` under the current directory (covered by
    ``.gitignore``).  ``None`` disables persistence; anything else is used
    as given.
    """
    if cache_dir is None:
        return None
    if cache_dir == "auto":
        return Path(os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))
    return Path(cache_dir)
