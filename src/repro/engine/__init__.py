"""The engine layer: persistent artifact caching and parallel execution.

Sits between the core simulator and the experiment harness:

- :mod:`repro.engine.cache` — a content-addressed artifact cache (traces,
  annotations, calibrated profiles) with an in-memory LRU over an atomic
  on-disk pickle store, safe to share between worker processes.
- :mod:`repro.engine.runner` — :class:`EngineRunner`, which fans a batch of
  ``(workload, variant, config)`` jobs across a process pool with per-job
  timeout, retry-once and a structured :class:`RunReport`.

The Workbench (:mod:`repro.harness.experiment`) builds on the cache; the
sweep helpers (:mod:`repro.harness.sweeps`), the CLI and the figure benches
build on the runner.
"""

from .cache import (
    ArtifactCache,
    CacheStats,
    DiskTierStats,
    PruneResult,
    content_key,
    resolve_cache_dir,
    stable_token,
)
from .runner import (
    BatchHandle,
    EngineRunner,
    JobResult,
    JobSpec,
    RunReport,
    execute_job,
)
from .serialize import from_jsonable, to_jsonable

__all__ = [
    "ArtifactCache",
    "BatchHandle",
    "CacheStats",
    "DiskTierStats",
    "EngineRunner",
    "JobResult",
    "JobSpec",
    "PruneResult",
    "RunReport",
    "content_key",
    "execute_job",
    "from_jsonable",
    "resolve_cache_dir",
    "stable_token",
    "to_jsonable",
]
