"""Parallel job runner for simulation batches.

.. deprecated:: entry point
   Constructing an :class:`EngineRunner` directly still works, but new
   code should go through :func:`repro.api.sweep`, which builds the runner
   and pairs the report back with its sweep grid.

A figure sweep is a batch of independent ``(workload, variant, core
configuration)`` jobs.  :class:`EngineRunner` executes such a batch across
worker processes (``concurrent.futures.ProcessPoolExecutor``) with a
per-job timeout and retry-once-on-failure, and returns a structured
:class:`RunReport` (per-job status, wall time, cache hit/miss counts).

Each worker process owns one :class:`~repro.harness.experiment.Workbench`
built from the same :class:`ExperimentSettings` and pointing at the same
persistent :class:`~repro.engine.cache.ArtifactCache` directory, so the
expensive calibrate → generate → annotate stages are computed once per
content key *across the whole pool* — the first worker to annotate a
variant publishes it; everyone else gets disk hits.  Simulation results are
deterministic functions of the (seeded) artifacts, so a parallel run
returns bit-identical numbers to a serial one.

``workers <= 1`` runs the batch serially in-process — same jobs, same
report shape — which is both the comparison baseline and the fallback on
platforms where process pools are unavailable.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
import traceback
from collections import Counter
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    TimeoutError as FutureTimeoutError,
)
from dataclasses import dataclass, field, fields, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..config import MemoryConfig, SimulationConfig
from ..core.epoch import TerminationCondition
from ..core.results import SimulationResult
from ..core.window import WindowObserver
from ..errors import BatchFailedError, EngineConfigError
from ..obs.context import (
    correlation_id,
    parent_span_id,
    set_correlation_id,
    set_parent_span_id,
)
from ..obs.metrics import MetricsRegistry
from ..obs.options import ObsOptions
from ..obs.profile import PhaseProfiler
from ..obs.recorder import EpochTimelineRecorder
from ..obs.trace import Tracer
from ..workloads import WorkloadProfile
from . import serialize

if TYPE_CHECKING:  # break the harness <-> engine import cycle: the
    # harness builds on engine.cache, so the runner (which builds
    # Workbenches) resolves the harness lazily at call time.
    from ..harness.experiment import (
        ExperimentSettings,
        SharingSettings,
        Workbench,
    )

__all__ = [
    "BatchHandle",
    "EngineRunner",
    "EngineTelemetry",
    "JobResult",
    "JobSpec",
    "RunReport",
    "ShardedReport",
    "execute_job",
]


def _ensure_wire_types() -> None:
    """Importing the harness registers its wire-visible dataclasses
    (ExperimentSettings, SharingSettings) — needed before decoding specs
    that embed them."""
    from ..harness import experiment  # noqa: F401


@dataclass(frozen=True)
class JobSpec:
    """One unit of work: annotate and/or simulate one configuration.

    ``action`` is ``"simulate"`` (annotate through the cache, then run
    MLPsim, returning a :class:`SimulationResult`) or ``"annotate"`` (warm
    the artifact cache only, returning ``None``).  ``core_changes`` is a
    tuple of ``(field, value)`` pairs applied to the core configuration —
    the hashable form of a sweep grid point.

    The shard fields turn a simulate job into one segment of a sharded run
    (see :mod:`repro.shard`): ``shard_start``/``shard_stop`` bound the
    half-open trace span (``-1`` means the natural end), ``checkpoint_every``
    asks for a snapshot every K instructions so a failed attempt resumes
    instead of restarting, and ``fault`` arms a test-only fault injection
    (``"kill@M"``/``"corrupt@M"``).  All default to "off", keeping plain
    jobs byte-compatible with previously serialized specs.

    ``backend`` names the execution backend (``"reference"``, ``"event"``,
    ``"batch"``) the simulation runs on; ``""`` defers to ``$REPRO_BACKEND``
    and then the default.  Backends are bit-identical, so the field changes
    how the job executes, never what it returns.

    ``contexts``/``scheduler`` opt a simulate job into the SMT
    multi-context model (:mod:`repro.smt`): ``contexts`` hardware
    contexts run the workload mix named by ``workload`` (``"a+b"`` or a
    named mix) under the chosen scheduling policy, returning an
    :class:`repro.smt.SmtResult`.  The defaults — one context, no
    scheduler — keep the single-context path bit-identical to the
    reference backend and previously serialized specs decodable.
    """

    workload: str
    variant: str = "pc"
    action: str = "simulate"
    memory_config: Optional[MemoryConfig] = None
    sharing: Optional[SharingSettings] = None
    tag: str = ""
    config: Optional[SimulationConfig] = None
    core_changes: Tuple[Tuple[str, Any], ...] = ()
    label: str = ""
    shard_start: int = -1
    shard_stop: int = -1
    checkpoint_every: int = 0
    fault: str = ""
    backend: str = ""
    contexts: int = 1
    scheduler: str = ""

    @property
    def sharded(self) -> bool:
        """True when this spec runs through the shard execution path."""
        return self.action == "simulate" and (
            self.shard_start >= 0
            or self.shard_stop >= 0
            or self.checkpoint_every > 0
        )

    def effective_backend(self) -> str:
        """The backend name this spec will actually execute on."""
        from ..core.backend import BACKEND_ENV_VAR, DEFAULT_BACKEND

        return (
            self.backend
            or os.environ.get(BACKEND_ENV_VAR, "")
            or DEFAULT_BACKEND
        )

    def describe(self) -> str:
        if self.label:
            return self.label
        knobs = " ".join(
            f"{name}={getattr(value, 'value', value)}"
            for name, value in self.core_changes
        )
        head = f"{self.action}:{self.workload}/{self.variant}"
        if self.contexts > 1:
            head += f" x{self.contexts}"
            if self.scheduler:
                head += f"/{self.scheduler}"
        if self.shard_start >= 0 or self.shard_stop >= 0:
            lo = self.shard_start if self.shard_start >= 0 else 0
            hi = self.shard_stop if self.shard_stop >= 0 else ""
            head += f"[{lo}:{hi})"
        if self.backend:
            head += f" @{self.backend}"
        return f"{head} {knobs}".strip()

    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON rendering (see :mod:`repro.engine.serialize`)."""
        return serialize.to_jsonable(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        _ensure_wire_types()
        spec = serialize.from_jsonable(data)
        if not isinstance(spec, cls):
            raise serialize.SerializeError(
                f"expected a JobSpec payload, decoded {type(spec).__name__}"
            )
        return spec

    @classmethod
    def coerce(cls, job: Any) -> "JobSpec":
        """Normalize a JobSpec-shaped input into a :class:`JobSpec`.

        The shared input convention of ``api.run`` and
        ``ServiceClient.submit_simulate``: a :class:`JobSpec` passes
        through, a workload name becomes a default spec, and a mapping is
        validated field-by-field — unknown keys raise ``ValueError``
        listing the valid field names (the ``valid_axes()`` error style),
        and a ``core_changes`` mapping is coerced through the sweep axes
        so enum spellings like ``"sp2"`` work everywhere.
        """
        if isinstance(job, cls):
            return job
        if isinstance(job, str):
            return cls(workload=job)
        if not isinstance(job, Mapping):
            raise TypeError(
                f"expected a JobSpec, workload name or mapping, got "
                f"{type(job).__name__}"
            )
        data = dict(job)
        valid = tuple(f.name for f in fields(cls))
        unknown = sorted(set(data) - set(valid))
        if unknown:
            raise ValueError(
                f"unknown job field{'s' if len(unknown) > 1 else ''} "
                f"{', '.join(repr(name) for name in unknown)}; valid "
                f"fields: {', '.join(valid)}"
            )
        changes = data.get("core_changes")
        if changes is not None:
            from ..harness.sweeps import coerce_axis_value

            items = (
                changes.items() if isinstance(changes, Mapping)
                else tuple(changes)
            )
            data["core_changes"] = tuple(sorted(
                (name, coerce_axis_value(name, value))
                for name, value in items
            ))
        if "contexts" in data:
            contexts = data["contexts"]
            if isinstance(contexts, str):
                try:
                    contexts = int(contexts)
                except ValueError:
                    contexts = -1
            if not isinstance(contexts, int) or isinstance(contexts, bool) \
                    or contexts < 1:
                raise ValueError(
                    f"bad value {data['contexts']!r} for 'contexts': "
                    f"expected an integer >= 1"
                )
            data["contexts"] = contexts
        if data.get("scheduler"):
            from ..smt.schedulers import resolve_scheduler

            # Resolution validates the name; unknown policies raise a
            # ValueError listing the valid schedulers (valid_axes style).
            resolve_scheduler(data["scheduler"])
        return cls(**data)


@dataclass
class JobResult:
    """Outcome of one job.

    For sharded/checkpointed jobs the extra fields record recovery
    behaviour: ``resumed_pos`` is the absolute trace position the attempt
    restarted from (``-1`` = fresh start), ``checkpoints_written`` counts
    snapshots persisted by this attempt, and ``checkpoint_token`` is the
    cache key ``mlpsim resume`` accepts.
    """

    spec: JobSpec
    status: str  # "ok" | "failed" | "timeout"
    result: Optional[SimulationResult] = None
    error: str = ""
    attempts: int = 1
    wall_time: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    resumed_pos: int = -1
    checkpoints_written: int = 0
    checkpoint_token: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON rendering, simulation result included."""
        return serialize.to_jsonable(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobResult":
        _ensure_wire_types()
        result = serialize.from_jsonable(data)
        if not isinstance(result, cls):
            raise serialize.SerializeError(
                f"expected a JobResult payload, decoded {type(result).__name__}"
            )
        return result


@dataclass
class RunReport:
    """Structured account of one batch execution."""

    jobs: List[JobResult] = field(default_factory=list)
    wall_time: float = 0.0
    workers: int = 1

    @property
    def ok_count(self) -> int:
        return sum(1 for job in self.jobs if job.ok)

    @property
    def failed(self) -> List[JobResult]:
        return [job for job in self.jobs if not job.ok]

    @property
    def cache_hits(self) -> int:
        return sum(job.cache_hits for job in self.jobs)

    @property
    def cache_misses(self) -> int:
        return sum(job.cache_misses for job in self.jobs)

    def results(self) -> List[Optional[SimulationResult]]:
        """Per-job simulation results, in submission order."""
        return [job.result for job in self.jobs]

    def raise_on_failure(self) -> None:
        bad = self.failed
        if bad:
            details = "; ".join(
                f"{job.spec.describe()}: [{job.status}] {job.error}"
                for job in bad[:3]
            )
            raise BatchFailedError(
                f"{len(bad)}/{len(self.jobs)} jobs failed: {details}"
            )

    def summary(self) -> str:
        return (
            f"{self.ok_count}/{len(self.jobs)} jobs ok "
            f"({len(self.failed)} failed) in {self.wall_time:.2f}s "
            f"across {self.workers} worker(s); "
            f"artifact cache: {self.cache_hits} hits / "
            f"{self.cache_misses} misses"
        )

    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON rendering of the whole batch outcome."""
        return serialize.to_jsonable(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunReport":
        _ensure_wire_types()
        report = serialize.from_jsonable(data)
        if not isinstance(report, cls):
            raise serialize.SerializeError(
                f"expected a RunReport payload, decoded {type(report).__name__}"
            )
        return report


@dataclass
class ShardedReport:
    """Outcome of one sharded execution (:meth:`EngineRunner.run_sharded`).

    ``jobs`` holds the final :class:`JobResult` per shard in trace order
    (the last attempt when a shard was retried); ``rounds`` counts
    execution rounds (1 = no shard needed a retry); ``merged`` is the
    exact whole-run :class:`SimulationResult` when every shard succeeded,
    ``None`` otherwise.
    """

    spec: JobSpec
    plan: Any  # repro.shard.plan.ShardPlan
    jobs: List[JobResult] = field(default_factory=list)
    rounds: int = 1
    wall_time: float = 0.0
    workers: int = 1
    merged: Optional[SimulationResult] = None

    @property
    def ok(self) -> bool:
        return self.merged is not None

    @property
    def failed(self) -> List[JobResult]:
        return [job for job in self.jobs if not job.ok]

    @property
    def resumed_shards(self) -> int:
        return sum(1 for job in self.jobs if job.resumed_pos >= 0)

    @property
    def checkpoints_written(self) -> int:
        return sum(job.checkpoints_written for job in self.jobs)

    def raise_on_failure(self) -> None:
        bad = self.failed
        if bad:
            details = "; ".join(
                f"{job.spec.describe()}: [{job.status}] {job.error}"
                for job in bad[:3]
            )
            raise BatchFailedError(
                f"{len(bad)}/{len(self.jobs)} shards failed after "
                f"{self.rounds} round(s): {details}"
            )

    def summary(self) -> str:
        state = "merged ok" if self.ok else f"{len(self.failed)} shard(s) failed"
        return (
            f"{len(self.jobs)} shard(s) in {self.rounds} round(s), {state}; "
            f"{self.resumed_shards} resumed from checkpoints, "
            f"{self.checkpoints_written} checkpoint(s) written; "
            f"{self.wall_time:.2f}s across {self.workers} worker(s)"
        )

    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON rendering of the sharded outcome."""
        return serialize.to_jsonable(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardedReport":
        _ensure_wire_types()
        import repro.shard  # registers ShardPlan on the wire  # noqa: F401
        report = serialize.from_jsonable(data)
        if not isinstance(report, cls):
            raise serialize.SerializeError(
                f"expected a ShardedReport payload, decoded "
                f"{type(report).__name__}"
            )
        return report


# ------------------------------------------------------------- telemetry --


class EngineTelemetry:
    """Cross-batch engine + simulation activity, for ``/metrics``.

    One instance per :class:`EngineRunner`; :meth:`record_report` folds
    every finished batch in (under a lock — batches resolve on their own
    threads), :meth:`register_metrics` exposes the aggregates as gauges so
    the service's ``/metrics`` endpoint reports the whole stack, not just
    HTTP-level counters.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.batches = 0
        self.jobs_ok = 0
        self.jobs_failed = 0
        self.jobs_timeout = 0
        self.job_retries = 0
        self.jobs_active = 0
        self.sharded_runs = 0
        self.shard_rounds = 0
        self.checkpoints_written = 0
        self.shard_resumes = 0
        self.sim_epochs = 0
        self.sim_instructions = 0
        self.sb_occupancy_hwm = 0
        self.sq_occupancy_hwm = 0
        self.termination_counts: Counter = Counter()
        #: simulate jobs and instructions by effective execution backend.
        self.backend_jobs: Counter = Counter()
        self.backend_instructions: Counter = Counter()

    def batch_started(self, jobs: int) -> None:
        with self._lock:
            self.jobs_active += jobs

    def record_report(self, report: "RunReport") -> None:
        with self._lock:
            self.batches += 1
            self.jobs_active = max(0, self.jobs_active - len(report.jobs))
            for job in report.jobs:
                if job.status == "ok":
                    self.jobs_ok += 1
                elif job.status == "timeout":
                    self.jobs_timeout += 1
                else:
                    self.jobs_failed += 1
                self.job_retries += max(0, job.attempts - 1)
                self.checkpoints_written += job.checkpoints_written
                if job.resumed_pos >= 0:
                    self.shard_resumes += 1
                result = job.result
                if result is None:
                    continue
                backend = job.spec.effective_backend()
                self.backend_jobs[backend] += 1
                self.backend_instructions[backend] += result.instructions
                self.sim_epochs += result.epoch_count
                self.sim_instructions += result.instructions
                if result.sb_occupancy_hwm > self.sb_occupancy_hwm:
                    self.sb_occupancy_hwm = result.sb_occupancy_hwm
                if result.sq_occupancy_hwm > self.sq_occupancy_hwm:
                    self.sq_occupancy_hwm = result.sq_occupancy_hwm
                for cond, count in result.termination_histogram().items():
                    if cond is not None:
                        self.termination_counts[cond.value] += count

    def totals(self) -> Dict[str, float]:
        """Cumulative counters as a flat dict (the federation payload).

        Fleet workers piggyback this on heartbeats; the coordinator
        republishes each entry as ``fleet_worker_<name>{worker=...}`` plus
        a fleet-wide total (:mod:`repro.fleet.federation`).
        """
        with self._lock:
            return {
                "engine_batches_total": float(self.batches),
                "engine_jobs_ok_total": float(self.jobs_ok),
                "engine_jobs_failed_total": float(self.jobs_failed),
                "engine_jobs_timeout_total": float(self.jobs_timeout),
                "engine_job_retries_total": float(self.job_retries),
                "shard_checkpoints_written_total": float(
                    self.checkpoints_written
                ),
                "shard_resumes_total": float(self.shard_resumes),
                "sim_epochs_total": float(self.sim_epochs),
                "sim_instructions_total": float(self.sim_instructions),
            }

    def epochs_per_1k_insts(self) -> float:
        with self._lock:
            if not self.sim_instructions:
                return 0.0
            return 1000.0 * self.sim_epochs / self.sim_instructions

    def register_metrics(
        self, registry: MetricsRegistry, workers: int = 1,
    ) -> None:
        """Expose engine-level and simulation-level gauges on *registry*."""
        registry.gauge(
            "engine_batches_total", lambda: self.batches,
            help="engine batches executed",
        )
        registry.gauge(
            "engine_jobs_ok_total", lambda: self.jobs_ok,
            help="engine jobs that completed successfully",
        )
        registry.gauge(
            "engine_jobs_failed_total", lambda: self.jobs_failed,
            help="engine jobs that failed after retries",
        )
        registry.gauge(
            "engine_jobs_timeout_total", lambda: self.jobs_timeout,
            help="engine jobs abandoned on timeout",
        )
        registry.gauge(
            "engine_job_retries_total", lambda: self.job_retries,
            help="failed engine job attempts that were resubmitted",
        )
        registry.gauge(
            "engine_jobs_active", lambda: self.jobs_active,
            help="jobs currently submitted to in-flight batches",
        )
        registry.gauge(
            "engine_worker_utilization",
            lambda: min(1.0, self.jobs_active / workers) if workers else 0.0,
            help="fraction of the worker pool busy with active jobs",
        )
        registry.gauge(
            "engine_sharded_runs_total", lambda: self.sharded_runs,
            help="sharded executions completed or abandoned",
        )
        registry.gauge(
            "engine_shard_rounds_total", lambda: self.shard_rounds,
            help="shard execution rounds (retries add rounds)",
        )
        registry.gauge(
            "engine_checkpoints_written_total",
            lambda: self.checkpoints_written,
            help="simulator checkpoints persisted to the artifact cache",
        )
        registry.gauge(
            "engine_shard_resumes_total", lambda: self.shard_resumes,
            help="shard attempts that resumed from a checkpoint",
        )
        registry.gauge(
            "sim_epochs_total", lambda: self.sim_epochs,
            help="epochs committed across all simulator runs",
        )
        registry.gauge(
            "sim_instructions_total", lambda: self.sim_instructions,
            help="instructions simulated across all runs",
        )
        registry.gauge(
            "sim_epochs_per_1k_insts", self.epochs_per_1k_insts,
            help="aggregate epochs per 1000 simulated instructions",
        )
        registry.gauge(
            "sim_sb_occupancy_hwm", lambda: self.sb_occupancy_hwm,
            help="store-buffer occupancy high-water mark across runs",
        )
        registry.gauge(
            "sim_sq_occupancy_hwm", lambda: self.sq_occupancy_hwm,
            help="store-queue occupancy high-water mark across runs",
        )
        for cond in TerminationCondition:
            registry.gauge(
                f"sim_terminations_{cond.name.lower()}",
                lambda c=cond.value: self.termination_counts.get(c, 0),
                help=f"epochs terminated by {cond.value}",
            )
        from ..core.backend import backend_names

        for name in backend_names():
            registry.gauge(
                f"sim_backend_{name}_jobs_total",
                lambda n=name: self.backend_jobs.get(n, 0),
                help=f"simulate jobs executed on the {name} backend",
            )
            registry.gauge(
                f"sim_backend_{name}_instructions_total",
                lambda n=name: self.backend_instructions.get(n, 0),
                help=f"instructions simulated on the {name} backend",
            )


# ---------------------------------------------------------------- worker --

#: One Workbench per worker process, built by the pool initializer; the
#: obs state (options, per-process tracer, phase profiler) rides along.
_WORKER_BENCH: Optional[Workbench] = None
_WORKER_OBS: Optional[ObsOptions] = None
_WORKER_TRACER: Optional[Tracer] = None
_WORKER_PROFILER: Optional[PhaseProfiler] = None


def _build_bench(
    settings: "ExperimentSettings",
    cache_dir: Any,
    profiles: Dict[str, WorkloadProfile],
) -> "Workbench":
    from ..harness.experiment import Workbench

    bench = Workbench(settings, cache_dir=cache_dir)
    for name, profile in profiles.items():
        bench.set_profile(name, profile)
    return bench


def _init_worker(
    settings: ExperimentSettings,
    cache_dir: Any,
    profiles: Dict[str, WorkloadProfile],
    obs: Optional[ObsOptions] = None,
    corr: str = "",
    parent_span: str = "",
) -> None:
    global _WORKER_BENCH, _WORKER_OBS, _WORKER_TRACER, _WORKER_PROFILER
    _WORKER_BENCH = _build_bench(settings, cache_dir, profiles)
    _WORKER_OBS = obs
    if corr:
        # Correlation IDs are contextvars and do not cross the process
        # boundary on their own; the parent snapshots its value into the
        # initargs so worker-side trace events still tie back to the job.
        set_correlation_id(corr)
    if parent_span:
        # Same for the cross-process parent span: installing it makes the
        # worker's root spans children of the parent's batch span, so a
        # fleet job's spans join into one tree across processes.
        set_parent_span_id(parent_span)
    if obs is not None:
        _WORKER_TRACER = obs.open_tracer()
        if obs.profile_phases:
            _WORKER_PROFILER = PhaseProfiler(
                sample_rate=obs.sample_rate, tracer=_WORKER_TRACER,
            )


def execute_job(
    bench: Workbench,
    spec: JobSpec,
    observer: Optional[WindowObserver] = None,
    profiler: Optional[PhaseProfiler] = None,
    tracer: Optional[Tracer] = None,
) -> Optional[SimulationResult]:
    """Run one job against *bench* (shared by the serial and worker paths).

    Sharded/checkpointed simulate specs (``spec.sharded``) return a
    :class:`repro.shard.execute.ShardOutcome` instead of a bare result —
    :func:`_run_job` unpacks it into the job payload.
    """
    if spec.contexts > 1:
        if spec.sharded:
            raise EngineConfigError(
                "multi-context (SMT) jobs cannot be sharded or "
                "checkpointed; run with contexts=1 or drop the shard "
                "options"
            )
        from ..smt import run_smt

        if profiler is not None:
            with profiler.phase("simulate"):
                return run_smt(
                    bench, spec.workload,
                    contexts=spec.contexts, scheduler=spec.scheduler,
                    variant=spec.variant, memory_config=spec.memory_config,
                    sharing=spec.sharing, tag=spec.tag, config=spec.config,
                    **dict(spec.core_changes),
                )
        return run_smt(
            bench, spec.workload,
            contexts=spec.contexts, scheduler=spec.scheduler,
            variant=spec.variant, memory_config=spec.memory_config,
            sharing=spec.sharing, tag=spec.tag, config=spec.config,
            **dict(spec.core_changes),
        )
    if spec.sharded:
        from ..shard.execute import run_shard_job

        return run_shard_job(
            bench, spec, observer=observer, profiler=profiler, tracer=tracer,
        )
    if spec.action == "annotate":
        if profiler is not None:
            with profiler.phase("annotate"):
                bench.annotated(
                    spec.workload, spec.variant, spec.memory_config,
                    spec.sharing, spec.tag,
                )
        else:
            bench.annotated(
                spec.workload, spec.variant, spec.memory_config,
                spec.sharing, spec.tag,
            )
        return None
    if spec.action == "simulate":
        if profiler is not None:
            with profiler.phase("simulate"):
                return bench.run(
                    spec.workload,
                    variant=spec.variant,
                    memory_config=spec.memory_config,
                    sharing=spec.sharing,
                    tag=spec.tag,
                    config=spec.config,
                    observer=observer,
                    backend=spec.backend or None,
                    **dict(spec.core_changes),
                )
        return bench.run(
            spec.workload,
            variant=spec.variant,
            memory_config=spec.memory_config,
            sharing=spec.sharing,
            tag=spec.tag,
            config=spec.config,
            observer=observer,
            backend=spec.backend or None,
            **dict(spec.core_changes),
        )
    raise EngineConfigError(f"unknown job action {spec.action!r}")


def _run_job(
    bench: Workbench,
    spec: JobSpec,
    obs: Optional[ObsOptions] = None,
    tracer: Optional[Tracer] = None,
    profiler: Optional[PhaseProfiler] = None,
) -> Dict[str, Any]:
    """Execute one job, capturing status, timing and cache deltas."""
    observer: Optional[WindowObserver] = None
    if (
        tracer is not None
        and obs is not None
        and obs.trace_epochs
        and spec.action == "simulate"
    ):
        observer = EpochTimelineRecorder(tracer, label=spec.describe())
    span = (
        tracer.span(
            "job", job=spec.describe(), backend=spec.effective_backend(),
        )
        if tracer is not None else None
    )
    start = time.perf_counter()
    hits_before, misses_before = bench.artifacts.stats.snapshot()
    shard_meta: Dict[str, Any] = {}
    try:
        result = execute_job(
            bench, spec, observer=observer, profiler=profiler, tracer=tracer,
        )
        if spec.sharded and result is not None:
            outcome = result
            result = outcome.result
            shard_meta = {
                "resumed_pos": outcome.resumed_pos,
                "checkpoints_written": outcome.checkpoints_written,
                "checkpoint_token": outcome.checkpoint_token,
            }
        status, error = "ok", ""
    except Exception as exc:  # reported per-job, never crashes the batch
        result = None
        status = "failed"
        error = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
    finally:
        if span is not None:
            span.__exit__()
    hits_after, misses_after = bench.artifacts.stats.snapshot()
    return {
        "status": status,
        "result": result,
        "error": error,
        "wall_time": time.perf_counter() - start,
        "cache_hits": hits_after - hits_before,
        "cache_misses": misses_after - misses_before,
        **shard_meta,
    }


def _run_job_in_worker(spec: JobSpec) -> Dict[str, Any]:
    assert _WORKER_BENCH is not None, "worker initializer did not run"
    return _run_job(
        _WORKER_BENCH, spec,
        obs=_WORKER_OBS, tracer=_WORKER_TRACER, profiler=_WORKER_PROFILER,
    )


# ---------------------------------------------------------------- runner --


class BatchHandle:
    """A non-blocking handle on one in-flight :meth:`EngineRunner.submit_batch`.

    The batch runs on a daemon thread; ``result()`` blocks until the report
    is ready (re-raising any batch-level failure), ``done()`` polls.  An
    optional callback fires with the resolved handle on the batch thread
    once it completes — the hook the service dispatcher builds on.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._report: Optional[RunReport] = None
        self._error: Optional[BaseException] = None

    def _finish(
        self,
        report: Optional[RunReport],
        error: Optional[BaseException],
        callback: Optional[Callable[["BatchHandle"], None]],
    ) -> None:
        self._report = report
        self._error = error
        self._event.set()
        if callback is not None:
            callback(self)

    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._event.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> RunReport:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"batch did not complete within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._report is not None
        return self._report


class EngineRunner:
    """Executes batches of :class:`JobSpec` with caching and parallelism.

    Parameters
    ----------
    settings:
        Trace sizing/seeding shared by every job's Workbench.
    cache_dir:
        Artifact cache directory convention (see
        :func:`repro.engine.cache.resolve_cache_dir`).  Workers share it;
        ``None`` still works but each process recomputes its artifacts.
    profiles:
        Custom workload profiles (e.g. the SMAC-scaled variants) installed
        into every worker's Workbench via ``set_profile``.
    workers:
        Process count.  ``None`` picks ``min(4, cpu_count)``; ``<= 1`` runs
        serially in-process.
    job_timeout:
        Seconds allowed per job once the collector starts waiting on it.
        Timed-out jobs are reported as ``"timeout"`` and not retried (the
        worker cannot be interrupted mid-simulation).
    retries:
        How many times a *failed* job is resubmitted (default once).
    obs:
        :class:`~repro.obs.options.ObsOptions` for the batch: when tracing
        is enabled every process (this one on the serial path, each pool
        worker on the parallel path) writes its own
        ``trace-<pid>.jsonl`` under ``obs.trace_dir`` and every simulate
        job runs with an :class:`~repro.obs.recorder.EpochTimelineRecorder`
        attached.  ``None`` (the default) keeps the zero-overhead path.
    """

    def __init__(
        self,
        settings: ExperimentSettings | None = None,
        cache_dir: Any = "auto",
        profiles: Dict[str, WorkloadProfile] | None = None,
        workers: int | None = None,
        job_timeout: float = 600.0,
        retries: int = 1,
        obs: Optional[ObsOptions] = None,
    ) -> None:
        if workers is None:
            workers = min(4, os.cpu_count() or 1)
        if job_timeout <= 0:
            raise EngineConfigError("job_timeout must be positive")
        if retries < 0:
            raise EngineConfigError("retries must be non-negative")
        from ..harness.experiment import ExperimentSettings

        self.settings = settings or ExperimentSettings()
        self.cache_dir = cache_dir
        self.profiles = dict(profiles or {})
        self.workers = workers
        self.job_timeout = job_timeout
        self.retries = retries
        self.obs = obs
        self.telemetry = EngineTelemetry()
        #: Reused across serial batches so a long-lived caller (the service
        #: dispatcher) keeps its in-memory artifact tier warm between jobs.
        self._serial_bench: Optional[Workbench] = None
        #: This process's tracer/profiler (serial batches and batch-level
        #: spans); opened lazily so an obs-less runner never touches disk.
        self._tracer: Optional[Tracer] = None
        self._profiler: Optional[PhaseProfiler] = None

    def _obs_tracer(self) -> Optional[Tracer]:
        if self.obs is None:
            return None
        if self._tracer is None and self.obs.trace_dir is not None:
            self._tracer = self.obs.open_tracer()
            if self.obs.profile_phases:
                self._profiler = PhaseProfiler(
                    sample_rate=self.obs.sample_rate, tracer=self._tracer,
                )
        return self._tracer

    def run(self, jobs: Sequence[JobSpec]) -> RunReport:
        """Execute *jobs*, returning per-job results in submission order."""
        specs = list(jobs)
        start = time.perf_counter()
        self.telemetry.batch_started(len(specs))
        tracer = self._obs_tracer()
        span = (
            tracer.span("engine_batch", jobs=len(specs))
            if tracer is not None else None
        )
        try:
            if self._lockstep_eligible(specs):
                results = self._run_lockstep(specs)
                workers = 1
            elif self.workers <= 1 or len(specs) <= 1:
                results = self._run_serial(specs)
                workers = 1
            else:
                results = self._run_parallel(specs)
                workers = min(self.workers, len(specs))
        finally:
            if span is not None:
                span.__exit__()
        report = RunReport(
            jobs=results,
            wall_time=time.perf_counter() - start,
            workers=workers,
        )
        self.telemetry.record_report(report)
        return report

    def submit_batch(
        self,
        jobs: Sequence[JobSpec],
        callback: Optional[Callable[[BatchHandle], None]] = None,
    ) -> BatchHandle:
        """Start *jobs* on a background thread and return immediately.

        The returned :class:`BatchHandle` resolves to the same
        :class:`RunReport` a blocking :meth:`run` would produce; *callback*
        (if given) is invoked with the handle when the batch finishes, on
        the batch thread.
        """
        specs = list(jobs)
        handle = BatchHandle()
        # Snapshot the submitter's context so the batch thread (and, via
        # pool initargs, the workers) inherit the correlation ID the
        # dispatcher set for this job.
        context = contextvars.copy_context()

        def _drive() -> None:
            try:
                report = self.run(specs)
            except BaseException as exc:  # surfaced via handle.result()
                handle._finish(None, exc, callback)
            else:
                handle._finish(report, None, callback)

        thread = threading.Thread(
            target=lambda: context.run(_drive),
            name="engine-batch", daemon=True,
        )
        thread.start()
        return handle

    # ------------------------------------------------------------ lockstep --

    def _lockstep_eligible(self, specs: Sequence[JobSpec]) -> bool:
        """True when a batch should run as one in-process lockstep kernel.

        Requires every job to be a plain (non-sharded) simulate spec whose
        effective backend is ``batch``, plus an importable numpy.  When
        numpy is missing the batch falls through to the per-job paths,
        which surface the structured
        :class:`~repro.errors.BackendUnavailableError` per job.
        """
        if len(specs) < 2:
            return False
        if not all(
            spec.action == "simulate"
            and not spec.sharded
            and spec.contexts == 1
            and spec.effective_backend() == "batch"
            for spec in specs
        ):
            return False
        from ..core.backends.batch import numpy_available

        return numpy_available()

    def _run_lockstep(self, specs: List[JobSpec]) -> List[JobResult]:
        """Advance the whole batch in lockstep, one epoch per lane per round.

        Annotation still goes through the (cached) Workbench per spec, so
        identical trace requests share one object — and therefore one set
        of numpy-built skip tables.  The lockstep wall clock is shared;
        each job is attributed an equal slice of it on top of its own
        annotation time.
        """
        from ..core.backends.batch import BatchLane, LockstepBatch

        bench = self._planning_bench()
        tracer = self._obs_tracer()
        span = (
            tracer.span("lockstep_batch", jobs=len(specs), backend="batch")
            if tracer is not None else None
        )
        payloads: List[Dict[str, Any]] = []
        lanes: List[BatchLane] = []
        try:
            for index, spec in enumerate(specs):
                start = time.perf_counter()
                hits0, misses0 = bench.artifacts.stats.snapshot()
                try:
                    annotated = bench.annotated(
                        spec.workload, spec.variant, spec.memory_config,
                        spec.sharing, spec.tag,
                    )
                    config = bench.resolved_config(
                        spec.workload, spec.variant, spec.config,
                        **dict(spec.core_changes),
                    )
                except Exception as exc:
                    status, error = "failed", "".join(
                        traceback.format_exception_only(type(exc), exc)
                    ).strip()
                else:
                    status, error = "ok", ""
                    lanes.append(
                        BatchLane(config=config, trace=annotated, tag=index)
                    )
                hits1, misses1 = bench.artifacts.stats.snapshot()
                payloads.append({
                    "status": status,
                    "result": None,
                    "error": error,
                    "wall_time": time.perf_counter() - start,
                    "cache_hits": hits1 - hits0,
                    "cache_misses": misses1 - misses0,
                })
            sim_start = time.perf_counter()
            outcomes = LockstepBatch(lanes).run() if lanes else []
            share = (
                (time.perf_counter() - sim_start) / len(lanes) if lanes else 0.0
            )
            for outcome in outcomes:
                payload = payloads[outcome.tag]
                payload["wall_time"] += share
                if outcome.ok:
                    payload["result"] = outcome.result
                else:
                    payload["status"] = "failed"
                    payload["error"] = "".join(
                        traceback.format_exception_only(
                            type(outcome.error), outcome.error,
                        )
                    ).strip()
        finally:
            if span is not None:
                span.__exit__()
        out: List[JobResult] = []
        for spec, payload in zip(specs, payloads):
            attempts = 1
            # Failed lanes retry on the ordinary serial path, which keeps
            # the retry semantics of a non-lockstep batch.
            while payload["status"] != "ok" and attempts <= self.retries:
                attempts += 1
                payload = _run_job(
                    bench, spec,
                    obs=self.obs, tracer=tracer, profiler=self._profiler,
                )
            out.append(JobResult(spec=spec, attempts=attempts, **payload))
        return out

    # ------------------------------------------------------------- sharded --

    def _planning_bench(self) -> "Workbench":
        """The in-process Workbench used for planning (and serial runs)."""
        if self._serial_bench is None:
            self._serial_bench = _build_bench(
                self.settings, self.cache_dir, self.profiles,
            )
        return self._serial_bench

    def run_sharded(
        self,
        spec: JobSpec,
        shards: int,
        checkpoint_every: int = 0,
        plan: Any = None,
    ) -> "ShardedReport":
        """Execute one simulate job as a fault-tolerant sharded run.

        The trace is segmented at probed quiescent boundaries (*plan*, or
        :func:`repro.shard.execute.shard_plan_for` if omitted), the shards
        fan out across the worker pool as independent jobs, and the
        per-shard results merge into a result bit-identical to an unsharded
        run.  Failed shards are retried in follow-up rounds (up to
        ``retries`` extra rounds) with a **fresh pool** — the recovery path
        for a worker process dying mid-shard, which breaks the whole pool —
        and, when ``checkpoint_every > 0``, each retry resumes from the
        shard's last persisted checkpoint instead of recomputing.
        Shards that already succeeded are never re-run.
        """
        from ..shard.execute import shard_plan_for
        from ..shard.merge import merge_results

        if spec.action != "simulate":
            raise EngineConfigError(
                f"only simulate jobs can be sharded, not {spec.action!r}"
            )
        if shards < 1:
            raise EngineConfigError(f"shard count must be >= 1, got {shards}")
        start_time = time.perf_counter()
        if plan is None:
            plan = shard_plan_for(self._planning_bench(), spec, shards)
        base = spec.describe()
        shard_specs = [
            replace(
                spec,
                shard_start=lo,
                shard_stop=hi,
                checkpoint_every=checkpoint_every,
                label=f"{base} shard[{lo}:{hi})",
            )
            for lo, hi in plan.shards
        ]
        final: Dict[int, JobResult] = {}
        pending = list(range(len(shard_specs)))
        rounds = 0
        while pending:
            rounds += 1
            report = self.run([shard_specs[i] for i in pending])
            still_failed = []
            for index, job in zip(pending, report.jobs):
                final[index] = job
                if not job.ok:
                    still_failed.append(index)
            pending = still_failed
            if pending and rounds > self.retries:
                break
        jobs = [final[i] for i in range(len(shard_specs))]
        merged: Optional[SimulationResult] = None
        if not pending:
            merged = merge_results([job.result for job in jobs])
        with self.telemetry._lock:
            self.telemetry.sharded_runs += 1
            self.telemetry.shard_rounds += rounds
        return ShardedReport(
            spec=spec,
            plan=plan,
            jobs=jobs,
            rounds=rounds,
            wall_time=time.perf_counter() - start_time,
            workers=self.workers,
            merged=merged,
        )

    # -------------------------------------------------------------- serial --

    def _run_serial(self, specs: List[JobSpec]) -> List[JobResult]:
        bench = self._planning_bench()
        tracer = self._obs_tracer()
        out: List[JobResult] = []
        for spec in specs:
            attempts = 0
            while True:
                attempts += 1
                payload = _run_job(
                    bench, spec,
                    obs=self.obs, tracer=tracer, profiler=self._profiler,
                )
                if payload["status"] == "ok" or attempts > self.retries:
                    break
            out.append(JobResult(spec=spec, attempts=attempts, **payload))
        return out

    # ------------------------------------------------------------ parallel --

    def _run_parallel(self, specs: List[JobSpec]) -> List[JobResult]:
        # A fresh pool is created per batch, so the initargs can carry the
        # batch's correlation ID — and the enclosing span (the batch span
        # when tracing, else any inherited cross-process parent) — into
        # every worker process.
        parent = (
            self._tracer._current_span()
            if self._tracer is not None
            else parent_span_id()
        )
        initargs = (
            self.settings, self.cache_dir, self.profiles,
            self.obs, correlation_id(), parent,
        )
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(specs)),
            initializer=_init_worker,
            initargs=initargs,
        ) as pool:
            futures = [pool.submit(_run_job_in_worker, spec) for spec in specs]
            return [
                self._collect(pool, spec, future)
                for spec, future in zip(specs, futures)
            ]

    def _collect(
        self,
        pool: ProcessPoolExecutor,
        spec: JobSpec,
        future: "Future[Dict[str, Any]]",
    ) -> JobResult:
        """Await one job, retrying failures up to ``retries`` times."""
        attempts = 1
        while True:
            try:
                payload = future.result(timeout=self.job_timeout)
            except FutureTimeoutError:
                future.cancel()
                return JobResult(
                    spec=spec,
                    status="timeout",
                    error=f"no result within {self.job_timeout:.0f}s",
                    attempts=attempts,
                    wall_time=self.job_timeout,
                )
            except Exception as exc:  # e.g. BrokenProcessPool
                payload = {
                    "status": "failed",
                    "result": None,
                    "error": f"{type(exc).__name__}: {exc}",
                    "wall_time": 0.0,
                    "cache_hits": 0,
                    "cache_misses": 0,
                }
            if payload["status"] == "ok" or attempts > self.retries:
                return JobResult(spec=spec, attempts=attempts, **payload)
            attempts += 1
            try:
                future = pool.submit(_run_job_in_worker, spec)
            except Exception as exc:  # pool already broken: give up
                payload["error"] += f" (retry unavailable: {exc})"
                return JobResult(spec=spec, attempts=attempts, **payload)


serialize.register(JobSpec, JobResult, RunReport, ShardedReport)
