"""JSON-safe encoding of the engine's dataclasses and enums.

The service layer moves job specifications and simulation results over
HTTP, so everything crossing that boundary must round-trip through plain
JSON — no pickles of simulator objects on the wire.  This module provides
one tagged encoding shared by every such type:

- dataclasses  -> ``{"$dc": "ClassName", "fields": {...}}``
- enums        -> ``{"$enum": "ClassName", "value": <enum value>}``
- tuples       -> ``{"$tuple": [...]}`` (distinguished from lists so frozen
  dataclass fields rebuild hashable)
- dicts        -> ``{"$map": [[key, value], ...]}`` (keys need not be
  strings, and plain payload dicts can never collide with the tags)

Only *registered* classes decode: :func:`register` maps a class name to its
type, and every module that defines a wire-visible dataclass registers it at
import time.  Decoding an unregistered name raises :class:`SerializeError`
with the offending tag — a loud failure beats silently instantiating the
wrong thing from untrusted input.

The encoding is pure data: ``json.dumps(to_jsonable(x))`` always succeeds
for registered types, and ``from_jsonable(json.loads(s))`` rebuilds equal
objects (floats round-trip exactly through ``repr``-based JSON).
"""

from __future__ import annotations

import enum
from dataclasses import fields, is_dataclass
from typing import Any, Dict, Type

__all__ = [
    "SerializeError",
    "from_jsonable",
    "register",
    "to_jsonable",
]


class SerializeError(TypeError):
    """An object cannot be encoded, or a payload cannot be decoded."""


_DATACLASSES: Dict[str, Type[Any]] = {}
_ENUMS: Dict[str, Type[enum.Enum]] = {}


def register(*types: type) -> None:
    """Make *types* (dataclasses or enums) decodable by name.

    Registration is idempotent; re-registering the same class is a no-op,
    but two distinct classes sharing a name is a bug and raises.
    """
    for cls in types:
        table: Dict[str, type]
        if isinstance(cls, type) and issubclass(cls, enum.Enum):
            table = _ENUMS
        elif is_dataclass(cls) and isinstance(cls, type):
            table = _DATACLASSES
        else:
            raise SerializeError(
                f"can only register dataclasses and enums, got {cls!r}"
            )
        existing = table.get(cls.__name__)
        if existing is not None and existing is not cls:
            raise SerializeError(
                f"serialization name collision: {cls.__name__} already "
                f"registered as {existing!r}"
            )
        table[cls.__name__] = cls


def to_jsonable(obj: Any) -> Any:
    """Encode *obj* into JSON-compatible plain data (tagged form)."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return {"$enum": type(obj).__name__, "value": obj.value}
    if is_dataclass(obj) and not isinstance(obj, type):
        return {
            "$dc": type(obj).__name__,
            "fields": {
                f.name: to_jsonable(getattr(obj, f.name))
                for f in fields(obj)
            },
        }
    if isinstance(obj, tuple):
        return {"$tuple": [to_jsonable(item) for item in obj]}
    if isinstance(obj, list):
        return [to_jsonable(item) for item in obj]
    if isinstance(obj, dict):
        return {
            "$map": [
                [to_jsonable(key), to_jsonable(value)]
                for key, value in obj.items()
            ]
        }
    raise SerializeError(
        f"cannot JSON-encode {type(obj).__name__}: not a registered "
        f"dataclass, enum, or plain container"
    )


def from_jsonable(data: Any) -> Any:
    """Decode tagged plain data produced by :func:`to_jsonable`."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, list):
        return [from_jsonable(item) for item in data]
    if isinstance(data, dict):
        if "$enum" in data:
            cls = _ENUMS.get(data["$enum"])
            if cls is None:
                raise SerializeError(
                    f"unknown enum type {data['$enum']!r} in payload"
                )
            return cls(data["value"])
        if "$dc" in data:
            cls = _DATACLASSES.get(data["$dc"])
            if cls is None:
                raise SerializeError(
                    f"unknown dataclass type {data['$dc']!r} in payload"
                )
            raw = data.get("fields", {})
            known = {f.name for f in fields(cls)}
            unknown = set(raw) - known
            if unknown:
                raise SerializeError(
                    f"{data['$dc']} payload has unknown fields "
                    f"{sorted(unknown)}"
                )
            return cls(**{
                name: from_jsonable(value) for name, value in raw.items()
            })
        if "$tuple" in data:
            return tuple(from_jsonable(item) for item in data["$tuple"])
        if "$map" in data:
            return {
                _hashable(from_jsonable(key)): from_jsonable(value)
                for key, value in data["$map"]
            }
        raise SerializeError(
            f"untagged dict in payload (keys {sorted(data)[:4]}); "
            f"dicts must be encoded as $map"
        )
    raise SerializeError(f"cannot decode {type(data).__name__}")


def _hashable(key: Any) -> Any:
    try:
        hash(key)
    except TypeError:
        raise SerializeError(
            f"decoded map key {key!r} is not hashable"
        ) from None
    return key


def _register_builtin_types() -> None:
    # The config/enums every JobSpec and SimulationResult payload touches.
    # Harness-level types (ExperimentSettings, SweepSpec, ...) register
    # themselves at import to keep this module free of import cycles.
    from ..config import (
        BranchPredictorConfig,
        CacheConfig,
        ConsistencyModel,
        CoreConfig,
        MemoryConfig,
        ScoutMode,
        SimulationConfig,
        SmacConfig,
        StorePrefetchMode,
        SystemConfig,
    )
    from ..core.epoch import EpochRecord, TerminationCondition, TriggerKind
    from ..core.results import SimulationResult

    register(
        ConsistencyModel, StorePrefetchMode, ScoutMode,
        TriggerKind, TerminationCondition,
        CacheConfig, SmacConfig, BranchPredictorConfig, MemoryConfig,
        CoreConfig, SystemConfig, SimulationConfig,
        EpochRecord, SimulationResult,
    )


_register_builtin_types()
