"""The simulation-as-a-service HTTP daemon.

Pure stdlib (``http.server.ThreadingHTTPServer`` + ``json``), no
dependencies.  Endpoints:

==============================  ==============================================
``POST   /v1/jobs``             submit a sweep / simulate / figure job
``GET    /v1/jobs``             summary list of known jobs
``GET    /v1/jobs/<id>``        job status; result payload once ``done``
``DELETE /v1/jobs/<id>``        cancel a still-queued job
``GET    /healthz``             liveness + queue/settings snapshot
``GET    /metrics``             Prometheus text (``?format=json`` for JSON)
==============================  ==============================================

Request handling threads only validate, enqueue and read; all simulation
work happens on the single dispatcher thread, which delegates batches to
the shared :class:`~repro.service.executor.ServiceEngine`.  Identical
in-flight submissions are deduplicated by the queue (see
:mod:`repro.service.jobqueue`) — the submit response carries
``"deduped": true`` and the *original* job's id, so every duplicate client
polls the same execution.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..core.backend import backend_names
from ..errors import SaturatedError
from ..harness.experiment import ExperimentSettings
from ..obs.logging import get_logger, setup_logging
from ..obs.options import ObsOptions
from .executor import ServiceEngine
from .jobqueue import Dispatcher, Job, JobQueue, JobState, QueueFullError
from ..obs.metrics import MetricsRegistry
from .protocol import PROTOCOL_VERSION, ProtocolError, parse_job_request

__all__ = ["ReproService", "serve"]

#: Submission bodies larger than this are rejected outright (64 KiB is
#: orders of magnitude above any legitimate sweep spec).
MAX_BODY_BYTES = 64 * 1024


class ReproService:
    """One daemon instance: queue + dispatcher + engine + HTTP front end.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` — the
    tests and the CI smoke step rely on this).  ``start_dispatcher=False``
    leaves the drain thread stopped so tests can stage a deterministic
    backlog before any job runs.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        settings: Optional[ExperimentSettings] = None,
        cache_dir: Any = "auto",
        workers: Optional[int] = None,
        job_timeout: float = 600.0,
        retries: int = 1,
        queue_capacity: int = 256,
        start_dispatcher: bool = True,
        obs: Optional[ObsOptions] = None,
    ) -> None:
        self.engine = ServiceEngine(
            settings=settings,
            cache_dir=cache_dir,
            workers=workers,
            job_timeout=job_timeout,
            retries=retries,
            obs=obs,
        )
        self.queue = JobQueue(capacity=queue_capacity)
        self.metrics = MetricsRegistry()
        self.dispatcher = Dispatcher(
            self.queue, self.engine.execute, on_finish=self._record_finish,
        )
        self._start_dispatcher = start_dispatcher
        self._started_at: Optional[float] = None
        self._serve_thread: Optional[threading.Thread] = None
        self.draining = False

        handler = _make_handler(self)
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True

        self.metrics.gauge(
            "queue_depth", self.queue.depth,
            help="jobs waiting to run",
        )
        for state in JobState:
            self.metrics.gauge(
                f"jobs_{state.value}",
                lambda s=state.value: self.queue.counts_by_state()[s],
                help=f"jobs currently in state {state.value}",
            )
        # The layers below the service report through the same registry:
        # artifact cache tiers, engine batches/jobs, simulation aggregates.
        self.engine.register_metrics(self.metrics)
        self.metrics.describe(
            "jobs_submitted_total", "job submissions accepted",
        )
        self.metrics.describe(
            "jobs_deduped_total",
            "submissions attached to an identical in-flight job",
        )
        self.metrics.describe("http_requests_total", "HTTP requests served")
        self.metrics.describe(
            "job_exec", "job execution time (dispatch to finish)",
        )
        self.metrics.describe(
            "job_queue_wait", "time jobs spent queued before dispatch",
        )
        self.metrics.describe(
            "job_latency", "end-to-end job latency (submit to finish)",
        )

    # ----------------------------------------------------------- lifecycle --

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproService":
        """Start serving (and, unless deferred, dispatching) in background
        threads; returns self for ``service = ReproService(...).start()``."""
        self._started_at = time.time()
        if self._start_dispatcher:
            self.dispatcher.start()
        self._serve_thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="repro-http",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def start_dispatcher(self) -> None:
        """Start the (deferred) drain thread."""
        if not self.dispatcher.is_alive():
            self.dispatcher.start()

    def stop(self) -> None:
        """Shut down the HTTP front end and the dispatcher cleanly."""
        self.httpd.shutdown()
        self.httpd.server_close()
        if self.dispatcher.is_alive():
            self.dispatcher.stop()
        else:
            self.queue.close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)

    def serve_forever(self) -> None:
        """Blocking entry point used by ``mlpsim serve``."""
        self._started_at = time.time()
        if self._start_dispatcher:
            self.dispatcher.start()
        try:
            self.httpd.serve_forever()
        finally:
            self.httpd.server_close()
            self.dispatcher.stop()

    # ------------------------------------------------------------ requests --

    def submit(self, payload: Any) -> Tuple[Job, bool]:
        request = parse_job_request(payload)
        if self.draining:
            raise SaturatedError(
                "service is draining; not accepting new jobs",
                status=503, retry_after=self.retry_after_hint(),
            )
        job, deduped = self.queue.submit(request)
        self.metrics.inc("jobs_submitted_total")
        if deduped:
            self.metrics.inc("jobs_deduped_total")
        elif request.kind == "estimate":
            # Estimates are pure arithmetic: answer on the submit path
            # (sub-millisecond) instead of burning a dispatcher slot.
            from .executor import estimate_payload

            self.queue.resolve_queued(job.id, estimate_payload(request))
            self._record_finish(job)
        return job, deduped

    def retry_after_hint(self) -> int:
        """Seconds a saturated/draining client should back off before
        retrying: one average job execution per queued job, bounded to
        [1, 60].  Falls back to the queue depth when nothing has run yet."""
        depth = max(1, self.queue.depth())
        summary = self.metrics.latency_summary("job_exec")
        if summary["count"]:
            return min(60, max(1, int(round(depth * summary["mean"]))))
        return min(60, depth)

    def health_payload(self) -> Dict[str, Any]:
        settings = self.engine.settings
        return {
            "status": "draining" if self.draining else "ok",
            "uptime_seconds": (
                time.time() - self._started_at if self._started_at else 0.0
            ),
            "queue_depth": self.queue.depth(),
            "jobs": self.queue.counts_by_state(),
            "backends": list(backend_names()),
            "fleet": {"workers": 0},  # the single-node daemon has no fleet
            "dispatcher_alive": self.dispatcher.is_alive(),
            "settings": {
                "warmup": settings.warmup,
                "measure": settings.measure,
                "seed": settings.seed,
                "calibrate": settings.calibrate,
            },
            "workers": self.engine.runner.workers,
        }

    def _record_finish(self, job: Job) -> None:
        self.metrics.inc(f"jobs_{job.state.value}_total")
        if job.finished_at is None:
            return
        if job.started_at is not None:
            self.metrics.observe(
                "job_exec", job.finished_at - job.started_at,
            )
            self.metrics.observe(
                "job_queue_wait", job.started_at - job.submitted_at,
            )
        self.metrics.observe(
            "job_latency", job.finished_at - job.submitted_at,
        )


def _make_handler(service: ReproService) -> type:
    """A handler class closed over *service* (BaseHTTPRequestHandler is
    instantiated per request by the server, so state rides on the class)."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-service/1.0"

        # ------------------------------------------------------- plumbing --

        def log_message(self, format: str, *args: Any) -> None:
            pass  # request logging is the metrics' job, not stderr's

        def _send_json(
            self,
            status: int,
            payload: Any,
            headers: Optional[Dict[str, str]] = None,
        ) -> None:
            if isinstance(payload, dict):
                # Every JSON response envelope carries the wire version.
                payload = {"v": PROTOCOL_VERSION, **payload}
            body = json.dumps(payload, indent=2).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(body)

        def _send_text(self, status: int, text: str) -> None:
            body = text.encode("utf-8")
            self.send_response(status)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8",
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(
            self, status: int, message: str, code: str = "",
        ) -> None:
            # ``code`` mirrors the repro.errors machine-readable code of
            # whatever exception produced the response, so clients branch
            # on it instead of parsing messages.
            body: Dict[str, Any] = {"error": message}
            if code:
                body["code"] = code
            self._send_json(status, body)

        def _read_body(self) -> Any:
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                raise ProtocolError(
                    f"request body exceeds {MAX_BODY_BYTES} bytes",
                    status=413,
                )
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise ProtocolError("request body must be JSON")
            try:
                return json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ProtocolError(f"invalid JSON: {exc}") from None

        def _route(self) -> Tuple[str, str]:
            path, _, query = self.path.partition("?")
            return path.rstrip("/") or "/", query

        # -------------------------------------------------------- methods --

        def do_GET(self) -> None:
            service.metrics.inc("http_requests_total")
            path, query = self._route()
            if path == "/healthz":
                self._send_json(200, service.health_payload())
            elif path == "/metrics":
                if "format=json" in query:
                    self._send_json(200, service.metrics.to_dict())
                else:
                    self._send_text(
                        200, service.metrics.render_prometheus(),
                    )
            elif path == "/v1/jobs":
                jobs = [
                    {
                        "id": job.id,
                        "kind": job.request.kind,
                        "description": job.request.describe(),
                        "state": job.state.value,
                        "priority": job.priority,
                    }
                    for job in service.queue.list_jobs()
                ]
                self._send_json(200, {"jobs": jobs})
            elif path.startswith("/v1/jobs/"):
                job = service.queue.get(path.rsplit("/", 1)[1])
                if job is None:
                    self._error(404, "unknown job id")
                else:
                    self._send_json(200, job.status_payload())
            else:
                self._error(404, f"unknown path {path}")

        def do_POST(self) -> None:
            service.metrics.inc("http_requests_total")
            path, _ = self._route()
            if path != "/v1/jobs":
                self._error(404, f"unknown path {path}")
                return
            try:
                payload = self._read_body()
                job, deduped = service.submit(payload)
            except ProtocolError as exc:
                self._error(exc.status, str(exc), code=exc.code)
            except SaturatedError as exc:
                # Structured saturation answer: clients see the machine
                # code plus a Retry-After they can sleep on.
                self._send_json(
                    exc.status,
                    {
                        "error": str(exc),
                        "code": exc.code,
                        "retry_after": exc.retry_after,
                    },
                    headers={"Retry-After": str(exc.retry_after)},
                )
            except QueueFullError as exc:
                hint = service.retry_after_hint()
                self._send_json(
                    429,
                    {
                        "error": str(exc),
                        "code": getattr(exc, "code", "") or "saturated",
                        "retry_after": hint,
                    },
                    headers={"Retry-After": str(hint)},
                )
            except Exception as exc:  # never leak a traceback as HTML
                self._error(
                    500, f"{type(exc).__name__}: {exc}",
                    code=getattr(exc, "code", "internal-error"),
                )
            else:
                self._send_json(202, {
                    "id": job.id,
                    "state": job.state.value,
                    "deduped": deduped,
                    "description": job.request.describe(),
                })

        def do_DELETE(self) -> None:
            service.metrics.inc("http_requests_total")
            path, _ = self._route()
            if not path.startswith("/v1/jobs/"):
                self._error(404, f"unknown path {path}")
                return
            job_id = path.rsplit("/", 1)[1]
            job = service.queue.get(job_id)
            if job is None:
                self._error(404, "unknown job id")
                return
            outcome = service.queue.cancel(job_id)
            if outcome:
                service.metrics.inc("jobs_cancelled_total")
                self._send_json(200, {
                    "id": job_id,
                    "cancelled": True,
                    "detached": outcome == "detached",
                })
            else:
                self._error(
                    409,
                    f"job {job_id} is {job.state.value}; only queued jobs "
                    f"can be cancelled",
                )

    return Handler


def serve(
    host: str = "127.0.0.1",
    port: int = 8137,
    settings: Optional[ExperimentSettings] = None,
    cache_dir: Any = "auto",
    workers: Optional[int] = None,
    job_timeout: float = 600.0,
    queue_capacity: int = 256,
    drain_timeout: float = 30.0,
    log_level: str = "info",
    log_format: str = "text",
    obs: Optional[ObsOptions] = None,
) -> int:
    """Run the daemon in the foreground until interrupted.

    Stops cleanly on SIGTERM as well as Ctrl-C — shells start backgrounded
    children with SIGINT ignored, so ``kill -TERM`` is how scripts (and the
    CI smoke step) shut the daemon down.  Shutdown is a graceful drain:
    new submissions get a 503 with ``Retry-After`` while queued and running
    jobs are given *drain_timeout* seconds to finish; the exit status is
    nonzero when work had to be abandoned.

    All daemon output goes through :mod:`repro.obs.logging` — *log_level*
    and *log_format* (``text`` or ``json``) configure it; every record
    carries the correlation ID of the job being dispatched.  *obs* enables
    tracing/profiling of the engine below.
    """
    setup_logging(level=log_level, fmt=log_format)
    log = get_logger("service")
    service = ReproService(
        host=host,
        port=port,
        settings=settings,
        cache_dir=cache_dir,
        workers=workers,
        job_timeout=job_timeout,
        queue_capacity=queue_capacity,
        obs=obs,
    )
    stop_event = threading.Event()

    def _signalled(signum: int, frame: Any) -> None:
        stop_event.set()

    signal.signal(signal.SIGTERM, _signalled)
    signal.signal(signal.SIGINT, _signalled)
    service.start()
    log.info("repro service listening on %s", service.url)
    if obs is not None and obs.trace_dir is not None:
        log.info("tracing to %s", obs.trace_dir)
    stop_event.wait()
    service.draining = True
    log.info("draining (timeout %.1fs)", drain_timeout)
    deadline = time.monotonic() + max(0.0, drain_timeout)
    while time.monotonic() < deadline:
        counts = service.queue.counts_by_state()
        if counts["queued"] + counts["running"] == 0:
            break
        time.sleep(0.1)
    counts = service.queue.counts_by_state()
    abandoned = counts["queued"] + counts["running"]
    service.stop()
    log.info("shutting down (%d job(s) abandoned)", abandoned)
    return 1 if abandoned else 0
