"""Thread-safe service metrics: counters, gauges and latency summaries.

Everything the ``/metrics`` endpoint reports lives here:

- **counters** — monotonic event counts (``jobs_submitted_total``,
  ``jobs_deduped_total``, per-state completions, HTTP requests),
- **gauges** — sampled-at-read callbacks (queue depth, jobs by state,
  artifact-cache hit/miss counts from :class:`~repro.engine.cache.CacheStats`),
- **latency summaries** — bounded reservoirs of observed durations with
  p50/p95/p99 computed on demand (job queue wait, job execution, end-to-end
  latency).

Two export formats: :meth:`MetricsRegistry.to_dict` (JSON) and
:meth:`MetricsRegistry.render_prometheus` (the Prometheus text exposition
format, one ``summary`` per histogram with quantile-labelled samples).

Every mutator takes the registry lock, so handler threads, the dispatcher
and batch threads may all record concurrently.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Tuple

__all__ = ["MetricsRegistry", "percentile"]


def percentile(samples: List[float], fraction: float) -> float:
    """The *fraction*-quantile of *samples* by linear interpolation."""
    if not samples:
        return 0.0
    if len(samples) == 1:
        return samples[0]
    ordered = sorted(samples)
    position = fraction * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


class MetricsRegistry:
    """Counters + gauges + latency reservoirs behind one lock."""

    #: Quantiles exported for every latency series, as
    #: (prometheus label, summary key, fraction).
    QUANTILES: Tuple[Tuple[str, str, float], ...] = (
        ("0.5", "p50", 0.50), ("0.95", "p95", 0.95), ("0.99", "p99", 0.99),
    )

    def __init__(self, namespace: str = "repro", reservoir: int = 2048) -> None:
        if reservoir < 1:
            raise ValueError("reservoir must hold at least one sample")
        self.namespace = namespace
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, Callable[[], float]] = {}
        #: name -> (count, sum, bounded sample window)
        self._latency: Dict[str, Tuple[int, float, Deque[float]]] = {}
        self._reservoir = reservoir

    # ------------------------------------------------------------ mutators --

    def inc(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration into the *name* latency series."""
        with self._lock:
            count, total, window = self._latency.get(
                name, (0, 0.0, deque(maxlen=self._reservoir)),
            )
            window.append(seconds)
            self._latency[name] = (count + 1, total + seconds, window)

    def gauge(self, name: str, sample: Callable[[], float]) -> None:
        """Register a gauge sampled at every export."""
        with self._lock:
            self._gauges[name] = sample

    # ------------------------------------------------------------- exports --

    def latency_summary(self, name: str) -> Dict[str, float]:
        with self._lock:
            count, total, window = self._latency.get(name, (0, 0.0, deque()))
            samples = list(window)
        summary: Dict[str, float] = {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
        }
        for _, key, fraction in self.QUANTILES:
            summary[key] = percentile(samples, fraction)
        return summary

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            counters = dict(self._counters)
            gauges = list(self._gauges.items())
            latency_names = list(self._latency)
        return {
            "counters": counters,
            "gauges": {name: float(sample()) for name, sample in gauges},
            "latency": {
                name: self.latency_summary(name) for name in latency_names
            },
        }

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            latency: Dict[str, Tuple[int, float, List[float]]] = {
                name: (count, total, list(window))
                for name, (count, total, window) in self._latency.items()
            }
        lines: List[str] = []
        for name, value in counters:
            metric = f"{self.namespace}_{name}"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {value}")
        for name, sample in gauges:
            metric = f"{self.namespace}_{name}"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {float(sample()):g}")
        for name, (count, total, samples) in sorted(latency.items()):
            metric = f"{self.namespace}_{name}_seconds"
            lines.append(f"# TYPE {metric} summary")
            for label, _, fraction in self.QUANTILES:
                value = percentile(samples, fraction)
                lines.append(
                    f'{metric}{{quantile="{label}"}} {value:.6f}'
                )
            lines.append(f"{metric}_count {count}")
            lines.append(f"{metric}_sum {total:.6f}")
        return "\n".join(lines) + "\n"
