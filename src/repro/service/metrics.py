"""Back-compat shim over :mod:`repro.obs.metrics`.

.. deprecated::
   The metrics registry grew beyond the HTTP service — the engine and the
   simulator now report through it too — so the canonical implementation
   moved to :mod:`repro.obs.metrics`.  This module re-exports
   :class:`MetricsRegistry` and :func:`percentile` so existing imports
   (``from repro.service.metrics import MetricsRegistry``) keep working;
   new code should import from :mod:`repro.obs.metrics` (or
   :mod:`repro.obs`) directly.
"""

from __future__ import annotations

from ..obs.metrics import MetricsRegistry, percentile

__all__ = ["MetricsRegistry", "percentile"]
