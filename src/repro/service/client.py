"""A thin blocking client for the simulation service.

Pure stdlib (``urllib.request``): connection-level failures retry with
exponential backoff (a just-started daemon may not be accepting yet); HTTP
error statuses do *not* retry — they carry the server's JSON error document
and raise :class:`ServiceError` immediately.

The verbs mirror :mod:`repro.api` — ``submit`` / ``result`` / ``cancel`` —
so code reads identically against local and remote execution.  New code
should obtain a client via :func:`repro.api.connect` (importing from here
still works, but the facade is the documented entry point).  Typical
use::

    client = ServiceClient("http://127.0.0.1:8137")
    receipt = client.submit_sweep(
        "database", store_queue=[16, 32], store_prefetch=["sp0", "sp1"],
    )
    report = client.result(receipt["id"], timeout=600)   # a real RunReport

Every submission carries the wire protocol version (``"v"``); a server
speaking a different version answers with a structured 400 rather than
misreading the body.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence, Union

from ..engine import serialize
from ..engine.runner import JobSpec, RunReport
from ..harness.sweeps import SweepSpec
from ..tune import SearchSpace, TuneResult, TuneSpec
from .protocol import PROTOCOL_VERSION

__all__ = ["ServiceClient", "ServiceError"]

_TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


class ServiceError(Exception):
    """An HTTP-level error answer from the service.

    ``retry_after`` carries the server's ``Retry-After`` hint in seconds
    (0 when the answer had none) so callers can implement their own
    backoff even when the client's automatic saturation retries are off.
    """

    def __init__(self, status: int, message: str,
                 payload: Optional[Dict[str, Any]] = None,
                 retry_after: float = 0.0) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.payload = payload or {}
        self.retry_after = retry_after


class ServiceClient:
    """Blocking JSON client with timeout and retry-with-backoff."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 3,
        backoff: float = 0.1,
        saturation_retries: int = 0,
        max_backoff: float = 10.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if saturation_retries < 0:
            raise ValueError("saturation_retries must be non-negative")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        #: How many times a 429/503 answer is retried after honouring the
        #: server's ``Retry-After``.  0 (the default) surfaces saturation
        #: immediately as :class:`ServiceError` — load generators and batch
        #: submitters opt in.
        self.saturation_retries = saturation_retries
        self.max_backoff = max_backoff
        self._rng = rng if rng is not None else random.Random()
        self._prev_sleep = backoff

    def _jitter_sleep(self) -> float:
        """Next decorrelated-jitter delay: ``min(cap, U(base, prev*3))``.

        Decorrelated jitter (vs. plain exponential) keeps a thundering
        herd of identical clients from re-colliding on every retry round —
        exactly the scenario the load-test harness creates on purpose.
        """
        self._prev_sleep = min(
            self.max_backoff,
            self._rng.uniform(self.backoff, self._prev_sleep * 3),
        )
        return self._prev_sleep

    # ------------------------------------------------------------- plumbing --

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Any:
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        headers = {"Content-Type": "application/json"} if body else {}
        attempt = 0
        saturation_attempt = 0
        while True:
            request = urllib.request.Request(
                self.base_url + path, data=data, headers=headers,
                method=method,
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout,
                ) as response:
                    raw = response.read()
                    content_type = response.headers.get("Content-Type", "")
                    if "json" in content_type:
                        return json.loads(raw)
                    return raw.decode("utf-8")
            except urllib.error.HTTPError as exc:
                raw = exc.read()
                try:
                    payload = json.loads(raw)
                    message = payload.get("error", raw.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    payload, message = {}, repr(raw[:200])
                retry_after = 0.0
                header = exc.headers.get("Retry-After") if exc.headers else None
                if header:
                    try:
                        retry_after = float(header)
                    except ValueError:
                        retry_after = 0.0
                if (
                    exc.code in (429, 503)
                    and saturation_attempt < self.saturation_retries
                ):
                    # Saturation is transient by definition: honour the
                    # server's Retry-After (at least), add decorrelated
                    # jitter so a herd of clients spreads out, and retry.
                    saturation_attempt += 1
                    time.sleep(max(retry_after, self._jitter_sleep()))
                    continue
                # Any other HTTP error answer: no retry, surface the
                # server's error document.
                raise ServiceError(
                    exc.code, message, payload, retry_after=retry_after,
                ) from None
            except (urllib.error.URLError, ConnectionError, OSError) as exc:
                if attempt >= self.retries:
                    raise ServiceError(
                        0, f"cannot reach {self.base_url}: {exc}",
                    ) from None
                time.sleep(self._jitter_sleep())
                attempt += 1

    # ------------------------------------------------------------ endpoints --

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self, format: str = "json") -> Any:
        if format == "json":
            return self._request("GET", "/metrics?format=json")
        return self._request("GET", "/metrics")

    def fleet_status(self) -> Dict[str, Any]:
        """Worker/task table of a fleet coordinator (404 on a plain daemon)."""
        return self._request("GET", "/v1/fleet/status")

    def fleet_drain(self, worker: str = "") -> Dict[str, Any]:
        """Flag one worker (or the whole fleet) to drain."""
        return self._request("POST", "/v1/fleet/drain", body={"worker": worker})

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a raw protocol body; returns ``{"id", "deduped", ...}``.

        The wire version is stamped into the envelope unless the caller
        already set one (e.g. to probe a server's version handling).
        """
        if "v" not in payload:
            payload = {"v": PROTOCOL_VERSION, **payload}
        return self._request("POST", "/v1/jobs", body=payload)

    def submit_sweep(
        self,
        workloads: Union[str, Sequence[str], SweepSpec],
        variant: str = "pc",
        priority: int = 0,
        backend: str = "",
        **axes: Sequence[Any],
    ) -> Dict[str, Any]:
        """Submit a sweep: workload name(s) + ``**axes``, or a whole
        :class:`SweepSpec` (the same object ``api.sweep`` accepts)."""
        if isinstance(workloads, SweepSpec):
            if axes:
                raise TypeError(
                    "pass axes inside the SweepSpec, not alongside it"
                )
            spec = workloads
            workloads = list(spec.workloads)
            variant = spec.variant
            axes = {name: list(values) for name, values in spec.axes}
        if isinstance(workloads, str):
            workloads = [workloads]
        payload: Dict[str, Any] = {
            "kind": "sweep",
            "priority": priority,
            "sweep": {
                "workloads": list(workloads),
                "variant": variant,
                "axes": {
                    name: [getattr(v, "value", v) for v in values]
                    for name, values in axes.items()
                },
            },
        }
        if backend:
            payload["backend"] = backend
        return self.submit(payload)

    def submit_simulate(
        self,
        workload: Union[str, JobSpec, Dict[str, Any]],
        variant: str = "pc",
        priority: int = 0,
        backend: str = "",
        contexts: int = 1,
        scheduler: str = "",
        **core_changes: Any,
    ) -> Dict[str, Any]:
        """Submit one simulation.

        *workload* is a workload name, a whole :class:`JobSpec`, or a
        JobSpec-shaped mapping — the same inputs ``api.run`` accepts;
        explicit keyword arguments override the spec's fields.
        ``contexts > 1`` submits an SMT run (*workload* may then be a mix
        spec) under the *scheduler* policy.
        """
        if not isinstance(workload, str):
            spec = JobSpec.coerce(workload)
            changes = dict(spec.core_changes)
            changes.update(core_changes)
            core_changes = changes
            if variant == "pc":
                variant = spec.variant
            if not backend:
                backend = spec.backend
            if contexts == 1:
                contexts = spec.contexts
            if not scheduler:
                scheduler = spec.scheduler
            workload = spec.workload
        payload: Dict[str, Any] = {
            "kind": "simulate",
            "priority": priority,
            "job": {
                "workload": workload,
                "variant": variant,
                "core_changes": {
                    name: getattr(value, "value", value)
                    for name, value in core_changes.items()
                },
            },
        }
        if contexts != 1:
            payload["job"]["contexts"] = contexts
        if scheduler:
            payload["job"]["scheduler"] = scheduler
        if backend:
            payload["backend"] = backend
        return self.submit(payload)

    def submit_estimate(
        self,
        workload: Union[str, JobSpec, Dict[str, Any]],
        variant: str = "pc",
        priority: int = 0,
        contexts: int = 1,
        **core_changes: Any,
    ) -> Dict[str, Any]:
        """Submit an analytical EPI estimate (``api.estimate`` over the
        wire) — the service answers from arithmetic alone, no simulation.
        """
        if not isinstance(workload, str):
            spec = JobSpec.coerce(workload)
            changes = dict(spec.core_changes)
            changes.update(core_changes)
            core_changes = changes
            if variant == "pc":
                variant = spec.variant
            if contexts == 1:
                contexts = spec.contexts
            workload = spec.workload
        payload: Dict[str, Any] = {
            "kind": "estimate",
            "priority": priority,
            "job": {
                "workload": workload,
                "variant": variant,
                "core_changes": {
                    name: getattr(value, "value", value)
                    for name, value in core_changes.items()
                },
            },
        }
        if contexts != 1:
            payload["job"]["contexts"] = contexts
        return self.submit(payload)

    def submit_tune(
        self,
        workload: Union[str, TuneSpec],
        variant: str = "pc",
        strategy: str = "genetic",
        budget: int = 16,
        seed: int = 0,
        priority: int = 0,
        backend: str = "",
        **space: Sequence[Any],
    ) -> Dict[str, Any]:
        """Submit a design-space search (``api.tune`` over the wire).

        *workload* is a workload name plus ``**space`` axis values, or a
        whole :class:`TuneSpec`.
        """
        if isinstance(workload, TuneSpec):
            if space:
                raise TypeError(
                    "pass the space inside the TuneSpec, not alongside it"
                )
            spec = workload
            workload = spec.workload
            variant = spec.variant
            strategy = spec.strategy
            budget = spec.budget
            seed = spec.seed
            backend = backend or spec.backend
            space = {
                name: list(values) for name, values in spec.space.params
            }
        elif isinstance(space.get("space"), SearchSpace):
            built = space.pop("space")
            if space:
                raise TypeError(
                    "pass axis values inside the SearchSpace, "
                    "not alongside it"
                )
            space = {name: list(values) for name, values in built.params}
        payload: Dict[str, Any] = {
            "kind": "tune",
            "priority": priority,
            "tune": {
                "workload": workload,
                "variant": variant,
                "strategy": strategy,
                "budget": budget,
                "seed": seed,
                "space": {
                    name: [getattr(v, "value", v) for v in values]
                    for name, values in space.items()
                },
            },
        }
        if backend:
            payload["backend"] = backend
        return self.submit(payload)

    def submit_figure(
        self,
        figure: str,
        workloads: Optional[Sequence[str]] = None,
        priority: int = 0,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "kind": "figure", "figure": figure, "priority": priority,
        }
        if workloads is not None:
            payload["workloads"] = list(workloads)
        return self.submit(payload)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def result(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll: float = 0.05,
    ) -> Any:
        """Block until *job_id* finishes and return its decoded result.

        Sweep and simulate jobs return the real
        :class:`~repro.engine.runner.RunReport`; tune jobs the real
        :class:`~repro.tune.TuneResult`; estimate jobs the real
        :class:`~repro.estimate.EpiEstimate`; figure jobs the figure's
        data dict.  A failed or cancelled job raises
        :class:`ServiceError` carrying the server's error text.
        """
        status = self.wait(job_id, timeout=timeout, poll=poll)
        if status["state"] != "done":
            raise ServiceError(
                0,
                f"job {job_id} {status['state']}: "
                f"{status.get('error', '')}",
                status,
            )
        result = status.get("result") or {}
        if "report" in result:
            return RunReport.from_dict(result["report"])
        if result.get("kind") == "tune":
            return TuneResult.from_dict(result["tune_result"])
        if result.get("kind") == "estimate":
            return serialize.from_jsonable(result["estimate"])
        if result.get("kind") == "figure":
            return result.get("data")
        return result

    # ------------------------------------------------------------- helpers --

    def wait(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll: float = 0.05,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final status payload.

        The poll interval backs off 1.5x per round (capped at 2s) so a long
        simulation isn't hammered; raises ``TimeoutError`` past *timeout*.
        """
        deadline = time.monotonic() + timeout
        interval = poll
        while True:
            status = self.status(job_id)
            if status["state"] in _TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout}s"
                )
            time.sleep(interval)
            interval = min(interval * 1.5, 2.0)

    @staticmethod
    def decode_report(status: Dict[str, Any]) -> RunReport:
        """The real :class:`RunReport` inside a terminal sweep/simulate
        status payload — simulation results and all."""
        if status.get("state") != "done":
            raise ValueError(
                f"job is {status.get('state')!r}, not done: "
                f"{status.get('error', '')}"
            )
        result = status.get("result") or {}
        if "report" not in result:
            raise ValueError(
                f"{result.get('kind', 'unknown')!r} payload has no report"
            )
        return RunReport.from_dict(result["report"])

    @staticmethod
    def decode(payload: Any) -> Any:
        """Decode any :mod:`repro.engine.serialize` tagged payload."""
        return serialize.from_jsonable(payload)
