"""Typed request/response schemas for the simulation service.

The wire protocol is plain JSON.  A job submission looks like::

    {"kind": "sweep", "priority": 0,
     "sweep": {"workloads": ["database"], "variant": "pc",
               "axes": {"store_queue": [16, 32],
                        "store_prefetch": ["sp0", "sp1"]}}}

    {"kind": "simulate",
     "job": {"workload": "database", "variant": "pc",
             "core_changes": {"store_queue": 16, "store_prefetch": "sp1"}}}

    {"kind": "simulate",
     "job": {"workload": "oltp_java", "contexts": 2, "scheduler": "mlp"}}

    {"kind": "estimate",
     "job": {"workload": "database",
             "core_changes": {"scout": "hws2"}}}

    {"kind": "figure", "figure": "figure2", "workloads": ["database"]}

    {"kind": "tune",
     "tune": {"workload": "database", "strategy": "genetic", "budget": 12,
              "seed": 7,
              "space": {"store_queue": [16, 32, 64],
                        "scout": ["none", "hws2"]}}}

:func:`parse_job_request` validates such payloads into a frozen
:class:`JobRequest`, coercing enum spellings (``"sp1"``, ``"wc"``, ...)
through :func:`repro.harness.sweeps.coerce_axis_value` and raising
:class:`ProtocolError` — which carries the HTTP status to answer with — on
anything malformed.

``JobRequest.signature()`` is the request's content hash (via
:func:`repro.engine.cache.content_key`), the key under which the job queue
deduplicates identical in-flight work: two clients posting the same sweep
share one execution.  ``priority`` is deliberately excluded from the
signature — the work is the same regardless of how urgently it was asked
for.

Trace context on the fleet wire
-------------------------------

The worker protocol (``/v1/fleet/lease`` and ``/v1/fleet/complete``)
carries a ``traceparent`` field on every task entry, in the
W3C-traceparent-inspired form emitted by
:func:`repro.obs.context.format_traceparent`::

    00-<correlation id>-<parent span id>

Lease grants stamp it (the correlation ID is the job ID; the parent span
is the coordinator's ``fleet_job`` root span, or empty when the
coordinator is not tracing); workers restore it with
:func:`repro.obs.context.trace_context` before executing and echo it on
completion entries.  The field is observability metadata only: it never
participates in request signatures, and a malformed or missing value
degrades to a fresh correlation, never to a protocol error.  Worker
heartbeats (``/v1/fleet/heartbeat``) may likewise carry a ``metrics``
object of cumulative counter totals — see
:mod:`repro.fleet.federation` for the federation semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.backend import backend_names
from ..engine import serialize
from ..engine.cache import content_key
from ..engine.runner import JobSpec
from ..errors import ProtocolError
from ..harness.figures import ALL_WORKLOADS
from ..harness.sweeps import SweepSpec, coerce_axis_value
from ..tune import STRATEGIES, TuneSpec

__all__ = [
    "FIGURES",
    "JOB_KINDS",
    "PROTOCOL_VERSION",
    "JobRequest",
    "ProtocolError",
    "jsonify",
    "parse_job_request",
]

#: Wire protocol version.  Every request and response envelope carries it
#: as ``"v"``; a request naming a different version is answered with a
#: structured 400 instead of being misinterpreted.  Requests without ``"v"``
#: are accepted as version 1 (the pre-versioning wire form).
PROTOCOL_VERSION = 1

JOB_KINDS = ("sweep", "simulate", "figure", "tune", "estimate")
FIGURES = ("figure2", "figure3", "figure4", "figure5", "figure6",
           "figure7", "figure8")


# ProtocolError now lives in the unified repro.errors hierarchy (it carries
# a stable ``.code`` alongside its HTTP ``.status``); re-exported here for
# the pre-unification import path.


@dataclass(frozen=True)
class JobRequest:
    """One validated job submission.

    ``shards``/``checkpoint_every`` apply to simulate jobs only: they route
    the simulation through the fault-tolerant sharded execution path
    (:meth:`repro.engine.runner.EngineRunner.run_sharded`) — the result is
    bit-identical to an unsharded run, so they *are* part of the work
    signature only insofar as they change the execution request itself.

    ``backend`` (sweep/simulate only) names the execution backend the
    engine runs the simulations on; ``""`` defers to the server's default.
    Backends are bit-identical, but the field still joins the signature
    because it changes the execution being requested.
    """

    kind: str
    sweep: Optional[SweepSpec] = None
    job: Optional[JobSpec] = None
    tune: Optional[TuneSpec] = None
    figure: str = ""
    workloads: Tuple[str, ...] = ()
    priority: int = 0
    shards: int = 1
    checkpoint_every: int = 0
    backend: str = ""

    def signature(self) -> str:
        """Content hash identifying the *work* (priority excluded)."""
        return content_key(
            "service-job", self.kind, self.sweep, self.job, self.tune,
            self.figure, self.workloads, self.shards, self.checkpoint_every,
            self.backend,
        )

    def describe(self) -> str:
        if self.kind == "tune":
            assert self.tune is not None
            return self.tune.describe()
        if self.kind == "sweep":
            assert self.sweep is not None
            axes = " ".join(
                f"{name}[{len(values)}]" for name, values in self.sweep.axes
            )
            return (
                f"sweep:{','.join(self.sweep.workloads)}/"
                f"{self.sweep.variant} {axes}"
            )
        if self.kind == "simulate":
            assert self.job is not None
            return self.job.describe()
        if self.kind == "estimate":
            assert self.job is not None
            return f"estimate[{self.job.describe()}]"
        return f"{self.figure}:{','.join(self.workloads)}"

    def to_dict(self) -> Dict[str, Any]:
        return serialize.to_jsonable(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobRequest":
        request = serialize.from_jsonable(data)
        if not isinstance(request, cls):
            raise serialize.SerializeError(
                f"expected a JobRequest payload, "
                f"decoded {type(request).__name__}"
            )
        return request


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def _workloads(raw: Any, where: str) -> Tuple[str, ...]:
    _require(
        isinstance(raw, (list, tuple)) and raw
        and all(isinstance(w, str) for w in raw),
        f"{where} must be a non-empty list of workload names",
    )
    unknown = set(raw) - set(ALL_WORKLOADS)
    _require(
        not unknown,
        f"unknown workloads {sorted(unknown)}; "
        f"expected a subset of {list(ALL_WORKLOADS)}",
    )
    return tuple(raw)


def _parse_sweep(payload: Dict[str, Any]) -> SweepSpec:
    raw = payload.get("sweep")
    _require(isinstance(raw, dict), "sweep jobs need a 'sweep' object")
    workloads_raw = raw.get("workloads")
    if workloads_raw is None and isinstance(raw.get("workload"), str):
        workloads_raw = [raw["workload"]]
    workloads = _workloads(workloads_raw, "'sweep.workloads'")
    variant = raw.get("variant", "pc")
    _require(isinstance(variant, str), "'sweep.variant' must be a string")
    axes = raw.get("axes")
    _require(
        isinstance(axes, dict) and axes,
        "sweep jobs need a non-empty 'sweep.axes' object",
    )
    coerced: Dict[str, List[Any]] = {}
    for name, values in axes.items():
        _require(
            isinstance(name, str) and isinstance(values, (list, tuple))
            and len(values) > 0,
            f"axis {name!r} must map to a non-empty list of values",
        )
        try:
            coerced[name] = [coerce_axis_value(name, v) for v in values]
        except ValueError as exc:
            raise ProtocolError(str(exc)) from None
    try:
        return SweepSpec.build(workloads, variant, **coerced)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from None


def _parse_simulate(payload: Dict[str, Any], kind: str = "simulate") -> JobSpec:
    raw = payload.get("job")
    _require(isinstance(raw, dict), f"{kind} jobs need a 'job' object")
    contexts = raw.get("contexts", 1)
    _require(
        isinstance(contexts, int) and not isinstance(contexts, bool)
        and contexts >= 1,
        "'job.contexts' must be an integer >= 1",
    )
    scheduler = raw.get("scheduler", "")
    _require(
        isinstance(scheduler, str),
        "'job.scheduler' must be a string naming an SMT scheduling policy",
    )
    if scheduler:
        from ..smt.schedulers import resolve_scheduler

        try:
            scheduler = resolve_scheduler(scheduler).name
        except ValueError as exc:
            raise ProtocolError(str(exc)) from None
    workload = raw.get("workload")
    _require(isinstance(workload, str), "'job.workload' must be a string")
    if contexts > 1:
        # SMT specs take mixes; the resolver validates and lists them.
        from ..workloads.mixes import resolve_mix

        try:
            resolve_mix(workload, contexts)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from None
    else:
        _require(
            workload in ALL_WORKLOADS,
            f"'job.workload' must be one of {list(ALL_WORKLOADS)}",
        )
    variant = raw.get("variant", "pc")
    _require(isinstance(variant, str), "'job.variant' must be a string")
    changes = raw.get("core_changes", {})
    _require(
        isinstance(changes, dict),
        "'job.core_changes' must be an object of field -> value",
    )
    try:
        core_changes = tuple(
            (name, coerce_axis_value(name, value))
            for name, value in changes.items()
        )
    except ValueError as exc:
        raise ProtocolError(str(exc)) from None
    return JobSpec(
        workload=workload, variant=variant, core_changes=core_changes,
        contexts=contexts, scheduler=scheduler,
    )


#: Upper bound on a tuning request's measured-evaluation budget — a
#: service should refuse unbounded search, not queue it.
_MAX_TUNE_BUDGET = 4096


def _parse_tune(payload: Dict[str, Any]) -> TuneSpec:
    raw = payload.get("tune")
    _require(isinstance(raw, dict), "tune jobs need a 'tune' object")
    workload = raw.get("workload")
    _require(
        isinstance(workload, str) and workload in ALL_WORKLOADS,
        f"'tune.workload' must be one of {list(ALL_WORKLOADS)}",
    )
    variant = raw.get("variant", "pc")
    _require(isinstance(variant, str), "'tune.variant' must be a string")
    strategy = raw.get("strategy", "genetic")
    _require(
        isinstance(strategy, str) and strategy in STRATEGIES,
        f"'tune.strategy' must be one of {list(STRATEGIES)}",
    )
    budget = raw.get("budget", 16)
    _require(
        isinstance(budget, int) and not isinstance(budget, bool)
        and 1 <= budget <= _MAX_TUNE_BUDGET,
        f"'tune.budget' must be an integer in [1, {_MAX_TUNE_BUDGET}]",
    )
    seed = raw.get("seed", 0)
    _require(
        isinstance(seed, int) and not isinstance(seed, bool),
        "'tune.seed' must be an integer",
    )
    space = raw.get("space")
    _require(
        isinstance(space, dict) and space,
        "tune jobs need a non-empty 'tune.space' object of "
        "axis -> values",
    )
    try:
        spec = TuneSpec.build(
            workload, space, variant=variant, strategy=strategy,
            budget=budget, seed=seed,
        )
    except ValueError as exc:
        raise ProtocolError(str(exc)) from None
    return spec


def _parse_backend(payload: Dict[str, Any], kind: str) -> str:
    """Validate the optional top-level ``backend`` field.

    Unknown names are answered with a structured 400 listing the
    registered backends, so a typo ("evnet") comes back actionable
    instead of failing deep inside the engine.
    """
    raw = payload.get("backend", "")
    _require(
        isinstance(raw, str),
        "'backend' must be a string naming an execution backend",
    )
    if not raw:
        return ""
    _require(
        kind in ("sweep", "simulate", "tune"),
        "'backend' applies to sweep, simulate and tune jobs only",
    )
    names = backend_names()
    _require(
        raw in names,
        f"unknown execution backend {raw!r}; "
        f"registered backends: {list(names)}",
    )
    return raw


def _parse_figure(payload: Dict[str, Any]) -> Tuple[str, Tuple[str, ...]]:
    figure = payload.get("figure")
    _require(
        isinstance(figure, str) and figure in FIGURES,
        f"'figure' must be one of {list(FIGURES)}",
    )
    workloads_raw = payload.get("workloads", list(ALL_WORKLOADS))
    return figure, _workloads(workloads_raw, "'workloads'")


def parse_job_request(payload: Any) -> JobRequest:
    """Validate one raw submission body into a :class:`JobRequest`."""
    _require(isinstance(payload, dict), "request body must be a JSON object")
    version = payload.get("v", PROTOCOL_VERSION)
    _require(
        version == PROTOCOL_VERSION,
        f"unsupported protocol version {version!r}; "
        f"this server speaks v{PROTOCOL_VERSION}",
    )
    kind = payload.get("kind")
    _require(
        isinstance(kind, str) and kind in JOB_KINDS,
        f"'kind' must be one of {list(JOB_KINDS)}",
    )
    priority = payload.get("priority", 0)
    _require(
        isinstance(priority, int) and not isinstance(priority, bool),
        "'priority' must be an integer",
    )
    backend = _parse_backend(payload, kind)
    if kind == "sweep":
        return JobRequest(
            kind=kind, sweep=_parse_sweep(payload), priority=priority,
            backend=backend,
        )
    if kind == "simulate":
        shards = payload.get("shards", 1)
        _require(
            isinstance(shards, int) and not isinstance(shards, bool)
            and shards >= 1,
            "'shards' must be a positive integer",
        )
        checkpoint_every = payload.get("checkpoint_every", 0)
        _require(
            isinstance(checkpoint_every, int)
            and not isinstance(checkpoint_every, bool)
            and checkpoint_every >= 0,
            "'checkpoint_every' must be a non-negative integer",
        )
        job = _parse_simulate(payload)
        _require(
            job.contexts == 1 or (shards == 1 and checkpoint_every == 0),
            "multi-context (SMT) jobs cannot be sharded or checkpointed",
        )
        return JobRequest(
            kind=kind, job=job, priority=priority,
            shards=shards, checkpoint_every=checkpoint_every,
            backend=backend,
        )
    if kind == "estimate":
        return JobRequest(
            kind=kind, job=_parse_simulate(payload, kind="estimate"),
            priority=priority,
        )
    if kind == "tune":
        return JobRequest(
            kind=kind, tune=_parse_tune(payload), priority=priority,
            backend=backend,
        )
    figure, workloads = _parse_figure(payload)
    return JobRequest(
        kind=kind, figure=figure, workloads=workloads, priority=priority,
    )


def jsonify(obj: Any) -> Any:
    """A lossy, human-readable JSON rendering for figure payloads.

    Figure drivers return nested dicts keyed by enums and tuples; this
    flattens keys to strings and enums to their values so the payload reads
    naturally in a browser or ``curl`` output.  (Sweep and simulate results
    use the exact :mod:`repro.engine.serialize` encoding instead.)
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if hasattr(obj, "value") and not isinstance(obj, type):  # enum member
        return jsonify(obj.value)
    if isinstance(obj, dict):
        return {_key_str(key): jsonify(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonify(item) for item in obj]
    return str(obj)


def _key_str(key: Any) -> str:
    if isinstance(key, str):
        return key
    if hasattr(key, "value") and not isinstance(key, type):
        return str(key.value)
    if isinstance(key, tuple):
        return ",".join(_key_str(item) for item in key)
    return str(key)


serialize.register(JobRequest)
