"""repro.service: the simulation-as-a-service daemon.

Exposes the engine layer (persistent artifact cache + parallel runner)
over a zero-dependency JSON HTTP API, so many consumers share one
long-lived process — one warm cache, one job queue, and in-flight
deduplication of identical requests.

- :mod:`repro.service.protocol` — typed request validation and the wire
  encoding of results,
- :mod:`repro.service.jobqueue` — bounded priority queue, the
  ``queued -> running -> done/failed/cancelled`` lifecycle, and in-flight
  dedup keyed by request content hash,
- :mod:`repro.service.executor` — bridges requests onto
  :class:`~repro.engine.runner.EngineRunner` batches and figure drivers,
- :mod:`repro.service.server` — the ``ThreadingHTTPServer`` front end,
  serving counters/gauges/latency summaries from
  :class:`repro.obs.metrics.MetricsRegistry` behind ``/metrics`` (JSON
  and Prometheus text),
- :mod:`repro.service.client` — the blocking Python client used by the
  CLI (``mlpsim submit`` / ``mlpsim status``) and the tests.
"""

from ..obs.metrics import MetricsRegistry
from .client import ServiceClient, ServiceError
from .jobqueue import Dispatcher, Job, JobQueue, JobState, QueueFullError
from .protocol import JobRequest, ProtocolError, parse_job_request
from .server import ReproService, serve

__all__ = [
    "Dispatcher",
    "Job",
    "JobQueue",
    "JobRequest",
    "JobState",
    "MetricsRegistry",
    "ProtocolError",
    "QueueFullError",
    "ReproService",
    "ServiceClient",
    "ServiceError",
    "parse_job_request",
    "serve",
]
