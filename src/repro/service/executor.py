"""Executes validated job requests against the engine layer.

One :class:`ServiceEngine` lives for the whole daemon.  It owns:

- one persistent :class:`~repro.engine.cache.ArtifactCache` (the shared
  memoization layer across every job the service ever runs),
- one :class:`~repro.engine.runner.EngineRunner` configured with the
  daemon's worker count and per-job timeout/retry policy — sweep and
  simulate requests become runner batches via
  :meth:`~repro.engine.runner.EngineRunner.submit_batch`, inheriting the
  runner's bit-identical-to-serial guarantee, and
- one :class:`~repro.harness.experiment.Workbench` sharing the same cache,
  on which figure requests run their (serial) drivers against artifacts the
  runner pre-warmed in parallel.

Results are returned as plain-JSON payloads: sweep/simulate results carry
the exact :mod:`repro.engine.serialize` encoding of the
:class:`~repro.engine.runner.RunReport` (decodable back into real objects
by the client), figures carry a human-readable nested dict.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Optional

from ..engine.cache import ArtifactCache, resolve_cache_dir
from ..engine.runner import EngineRunner, JobSpec, RunReport
from ..harness.experiment import ExperimentSettings, Workbench
from ..obs.metrics import MetricsRegistry
from ..obs.options import ObsOptions
from ..harness.figures import (
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
)
from ..tune import TuneTelemetry, run_tune
from .protocol import JobRequest, ProtocolError, jsonify

__all__ = ["ServiceEngine", "estimate_payload"]


def estimate_payload(request: JobRequest) -> Dict[str, Any]:
    """The ``estimate`` verb's result payload: pure arithmetic, no engine
    batch, no trace read — shared by the single-node executor and the
    fleet front end (which resolves estimates inline, without workers)."""
    from .. import estimate as estimate_mod
    from ..engine import serialize

    assert request.job is not None
    guess = estimate_mod.estimate(request.job)
    return {
        "kind": "estimate",
        "estimate": serialize.to_jsonable(guess),
        "summary": guess.summary(),
        "predicted_epi_per_1000": guess.predicted_epi_per_1000,
    }

_FIGURE_DRIVERS = {
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
}

#: Figures that also need the weak-consistency trace variant warmed.
_WC_FIGURES = frozenset({"figure7", "figure8"})


class ServiceEngine:
    """One long-lived engine shared by every job the service executes."""

    def __init__(
        self,
        settings: Optional[ExperimentSettings] = None,
        cache_dir: Any = "auto",
        workers: Optional[int] = None,
        job_timeout: float = 600.0,
        retries: int = 1,
        obs: Optional[ObsOptions] = None,
    ) -> None:
        self.settings = settings or ExperimentSettings()
        self.artifacts = ArtifactCache(resolve_cache_dir(cache_dir))
        self.runner = EngineRunner(
            settings=self.settings,
            cache_dir=cache_dir,
            workers=workers,
            job_timeout=job_timeout,
            retries=retries,
            obs=obs,
        )
        # Figure drivers (and their in-process annotations) share the
        # service-wide artifact cache object, so a figure run right after a
        # sweep starts from warm memory, not just warm disk.
        self.bench = Workbench(self.settings, artifacts=self.artifacts)
        # Tuning runs through the same runner/cache; its counters live for
        # the daemon's lifetime so /metrics sees totals across requests.
        self.tune_telemetry = TuneTelemetry()

    def register_metrics(self, registry: MetricsRegistry) -> None:
        """Expose the whole stack below the service on *registry*: artifact
        cache tiers, engine batch/job activity, simulation aggregates and
        tuning counters."""
        self.artifacts.stats.register_metrics(registry)
        self.runner.telemetry.register_metrics(
            registry, workers=self.runner.workers,
        )
        self.tune_telemetry.register_metrics(registry)

    # ------------------------------------------------------------ execute --

    def execute(self, request: JobRequest) -> Dict[str, Any]:
        """Run one request to completion, returning its JSON payload."""
        if request.kind == "sweep":
            return self._execute_sweep(request)
        if request.kind == "simulate":
            return self._execute_simulate(request)
        if request.kind == "figure":
            return self._execute_figure(request)
        if request.kind == "tune":
            return self._execute_tune(request)
        if request.kind == "estimate":
            return self._execute_estimate(request)
        raise ProtocolError(f"unknown job kind {request.kind!r}")

    def _run_batch(self, jobs: list) -> RunReport:
        handle = self.runner.submit_batch(jobs)
        return handle.result()

    @staticmethod
    def _with_backend(jobs: list, backend: str) -> list:
        """Stamp the request's execution backend onto its engine jobs."""
        if not backend:
            return jobs
        return [replace(job, backend=backend) for job in jobs]

    def _execute_sweep(self, request: JobRequest) -> Dict[str, Any]:
        assert request.sweep is not None
        report = self._run_batch(
            self._with_backend(request.sweep.to_jobs(), request.backend)
        )
        payload: Dict[str, Any] = {
            "kind": "sweep",
            "spec": request.sweep.to_dict(),
            "report": report.to_dict(),
            "summary": report.summary(),
        }
        if not report.failed:
            records = request.sweep.records(report)
            payload["records"] = [
                {
                    "workload": record.workload,
                    "point": record.label(),
                    "epi_per_1000": record.epi_per_1000,
                    "mlp": record.mlp,
                    "store_mlp": record.store_mlp,
                    "store_bandwidth_overhead":
                        record.store_bandwidth_overhead,
                }
                for record in records
            ]
        return payload

    def _execute_simulate(self, request: JobRequest) -> Dict[str, Any]:
        assert request.job is not None
        if request.shards > 1 or request.checkpoint_every > 0:
            return self._execute_sharded(request)
        report = self._run_batch(
            self._with_backend([request.job], request.backend)
        )
        payload: Dict[str, Any] = {
            "kind": "simulate",
            "report": report.to_dict(),
            "summary": report.summary(),
        }
        job = report.jobs[0]
        if job.ok and job.result is not None:
            payload["summary"] = job.result.summary()
        return payload

    def _execute_sharded(self, request: JobRequest) -> Dict[str, Any]:
        """A simulate request through the fault-tolerant sharded path."""
        assert request.job is not None
        job = request.job
        if request.backend:
            job = replace(job, backend=request.backend)
        report = self.runner.run_sharded(
            job, request.shards,
            checkpoint_every=request.checkpoint_every,
        )
        payload: Dict[str, Any] = {
            "kind": "simulate",
            "sharded": {
                "requested": request.shards,
                "shard_count": report.plan.shard_count,
                "plan": report.plan.describe(),
                "rounds": report.rounds,
                "resumed_shards": report.resumed_shards,
                "checkpoints_written": report.checkpoints_written,
                "tokens": [job.checkpoint_token for job in report.jobs],
            },
            "report": report.to_dict(),
            "summary": report.summary(),
        }
        if report.ok:
            assert report.merged is not None
            payload["summary"] = report.merged.summary()
        return payload

    def _execute_estimate(self, request: JobRequest) -> Dict[str, Any]:
        """The analytical ``estimate`` verb — never touches the runner."""
        return estimate_payload(request)

    def _execute_tune(self, request: JobRequest) -> Dict[str, Any]:
        """A design-space search through the shared runner and cache.

        The run shares the daemon's artifact cache, so identical
        (workload, variant, candidate, settings) evaluations across tune
        requests — or against earlier sweeps' tuning runs — are measured
        once; tuning state persists in the same cache, so a cancelled
        request resubmitted later resumes.
        """
        assert request.tune is not None
        spec = request.tune
        if request.backend:
            spec = replace(spec, backend=request.backend)
        result = run_tune(
            spec,
            runner=self.runner,
            cache=self.artifacts,
            telemetry=self.tune_telemetry,
        )
        return {
            "kind": "tune",
            "spec": spec.to_dict(),
            "tune_result": result.to_dict(),
            "summary": result.summary(),
            "best": {
                "epi_per_1000": result.best_epi_per_1000,
                "knobs": {
                    name: getattr(value, "value", value)
                    for name, value in result.best
                },
            },
        }

    def _execute_figure(self, request: JobRequest) -> Dict[str, Any]:
        driver = _FIGURE_DRIVERS[request.figure]
        variants = ["pc"]
        if request.figure in _WC_FIGURES:
            variants.append("wc")
        # Warm phase: fan the expensive annotations across the runner's
        # workers; the driver then runs serially against a warm cache.
        warm = [
            JobSpec(workload=workload, variant=variant, action="annotate")
            for workload in request.workloads
            for variant in variants
        ]
        warm_report = self._run_batch(warm)
        data = driver(self.bench, list(request.workloads))
        return {
            "kind": "figure",
            "figure": request.figure,
            "workloads": list(request.workloads),
            "warm_summary": warm_report.summary(),
            "data": jsonify(data),
        }
